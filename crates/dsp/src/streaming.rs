//! Sample-at-a-time digital down-conversion.
//!
//! The batch [`crate::Demodulator`] multiplies a full captured trace by
//! precomputed reference tables. On an FPGA the same operation runs as the
//! samples arrive: a numerically controlled oscillator (NCO) holds one
//! phasor per qubit and rotates it by a constant step each ADC clock, and
//! the baseband sample is a single complex multiply ("two FMA units" in
//! the paper's footnote). [`StreamingDemodulator`] is that datapath.

use mlr_num::Complex;
use mlr_sim::ChipConfig;

/// Per-qubit NCO-based down-converter processing one ADC sample per call.
///
/// Numerically the recurrence `p ← p · e^{-i2πf·dt}` accumulates rounding
/// at ~1 ulp per step; the oscillator renormalises its magnitude every
/// [`StreamingDemodulator::RENORM_INTERVAL`] samples, keeping it
/// indistinguishable from the batch reference tables over any realistic
/// readout window (the tests pin the agreement).
///
/// # Examples
///
/// ```
/// use mlr_dsp::{Demodulator, StreamingDemodulator};
/// use mlr_num::Complex;
/// use mlr_sim::ChipConfig;
///
/// let config = ChipConfig::uniform(2);
/// let batch = Demodulator::new(&config);
/// let mut stream = StreamingDemodulator::new(&config);
/// let raw = vec![Complex::new(0.5, -0.25); 64];
/// let bb0 = batch.demodulate(&raw, 0);
/// for (t, &z) in raw.iter().enumerate() {
///     let per_qubit = stream.push(z).to_vec();
///     assert!((per_qubit[0] - bb0[t]).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDemodulator {
    /// Constant per-sample rotation `e^{-i 2π f_q dt}` per qubit.
    steps: Vec<Complex>,
    /// Current reference phasor per qubit (starts at 1).
    phasors: Vec<Complex>,
    /// Scratch output: baseband sample per qubit for the last push.
    buf: Vec<Complex>,
    /// Samples processed since construction or [`StreamingDemodulator::reset`].
    t: usize,
}

impl StreamingDemodulator {
    /// Samples between phasor magnitude renormalisations.
    pub const RENORM_INTERVAL: usize = 1024;

    /// Builds one NCO per qubit of `config`.
    pub fn new(config: &ChipConfig) -> Self {
        let dt_us = config.dt_us();
        let steps: Vec<Complex> = config
            .qubits
            .iter()
            .map(|q| Complex::cis(-std::f64::consts::TAU * q.if_freq_mhz * dt_us))
            .collect();
        let n = steps.len();
        Self {
            steps,
            phasors: vec![Complex::ONE; n],
            buf: vec![Complex::ZERO; n],
            t: 0,
        }
    }

    /// Number of qubit channels.
    pub fn n_qubits(&self) -> usize {
        self.steps.len()
    }

    /// Samples processed so far.
    pub fn samples_processed(&self) -> usize {
        self.t
    }

    /// Rewinds the oscillators to time zero for the next shot.
    pub fn reset(&mut self) {
        self.phasors.iter_mut().for_each(|p| *p = Complex::ONE);
        self.t = 0;
    }

    /// Processes one ADC sample, returning the baseband sample of every
    /// qubit (borrow valid until the next `push`).
    pub fn push(&mut self, sample: Complex) -> &[Complex] {
        for ((out, phasor), step) in self.buf.iter_mut().zip(&mut self.phasors).zip(&self.steps) {
            *out = sample * *phasor;
            *phasor *= *step;
        }
        self.t += 1;
        if self.t.is_multiple_of(Self::RENORM_INTERVAL) {
            for p in &mut self.phasors {
                let mag = p.abs();
                if mag > 0.0 {
                    *p = *p / mag;
                }
            }
        }
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Demodulator;

    fn config() -> ChipConfig {
        let mut c = ChipConfig::uniform(3);
        c.n_samples = 500;
        c
    }

    #[test]
    fn matches_batch_demodulator_over_full_trace() {
        let c = config();
        let batch = Demodulator::new(&c);
        let mut stream = StreamingDemodulator::new(&c);
        let raw: Vec<Complex> = (0..c.n_samples)
            .map(|n| Complex::new((n as f64 * 0.013).sin(), (n as f64 * 0.007).cos()))
            .collect();
        let batch_bb: Vec<Vec<Complex>> = batch.demodulate_all(&raw);
        for (t, &z) in raw.iter().enumerate() {
            let bb = stream.push(z).to_vec();
            for q in 0..c.n_qubits() {
                assert!(
                    (bb[q] - batch_bb[q][t]).abs() < 1e-9,
                    "q{q} t{t}: {} vs {}",
                    bb[q],
                    batch_bb[q][t]
                );
            }
        }
    }

    #[test]
    fn renormalisation_keeps_phasor_on_unit_circle() {
        let c = config();
        let mut stream = StreamingDemodulator::new(&c);
        for _ in 0..(StreamingDemodulator::RENORM_INTERVAL * 3) {
            stream.push(Complex::ONE);
        }
        // Drift after 3k samples must be far below any signal scale.
        for q in 0..c.n_qubits() {
            let mag = stream.push(Complex::ONE)[q].abs();
            assert!((mag - 1.0).abs() < 1e-12, "q{q} magnitude {mag}");
        }
    }

    #[test]
    fn reset_restarts_the_oscillator() {
        let c = config();
        let mut stream = StreamingDemodulator::new(&c);
        let first = stream.push(Complex::ONE).to_vec();
        stream.push(Complex::ONE);
        stream.reset();
        assert_eq!(stream.samples_processed(), 0);
        let again = stream.push(Complex::ONE).to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn channel_count_matches_chip() {
        let c = config();
        let stream = StreamingDemodulator::new(&c);
        assert_eq!(stream.n_qubits(), 3);
    }
}
