//! Digital down-conversion of the multiplexed feedline trace.

use mlr_num::Complex;
use mlr_sim::ChipConfig;

/// Per-qubit digital down-converter for a frequency-multiplexed chip.
///
/// Holds one precomputed reference phasor table `e^{-i 2π f_q t}` per qubit;
/// demodulation is a sample-wise complex multiply (the "two FMA units" the
/// paper notes demodulation costs in hardware).
///
/// # Examples
///
/// ```
/// use mlr_dsp::Demodulator;
/// use mlr_sim::ChipConfig;
///
/// let config = ChipConfig::five_qubit_paper();
/// let demod = Demodulator::new(&config);
/// assert_eq!(demod.n_qubits(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Demodulator {
    /// `references[q][n] = e^{-i 2π f_q t_n}`.
    references: Vec<Vec<Complex>>,
}

impl Demodulator {
    /// Builds reference tables for every qubit of `config`.
    pub fn new(config: &ChipConfig) -> Self {
        let dt_us = config.dt_us();
        let references = config
            .qubits
            .iter()
            .map(|q| {
                (0..config.n_samples)
                    .map(|n| {
                        let t_us = n as f64 * dt_us;
                        Complex::cis(-std::f64::consts::TAU * q.if_freq_mhz * t_us)
                    })
                    .collect()
            })
            .collect();
        Self { references }
    }

    /// Number of qubits the demodulator was built for.
    pub fn n_qubits(&self) -> usize {
        self.references.len()
    }

    /// Trace length the references were generated for.
    pub fn n_samples(&self) -> usize {
        self.references.first().map_or(0, Vec::len)
    }

    /// Borrows qubit `q`'s reference phasor table `e^{-i 2π f_q t_n}` —
    /// what a fused demodulate-and-score path folds into its kernels.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn reference(&self, q: usize) -> &[Complex] {
        &self.references[q]
    }

    /// Demodulates the composite trace to qubit `q`'s baseband.
    ///
    /// Traces shorter than the reference table are allowed (truncated
    /// readout); the output matches the input length.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or the trace is longer than the
    /// reference table.
    pub fn demodulate(&self, raw: &[Complex], q: usize) -> Vec<Complex> {
        let refs = &self.references[q];
        assert!(
            raw.len() <= refs.len(),
            "trace longer than demodulation reference"
        );
        raw.iter().zip(refs).map(|(&s, &r)| s * r).collect()
    }

    /// Demodulates all channels at once.
    ///
    /// # Panics
    ///
    /// As for [`Demodulator::demodulate`].
    pub fn demodulate_all(&self, raw: &[Complex]) -> Vec<Vec<Complex>> {
        (0..self.n_qubits())
            .map(|q| self.demodulate(raw, q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_num::Complex;

    fn tiny_config() -> ChipConfig {
        let mut c = ChipConfig::uniform(2);
        c.n_samples = 100;
        c
    }

    #[test]
    fn demodulating_own_tone_gives_dc() {
        let c = tiny_config();
        let demod = Demodulator::new(&c);
        let f = c.qubits[0].if_freq_mhz;
        let dt = c.dt_us();
        // Pure unit tone at qubit 0's frequency.
        let raw: Vec<Complex> = (0..c.n_samples)
            .map(|n| Complex::cis(std::f64::consts::TAU * f * n as f64 * dt))
            .collect();
        let bb = demod.demodulate(&raw, 0);
        for z in bb {
            assert!((z - Complex::ONE).abs() < 1e-9);
        }
    }

    #[test]
    fn foreign_tone_averages_out() {
        let c = tiny_config();
        let demod = Demodulator::new(&c);
        let f1 = c.qubits[1].if_freq_mhz;
        let dt = c.dt_us();
        let raw: Vec<Complex> = (0..c.n_samples)
            .map(|n| Complex::cis(std::f64::consts::TAU * f1 * n as f64 * dt))
            .collect();
        // Demodulate with qubit 0's reference: result rotates at f1-f0 and
        // integrates to ~0 over an integer number of beat periods.
        let bb = demod.demodulate(&raw, 0);
        let mean = bb.iter().copied().sum::<Complex>() / bb.len() as f64;
        assert!(mean.abs() < 0.05, "residual {}", mean.abs());
    }

    #[test]
    fn truncated_trace_is_accepted() {
        let c = tiny_config();
        let demod = Demodulator::new(&c);
        let raw = vec![Complex::ONE; 40];
        assert_eq!(demod.demodulate(&raw, 1).len(), 40);
    }

    #[test]
    #[should_panic(expected = "trace longer")]
    fn over_long_trace_is_rejected() {
        let c = tiny_config();
        let demod = Demodulator::new(&c);
        let raw = vec![Complex::ONE; 101];
        let _ = demod.demodulate(&raw, 0);
    }
}
