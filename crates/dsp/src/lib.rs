//! Classical signal processing for the readout chain: digital
//! down-conversion, boxcar filtering, matched filters, and trace summary
//! statistics.
//!
//! This is the "Filtering" and "Demultiplexing" stage of the readout
//! pipeline in Fig. 1(b) of the paper. The raw composite ADC trace from
//! [`mlr_sim`] is demodulated per qubit ([`Demodulator`]), optionally
//! reduced by a boxcar filter, and then either summarised to a single IQ
//! point (for LDA/QDA-style discriminators) or scored against
//! [`MatchedFilter`] kernels (for HERQULES and the proposed design).
//!
//! # Examples
//!
//! ```
//! use mlr_sim::{BasisState, ChipConfig, Level, ReadoutSimulator};
//! use mlr_dsp::Demodulator;
//! use rand::SeedableRng;
//!
//! let config = ChipConfig::five_qubit_paper();
//! let sim = ReadoutSimulator::new(config.clone());
//! let demod = Demodulator::new(&config);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let shot = sim.simulate_shot(&BasisState::uniform(5, Level::Ground), &mut rng);
//! let baseband = demod.demodulate(&shot.raw, 0);
//! assert_eq!(baseband.len(), shot.raw.len());
//! ```

#![deny(missing_docs)]

mod demod;
mod features;
mod filter;
mod matched;
mod streaming;

pub use demod::Demodulator;
pub use features::{iq_features, mean_trace_value, tone_amplitude, tone_power, trace_energy};
pub use filter::{boxcar_decimate, integrate, moving_average};
pub use matched::{MatchedFilter, MatchedFilterKind};
pub use streaming::StreamingDemodulator;
