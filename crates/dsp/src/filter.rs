//! Boxcar (averaging) filters and full-trace integration.

use mlr_num::Complex;

/// Integrates a complex trace to a single IQ point (the arithmetic mean of
/// all samples) — the classic boxcar-integrated readout value used by
/// IQ-plane discriminators such as LDA/QDA.
///
/// Returns zero for an empty trace.
///
/// # Examples
///
/// ```
/// use mlr_dsp::integrate;
/// use mlr_num::Complex;
///
/// let trace = vec![Complex::new(1.0, 1.0); 10];
/// assert_eq!(integrate(&trace), Complex::new(1.0, 1.0));
/// ```
pub fn integrate(trace: &[Complex]) -> Complex {
    if trace.is_empty() {
        return Complex::ZERO;
    }
    trace.iter().copied().sum::<Complex>() / trace.len() as f64
}

/// Boxcar-filters and decimates a trace: averages every window of `window`
/// consecutive samples into one output sample. A trailing partial window is
/// averaged over its actual length.
///
/// # Panics
///
/// Panics if `window == 0`.
///
/// # Examples
///
/// ```
/// use mlr_dsp::boxcar_decimate;
/// use mlr_num::Complex;
///
/// let trace: Vec<_> = (0..6).map(|n| Complex::new(n as f64, 0.0)).collect();
/// let out = boxcar_decimate(&trace, 2);
/// assert_eq!(out.len(), 3);
/// assert_eq!(out[0].re, 0.5);
/// ```
pub fn boxcar_decimate(trace: &[Complex], window: usize) -> Vec<Complex> {
    assert!(window > 0, "window must be positive");
    trace
        .chunks(window)
        .map(|chunk| chunk.iter().copied().sum::<Complex>() / chunk.len() as f64)
        .collect()
}

/// Centred moving average over a real signal with an odd window of
/// `2 * half + 1` samples, shrinking near the edges.
///
/// # Examples
///
/// ```
/// use mlr_dsp::moving_average;
///
/// let out = moving_average(&[1.0, 2.0, 3.0, 4.0, 5.0], 1);
/// assert_eq!(out[2], 3.0);
/// assert_eq!(out[0], 1.5); // edge window shrinks to [1, 2]
/// ```
pub fn moving_average(signal: &[f64], half: usize) -> Vec<f64> {
    let n = signal.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            signal[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrate_empty_is_zero() {
        assert_eq!(integrate(&[]), Complex::ZERO);
    }

    #[test]
    fn integrate_averages() {
        let t = vec![Complex::new(2.0, -2.0), Complex::new(4.0, 2.0)];
        assert_eq!(integrate(&t), Complex::new(3.0, 0.0));
    }

    #[test]
    fn boxcar_partial_window() {
        let t: Vec<_> = (0..5).map(|n| Complex::new(n as f64, 0.0)).collect();
        let out = boxcar_decimate(&t, 2);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].re, 4.0); // lone trailing sample
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn boxcar_rejects_zero_window() {
        let _ = boxcar_decimate(&[Complex::ZERO], 0);
    }

    #[test]
    fn moving_average_constant_is_identity() {
        let s = vec![3.0; 7];
        assert_eq!(moving_average(&s, 2), s);
    }

    #[test]
    fn moving_average_smooths_impulse() {
        let mut s = vec![0.0; 9];
        s[4] = 9.0;
        let out = moving_average(&s, 1);
        assert_eq!(out[3], 3.0);
        assert_eq!(out[4], 3.0);
        assert_eq!(out[5], 3.0);
        assert_eq!(out[0], 0.0);
    }
}
