//! Matched filters for binary state discrimination (Sec. V-B).

use mlr_num::RunningStats;
use serde::{Deserialize, Serialize};

/// Which matched-filter kernel normalisation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MatchedFilterKind {
    /// The paper's kernel: `K = (μ₁ − μ₀) / (σ₁² − σ₀²)` per time bin, with
    /// the denominator magnitude floored to avoid blow-up where the two
    /// classes have (near-)equal variance.
    PaperVarianceDiff,
    /// The textbook SNR-optimal kernel for unequal-variance Gaussian bins:
    /// `K = (μ₁ − μ₀) / (σ₁² + σ₀²)`. Numerically robust and used as the
    /// default throughout this reproduction; with the simulator's
    /// state-dependent variances the two kinds behave nearly identically
    /// (see the ablation bench).
    #[default]
    VarianceSum,
}

/// A binary matched filter over real feature vectors (I samples followed by
/// Q samples, see [`crate::iq_features`]).
///
/// Built from the per-time-bin mean/variance statistics of two labelled
/// classes; applying it is a single dot product that maximises the
/// signal-to-noise ratio between the classes. The paper composes nine of
/// these per qubit (QMF/RMF/EMF, Table III) as the input stage of its
/// discriminator.
///
/// # Examples
///
/// ```
/// use mlr_dsp::{MatchedFilter, MatchedFilterKind};
///
/// let class0 = [vec![0.0, 0.0], vec![0.2, -0.2]];
/// let class1 = [vec![1.0, 1.0], vec![0.8, 1.2]];
/// let mf = MatchedFilter::fit(
///     class0.iter().map(|v| v.as_slice()),
///     class1.iter().map(|v| v.as_slice()),
///     MatchedFilterKind::VarianceSum,
/// ).expect("both classes populated");
/// assert!(mf.apply(&[1.0, 1.0]) > mf.apply(&[0.0, 0.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchedFilter {
    kernel: Vec<f64>,
    /// Midpoint score between the two class means; `apply(x) > threshold()`
    /// favours class 1.
    threshold: f64,
    kind: MatchedFilterKind,
}

impl MatchedFilter {
    /// Relative floor applied to the kernel denominator, as a fraction of
    /// the mean absolute denominator across bins.
    const DENOM_FLOOR_REL: f64 = 1e-3;

    /// Fits a kernel from two iterators of feature vectors (class 0 and
    /// class 1). All vectors must share one length.
    ///
    /// Returns `None` if either class is empty or the vectors are
    /// zero-length.
    pub fn fit<'a>(
        class0: impl IntoIterator<Item = &'a [f64]>,
        class1: impl IntoIterator<Item = &'a [f64]>,
        kind: MatchedFilterKind,
    ) -> Option<Self> {
        let mut s0: Option<RunningStats> = None;
        for x in class0 {
            s0.get_or_insert_with(|| RunningStats::new(x.len())).push(x);
        }
        let mut s1: Option<RunningStats> = None;
        for x in class1 {
            s1.get_or_insert_with(|| RunningStats::new(x.len())).push(x);
        }
        Self::from_stats(&s0?, &s1?, kind)
    }

    /// Fits a kernel directly from per-bin statistics of the two classes.
    ///
    /// Returns `None` for zero-length statistics or mismatched lengths.
    pub fn from_stats(
        stats0: &RunningStats,
        stats1: &RunningStats,
        kind: MatchedFilterKind,
    ) -> Option<Self> {
        if stats0.is_empty() || stats0.len() != stats1.len() {
            return None;
        }
        let mu0 = stats0.means();
        let mu1 = stats1.means();
        let v0 = stats0.variances();
        let v1 = stats1.variances();

        let raw_denoms: Vec<f64> = match kind {
            MatchedFilterKind::PaperVarianceDiff => {
                v0.iter().zip(&v1).map(|(a, b)| b - a).collect()
            }
            MatchedFilterKind::VarianceSum => v0.iter().zip(&v1).map(|(a, b)| a + b).collect(),
        };
        let scale = raw_denoms.iter().map(|d| d.abs()).sum::<f64>() / raw_denoms.len() as f64;
        let floor = (scale * Self::DENOM_FLOOR_REL).max(1e-12);
        let kernel: Vec<f64> = mu0
            .iter()
            .zip(&mu1)
            .zip(&raw_denoms)
            .map(|((m0, m1), &d)| {
                let denom = if d.abs() < floor {
                    floor.copysign(if d == 0.0 { 1.0 } else { d })
                } else {
                    d
                };
                (m1 - m0) / denom
            })
            .collect();

        let dot = |xs: &[f64]| xs.iter().zip(&kernel).map(|(a, b)| a * b).sum::<f64>();
        let threshold = 0.5 * (dot(&mu0) + dot(&mu1));
        Some(Self {
            kernel,
            threshold,
            kind,
        })
    }

    /// Scores a feature vector: the dot product with the kernel. Larger
    /// scores favour class 1.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the kernel length.
    #[inline]
    pub fn apply(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.kernel.len(), "feature length mismatch");
        features.iter().zip(&self.kernel).map(|(a, b)| a * b).sum()
    }

    /// Hard binary decision: `true` selects class 1.
    ///
    /// # Panics
    ///
    /// As for [`MatchedFilter::apply`].
    pub fn classify(&self, features: &[f64]) -> bool {
        self.apply(features) > self.threshold
    }

    /// Partial score of the first `prefix.len()` baseband samples against a
    /// kernel fitted at full trace length: pairs sample `t` with I-weight
    /// `kernel[t]` and Q-weight `kernel[L + t]` (the [`crate::iq_features`]
    /// layout with `L = kernel.len() / 2`).
    ///
    /// Streaming readout accumulates exactly this sum one sample at a time;
    /// at `prefix.len() == L` it equals [`MatchedFilter::apply`] on the full
    /// feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the kernel length is odd (not an IQ layout) or the prefix
    /// is longer than the kernel's trace length.
    pub fn apply_iq_prefix(&self, prefix: &[mlr_num::Complex]) -> f64 {
        assert!(
            self.kernel.len().is_multiple_of(2),
            "kernel is not an IQ feature layout"
        );
        let l = self.kernel.len() / 2;
        assert!(prefix.len() <= l, "prefix longer than the fitted trace");
        prefix
            .iter()
            .enumerate()
            .map(|(t, z)| self.kernel[t] * z.re + self.kernel[l + t] * z.im)
            .sum()
    }

    /// The decision threshold (midpoint of the two class-mean scores).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Borrows the kernel weights.
    pub fn kernel(&self) -> &[f64] {
        &self.kernel
    }

    /// The normalisation this filter was fit with.
    pub fn kind(&self) -> MatchedFilterKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_class(rng: &mut StdRng, mean: &[f64], sigma: f64, n: usize) -> Vec<Vec<f64>> {
        use rand_distr::{Distribution, Normal};
        let norm = Normal::new(0.0, sigma).unwrap();
        (0..n)
            .map(|_| mean.iter().map(|m| m + norm.sample(rng)).collect())
            .collect()
    }

    #[test]
    fn separates_gaussian_classes() {
        // Heteroscedastic classes: the paper's variance-difference kernel is
        // only well defined when the two classes differ in variance, which
        // is the regime readout traces live in (state-dependent jump noise).
        let mut rng = StdRng::seed_from_u64(1);
        let c0 = gaussian_class(&mut rng, &[0.0, 0.0, 0.0, 0.0], 0.5, 400);
        let c1 = gaussian_class(&mut rng, &[1.0, 1.0, -1.0, 0.5], 0.9, 400);
        for kind in [
            MatchedFilterKind::VarianceSum,
            MatchedFilterKind::PaperVarianceDiff,
        ] {
            let mf = MatchedFilter::fit(
                c0.iter().map(|v| v.as_slice()),
                c1.iter().map(|v| v.as_slice()),
                kind,
            )
            .unwrap();
            let mut errors = 0;
            for x in &c0 {
                if mf.classify(x) {
                    errors += 1;
                }
            }
            for x in &c1 {
                if !mf.classify(x) {
                    errors += 1;
                }
            }
            // Midpoint threshold on overlapping Gaussians with these SNRs:
            // expect roughly 10% error, far better than the 50% of chance.
            assert!(
                (errors as f64) / 800.0 < 0.15,
                "{kind:?} error rate too high: {errors}/800"
            );
        }
    }

    #[test]
    fn kernel_weights_favour_informative_bins() {
        // Bin 0 separates the classes, bin 1 is pure noise.
        let mut rng = StdRng::seed_from_u64(2);
        let c0: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![rng.gen::<f64>() * 0.1, rng.gen::<f64>() * 2.0 - 1.0])
            .collect();
        let c1: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![1.0 + rng.gen::<f64>() * 0.1, rng.gen::<f64>() * 2.0 - 1.0])
            .collect();
        let mf = MatchedFilter::fit(
            c0.iter().map(|v| v.as_slice()),
            c1.iter().map(|v| v.as_slice()),
            MatchedFilterKind::VarianceSum,
        )
        .unwrap();
        assert!(mf.kernel()[0].abs() > 10.0 * mf.kernel()[1].abs());
    }

    #[test]
    fn empty_class_returns_none() {
        let c1 = [vec![1.0, 2.0]];
        let none = MatchedFilter::fit(
            std::iter::empty(),
            c1.iter().map(|v| v.as_slice()),
            MatchedFilterKind::VarianceSum,
        );
        assert!(none.is_none());
    }

    #[test]
    fn paper_kernel_survives_equal_variances() {
        // Both classes have identical variance; the floored denominator must
        // keep the kernel finite and still separating.
        let c0 = [vec![0.0, 0.0], vec![0.1, 0.1], vec![-0.1, -0.1]];
        let c1 = [vec![1.0, 1.0], vec![1.1, 1.1], vec![0.9, 0.9]];
        let mf = MatchedFilter::fit(
            c0.iter().map(|v| v.as_slice()),
            c1.iter().map(|v| v.as_slice()),
            MatchedFilterKind::PaperVarianceDiff,
        )
        .unwrap();
        assert!(mf.kernel().iter().all(|k| k.is_finite()));
        assert!(mf.apply(&[1.0, 1.0]) > mf.apply(&[0.0, 0.0]));
    }

    #[test]
    fn threshold_is_midpoint() {
        let c0 = [vec![-0.2], vec![0.2]];
        let c1 = [vec![1.8], vec![2.2]];
        let mf = MatchedFilter::fit(
            c0.iter().map(|v| v.as_slice()),
            c1.iter().map(|v| v.as_slice()),
            MatchedFilterKind::VarianceSum,
        )
        .unwrap();
        let mid = mf.apply(&[1.0]);
        assert!((mf.threshold() - mid).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn apply_checks_length() {
        let c0 = [vec![0.0, 0.0]];
        let c1 = [vec![1.0, 1.0]];
        let mf = MatchedFilter::fit(
            c0.iter().map(|v| v.as_slice()),
            c1.iter().map(|v| v.as_slice()),
            MatchedFilterKind::VarianceSum,
        )
        .unwrap();
        let _ = mf.apply(&[1.0]);
    }
}
