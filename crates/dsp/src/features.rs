//! Trace-level feature extraction: real feature vectors and the Mean Trace
//! Value (MTV) of Sec. V-A.

use mlr_num::Complex;

/// Flattens a complex trace into a real feature vector: all I samples
/// followed by all Q samples (length `2 * trace.len()`).
///
/// This is the layout fed to matched filters and to the raw-trace FNN
/// baseline (500 I + 500 Q = 1000 inputs in the paper).
///
/// # Examples
///
/// ```
/// use mlr_dsp::iq_features;
/// use mlr_num::Complex;
///
/// let f = iq_features(&[Complex::new(1.0, 3.0), Complex::new(2.0, 4.0)]);
/// assert_eq!(f, vec![1.0, 2.0, 3.0, 4.0]);
/// ```
pub fn iq_features(trace: &[Complex]) -> Vec<f64> {
    let mut out = Vec::with_capacity(trace.len() * 2);
    out.extend(trace.iter().map(|z| z.re));
    out.extend(trace.iter().map(|z| z.im));
    out
}

/// Mean Trace Value: the temporal mean of a trace, one point in the IQ
/// plane per trace.
///
/// The paper (Sec. V-A) clusters MTV points to find naturally occurring
/// leakage without explicit `|2⟩` calibration; numerically the MTV is
/// identical to [`crate::integrate`], re-exported here under the paper's
/// name for readability at call sites.
///
/// # Examples
///
/// ```
/// use mlr_dsp::mean_trace_value;
/// use mlr_num::Complex;
///
/// let mtv = mean_trace_value(&[Complex::new(0.0, 2.0), Complex::new(2.0, 0.0)]);
/// assert_eq!(mtv, Complex::new(1.0, 1.0));
/// ```
pub fn mean_trace_value(trace: &[Complex]) -> Complex {
    crate::integrate(trace)
}

/// Total energy of a trace (sum of squared magnitudes); a cheap scalar
/// sanity statistic used in tests and diagnostics.
pub fn trace_energy(trace: &[Complex]) -> f64 {
    trace.iter().map(|z| z.norm_sqr()).sum()
}

/// Single-bin discrete Fourier transform of a complex trace at an
/// arbitrary frequency (in MHz, with `dt_us` the sample period):
/// `X(f) = Σ_n x[n] e^{-i 2π f n dt}`, normalised by the sample count.
///
/// The per-tone probe a multiplexed readout chain uses for diagnostics:
/// evaluate it at each qubit's intermediate frequency to measure tone
/// power and at the neighbours' frequencies to measure inter-channel
/// leakage — without computing a full FFT (the classic Goertzel use).
///
/// Returns zero for an empty trace.
///
/// # Examples
///
/// ```
/// use mlr_dsp::tone_amplitude;
/// use mlr_num::Complex;
///
/// // Unit tone at 25 MHz, sampled at 500 MS/s.
/// let dt = 0.002; // µs
/// let trace: Vec<Complex> = (0..500)
///     .map(|n| Complex::cis(std::f64::consts::TAU * 25.0 * n as f64 * dt))
///     .collect();
/// assert!((tone_amplitude(&trace, 25.0, dt).abs() - 1.0).abs() < 1e-9);
/// assert!(tone_amplitude(&trace, 75.0, dt).abs() < 0.01);
/// ```
pub fn tone_amplitude(trace: &[Complex], freq_mhz: f64, dt_us: f64) -> Complex {
    if trace.is_empty() {
        return Complex::ZERO;
    }
    let step = Complex::cis(-std::f64::consts::TAU * freq_mhz * dt_us);
    let mut phasor = Complex::ONE;
    let mut acc = Complex::ZERO;
    for &z in trace {
        acc += z * phasor;
        phasor *= step;
    }
    acc / trace.len() as f64
}

/// Power (squared magnitude) of [`tone_amplitude`] at `freq_mhz`.
pub fn tone_power(trace: &[Complex], freq_mhz: f64, dt_us: f64) -> f64 {
    tone_amplitude(trace, freq_mhz, dt_us).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_layout_is_i_then_q() {
        let t = vec![
            Complex::new(1.0, -1.0),
            Complex::new(2.0, -2.0),
            Complex::new(3.0, -3.0),
        ];
        let f = iq_features(&t);
        assert_eq!(f[..3], [1.0, 2.0, 3.0]);
        assert_eq!(f[3..], [-1.0, -2.0, -3.0]);
    }

    #[test]
    fn mtv_matches_integrate() {
        let t = vec![Complex::new(1.0, 0.5), Complex::new(3.0, 1.5)];
        assert_eq!(mean_trace_value(&t), crate::integrate(&t));
    }

    #[test]
    fn energy_of_unit_trace() {
        let t = vec![Complex::ONE; 8];
        assert_eq!(trace_energy(&t), 8.0);
    }

    #[test]
    fn empty_trace_edge_cases() {
        assert!(iq_features(&[]).is_empty());
        assert_eq!(trace_energy(&[]), 0.0);
        assert_eq!(mean_trace_value(&[]), Complex::ZERO);
        assert_eq!(tone_amplitude(&[], 10.0, 0.002), Complex::ZERO);
    }

    #[test]
    fn tone_amplitude_resolves_multiplexed_tones() {
        // Two tones of different amplitude 50 MHz apart: each probe reads
        // back its own tone's amplitude and phase, not the neighbour's.
        let dt = 0.002;
        let trace: Vec<Complex> = (0..500)
            .map(|n| {
                let t = n as f64 * dt;
                Complex::cis(std::f64::consts::TAU * (-25.0) * t) * 2.0
                    + Complex::cis(std::f64::consts::TAU * 25.0 * t) * 0.5
            })
            .collect();
        let a_lo = tone_amplitude(&trace, -25.0, dt);
        let a_hi = tone_amplitude(&trace, 25.0, dt);
        assert!((a_lo.abs() - 2.0).abs() < 1e-9, "{}", a_lo.abs());
        assert!((a_hi.abs() - 0.5).abs() < 1e-9, "{}", a_hi.abs());
        // And the power probe squares it.
        assert!((tone_power(&trace, -25.0, dt) - 4.0).abs() < 1e-8);
    }

    #[test]
    fn tone_amplitude_at_dc_is_the_mtv() {
        let trace = vec![Complex::new(1.0, 2.0), Complex::new(3.0, -1.0)];
        let dc = tone_amplitude(&trace, 0.0, 0.002);
        assert!((dc - mean_trace_value(&trace)).abs() < 1e-12);
    }
}
