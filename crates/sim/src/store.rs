//! The structure-of-arrays trace arena: one flat buffer for every shot's
//! raw trace plus parallel side arrays for the ground-truth metadata.
//!
//! Datasets scale as `levels^n_qubits × shots_per_state`, and the batch
//! kernels in `mlr-core`/`mlr-dsp` stream traces back to back. Holding each
//! shot as its own heap allocation (the pre-arena `Vec<Shot>` layout) made
//! every batch pass chase pointers between shots; [`TraceStore`] instead
//! owns **one** contiguous `Vec<Complex>` with a fixed stride of
//! `n_samples` per shot — the layout a frequency-multiplexed ADC capture
//! naturally produces — and parallel arrays for prepared/initial/final
//! levels (packed per-qubit) and transition events (CSR-style offsets).
//!
//! Read paths borrow [`ShotView`]s out of the arena; nothing on the
//! inference side owns or copies trace memory. Window truncation is a
//! stride-narrowed view (see [`ShotView::truncate`]), not a clone.

use mlr_num::Complex;

use crate::{BasisState, Level, Shot, TransitionEvent};

/// The ground-truth metadata of one simulated shot — everything a
/// [`Shot`] holds except the raw trace, which lives in the arena.
///
/// Produced by [`crate::ReadoutSimulator::simulate_shot_into`] while the
/// trace itself is written directly into a pre-sliced arena chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotRecord {
    /// State the register was nominally prepared in.
    pub prepared: BasisState,
    /// State actually occupied at the start of the window.
    pub initial: BasisState,
    /// State occupied at the end of the window.
    pub final_state: BasisState,
    /// Every mid-trace level transition, in time order.
    pub events: Vec<TransitionEvent>,
}

/// A borrowed, zero-copy view of one shot: the raw trace slice out of the
/// arena plus per-qubit level slices and the shot's transition events.
///
/// This is what every read path (feature extraction, evaluation,
/// baselines, repro binaries) consumes instead of an owned [`Shot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShotView<'a> {
    /// Composite ADC trace, one complex (I, Q) sample per time bin.
    pub raw: &'a [Complex],
    /// Nominally prepared per-qubit levels (the usual classification label).
    pub prepared: &'a [Level],
    /// Per-qubit levels actually occupied at the start of the window.
    pub initial: &'a [Level],
    /// Per-qubit levels at the end of the window.
    pub final_state: &'a [Level],
    /// Mid-trace transitions inside the viewed window, in time order.
    pub events: &'a [TransitionEvent],
}

impl<'a> ShotView<'a> {
    /// Number of ADC samples in the viewed trace.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// `true` if the viewed trace is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Number of qubits in the register.
    pub fn n_qubits(&self) -> usize {
        self.prepared.len()
    }

    /// `true` if qubit `q` jumped at least once inside the viewed window.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range for the register.
    pub fn qubit_jumped(&self, q: usize) -> bool {
        assert!(q < self.n_qubits(), "qubit index out of range");
        self.events.iter().any(|e| e.qubit == q)
    }

    /// The prepared register as an owned [`BasisState`].
    pub fn prepared_state(&self) -> BasisState {
        BasisState::new(self.prepared.to_vec())
    }

    /// The true initial register as an owned [`BasisState`].
    pub fn initial_state(&self) -> BasisState {
        BasisState::new(self.initial.to_vec())
    }

    /// The final register as an owned [`BasisState`].
    pub fn final_basis_state(&self) -> BasisState {
        BasisState::new(self.final_state.to_vec())
    }

    /// Narrows the view to the first `n_samples` samples — the zero-copy
    /// replacement for [`Shot::truncated`]. Events past the shortened
    /// window are dropped by slicing (they are time-ordered, so the kept
    /// set is a prefix); no trace or event memory is copied.
    pub fn truncate(&self, n_samples: usize, sample_rate_mhz: f64) -> ShotView<'a> {
        let n = n_samples.min(self.raw.len());
        let t_max = n as f64 / sample_rate_mhz;
        let kept = self.events.partition_point(|e| e.time_us < t_max);
        ShotView {
            raw: &self.raw[..n],
            events: &self.events[..kept],
            ..*self
        }
    }

    /// Materialises the view as an owned [`Shot`] — the legacy AoS form,
    /// kept for compatibility checks and equivalence tests.
    pub fn to_shot(&self) -> Shot {
        Shot {
            raw: self.raw.to_vec(),
            prepared: self.prepared_state(),
            initial: self.initial_state(),
            final_state: self.final_basis_state(),
            events: self.events.to_vec(),
        }
    }
}

/// The structure-of-arrays shot arena backing [`crate::TraceDataset`].
///
/// Layout:
///
/// ```text
/// raw:            [ shot 0: n_samples × Complex | shot 1 | … ]   (stride = n_samples)
/// prepared:       [ shot 0: n_qubits × Level    | shot 1 | … ]   (stride = n_qubits)
/// initial:        [ …same stride… ]
/// finals:         [ …same stride… ]
/// events:         [ all shots' transitions, concatenated ]
/// event_offsets:  [ n_shots + 1 cumulative counts into `events` ]
/// ```
///
/// # Examples
///
/// ```
/// use mlr_sim::{ChipConfig, TraceDataset};
///
/// let mut config = ChipConfig::five_qubit_paper();
/// config.n_samples = 60;
/// let ds = TraceDataset::generate(&config, 2, 1, 3);
/// let store = ds.store();
/// assert_eq!(store.len(), 32);
/// assert_eq!(store.raw_arena().len(), 32 * 60);
/// assert_eq!(store.view(0).raw.len(), 60);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStore {
    n_qubits: usize,
    n_samples: usize,
    raw: Vec<Complex>,
    prepared: Vec<Level>,
    initial: Vec<Level>,
    finals: Vec<Level>,
    events: Vec<TransitionEvent>,
    event_offsets: Vec<usize>,
}

impl TraceStore {
    /// Assembles a store from a filled arena and per-shot records, packing
    /// the records into the side arrays.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` is not `records.len() * n_samples` or any
    /// record's register width differs from `n_qubits`.
    pub fn assemble(
        n_qubits: usize,
        n_samples: usize,
        raw: Vec<Complex>,
        records: Vec<ShotRecord>,
    ) -> Self {
        assert_eq!(
            raw.len(),
            records.len() * n_samples,
            "arena length != n_shots * n_samples"
        );
        let n_shots = records.len();
        let mut prepared = Vec::with_capacity(n_shots * n_qubits);
        let mut initial = Vec::with_capacity(n_shots * n_qubits);
        let mut finals = Vec::with_capacity(n_shots * n_qubits);
        let mut events = Vec::new();
        let mut event_offsets = Vec::with_capacity(n_shots + 1);
        event_offsets.push(0);
        for r in records {
            assert_eq!(r.prepared.n_qubits(), n_qubits, "record register width");
            assert_eq!(r.initial.n_qubits(), n_qubits, "record register width");
            assert_eq!(r.final_state.n_qubits(), n_qubits, "record register width");
            prepared.extend_from_slice(r.prepared.levels());
            initial.extend_from_slice(r.initial.levels());
            finals.extend_from_slice(r.final_state.levels());
            events.extend_from_slice(&r.events);
            event_offsets.push(events.len());
        }
        Self {
            n_qubits,
            n_samples,
            raw,
            prepared,
            initial,
            finals,
            events,
            event_offsets,
        }
    }

    /// Rebuilds a store from already-validated columns — the binary
    /// deserialisation path (`load_bin` validates shapes first).
    #[allow(clippy::too_many_arguments)] // column-per-argument is the point
    pub(crate) fn from_columns(
        n_qubits: usize,
        n_samples: usize,
        raw: Vec<Complex>,
        prepared: Vec<Level>,
        initial: Vec<Level>,
        finals: Vec<Level>,
        events: Vec<TransitionEvent>,
        event_offsets: Vec<usize>,
    ) -> Self {
        Self {
            n_qubits,
            n_samples,
            raw,
            prepared,
            initial,
            finals,
            events,
            event_offsets,
        }
    }

    /// Number of shots in the store.
    pub fn len(&self) -> usize {
        self.event_offsets.len() - 1
    }

    /// `true` if the store holds no shots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of qubits per shot.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Physical samples per trace — the arena stride. Windowed datasets may
    /// expose fewer samples per view without copying.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// The whole flat trace arena (`len() * n_samples()` samples).
    pub fn raw_arena(&self) -> &[Complex] {
        &self.raw
    }

    /// Raw trace of shot `i` at full stride.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn raw(&self, i: usize) -> &[Complex] {
        &self.raw[i * self.n_samples..(i + 1) * self.n_samples]
    }

    /// Prepared per-qubit levels of shot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn prepared_levels(&self, i: usize) -> &[Level] {
        &self.prepared[i * self.n_qubits..(i + 1) * self.n_qubits]
    }

    /// True initial per-qubit levels of shot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn initial_levels(&self, i: usize) -> &[Level] {
        &self.initial[i * self.n_qubits..(i + 1) * self.n_qubits]
    }

    /// Final per-qubit levels of shot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn final_levels(&self, i: usize) -> &[Level] {
        &self.finals[i * self.n_qubits..(i + 1) * self.n_qubits]
    }

    /// Transition events of shot `i`, in time order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn events(&self, i: usize) -> &[TransitionEvent] {
        &self.events[self.event_offsets[i]..self.event_offsets[i + 1]]
    }

    /// All shots' events concatenated in shot order (the CSR payload).
    pub fn events_flat(&self) -> &[TransitionEvent] {
        &self.events
    }

    /// Cumulative event offsets (`len() + 1` entries into
    /// [`TraceStore::events_flat`]).
    pub fn event_offsets(&self) -> &[usize] {
        &self.event_offsets
    }

    /// Full-stride view of shot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn view(&self, i: usize) -> ShotView<'_> {
        ShotView {
            raw: self.raw(i),
            prepared: self.prepared_levels(i),
            initial: self.initial_levels(i),
            final_state: self.final_levels(i),
            events: self.events(i),
        }
    }

    /// Iterates full-stride views over every shot.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = ShotView<'_>> {
        (0..self.len()).map(|i| self.view(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(width: usize, n_events: usize) -> ShotRecord {
        ShotRecord {
            prepared: BasisState::uniform(width, Level::Excited),
            initial: BasisState::uniform(width, Level::Excited),
            final_state: BasisState::uniform(width, Level::Ground),
            events: (0..n_events)
                .map(|k| TransitionEvent {
                    qubit: k % width,
                    time_us: 0.1 * (k + 1) as f64,
                    from: Level::Excited,
                    to: Level::Ground,
                })
                .collect(),
        }
    }

    fn store() -> TraceStore {
        let raw = vec![Complex::new(1.0, -1.0); 3 * 4];
        TraceStore::assemble(2, 4, raw, vec![record(2, 0), record(2, 2), record(2, 1)])
    }

    #[test]
    fn assembled_shapes_and_views() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.n_qubits(), 2);
        assert_eq!(s.n_samples(), 4);
        assert_eq!(s.raw_arena().len(), 12);
        assert_eq!(s.events(0).len(), 0);
        assert_eq!(s.events(1).len(), 2);
        assert_eq!(s.events(2).len(), 1);
        let v = s.view(1);
        assert_eq!(v.len(), 4);
        assert_eq!(v.n_qubits(), 2);
        assert!(v.qubit_jumped(0));
        assert_eq!(v.prepared_state(), BasisState::uniform(2, Level::Excited));
    }

    #[test]
    fn view_truncation_is_a_prefix() {
        let s = store();
        let v = s.view(1); // events at 0.1 us and 0.2 us
        let t = v.truncate(2, 10.0); // keep first 0.2 us
        assert_eq!(t.len(), 2);
        assert_eq!(t.events.len(), 1);
        // Zero-copy: same backing memory.
        assert!(std::ptr::eq(t.raw.as_ptr(), v.raw.as_ptr()));
        // Clamped, never extended.
        assert_eq!(v.truncate(99, 10.0).len(), 4);
    }

    #[test]
    fn to_shot_matches_legacy_truncation() {
        let s = store();
        let v = s.view(1);
        let legacy = v.to_shot().truncated(2, 10.0);
        let viewed = v.truncate(2, 10.0);
        assert_eq!(viewed.raw, &legacy.raw[..]);
        assert_eq!(viewed.events, &legacy.events[..]);
    }

    #[test]
    #[should_panic(expected = "arena length")]
    fn assemble_checks_arena_shape() {
        let _ = TraceStore::assemble(2, 4, vec![Complex::ZERO; 5], vec![record(2, 0)]);
    }
}
