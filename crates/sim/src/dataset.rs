//! Labelled trace datasets over the shot arena, and stratified
//! train/validation/test splits.

use std::num::NonZeroUsize;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::simulator::SimScratch;
use crate::{
    basis_state_count, BasisState, ChipConfig, Level, ReadoutSimulator, ShotRecord, ShotView,
    TraceStore, TransitionEvent,
};

/// SplitMix64 — mixes a seed and an index into an independent per-shot seed
/// so parallel generation is deterministic regardless of scheduling.
pub(crate) fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Worker threads for arena generation: the `MLR_THREADS` override
/// (clamped to at least 1) or the machine's available parallelism — the
/// same contract as `mlr_core::batch_threads`, duplicated here because the
/// simulator sits below the core crate.
fn generation_threads() -> usize {
    if let Some(n) = std::env::var("MLR_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Salt separating the state-sampling RNG stream from per-shot seeds, so
/// sampled preparations never correlate with the shots simulated for them.
const STATE_SAMPLE_SALT: u64 = 0x4D55_585F_5354_4154; // "MUX_STAT"

/// Draws `n_states` independent uniform basis states (each qubit's level
/// iid over `0..levels`) as a pure function of the inputs — the bounded
/// preparation set used when `levels^n` basis states cannot be enumerated
/// (crowded multiplexed feedlines; see [`crate::DatasetSpec::sampled`]).
///
/// # Panics
///
/// Panics if `levels` is not 2 or 3.
pub fn sample_basis_states(
    n_qubits: usize,
    levels: usize,
    n_states: usize,
    seed: u64,
) -> Vec<BasisState> {
    assert!((2..=3).contains(&levels), "levels must be 2 or 3");
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, STATE_SAMPLE_SALT));
    (0..n_states)
        .map(|_| {
            BasisState::new(
                (0..n_qubits)
                    .map(|_| {
                        crate::Level::from_index(rng.gen_range(0..levels))
                            .expect("sampled level < levels <= 3")
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Where a shot's classification label comes from.
///
/// The paper's three-level dataset is *not* explicitly calibrated: leaked
/// labels come from spectral clustering of naturally leaked traces
/// (Sec. V-A / VI). [`LabelSource::Initial`] models that pipeline — the
/// label is the state actually occupied at the start of the readout window
/// (computational preparation, natural leakage included) — while
/// [`LabelSource::Prepared`] labels by the nominal preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelSource {
    /// Label = nominally prepared state (explicit calibration).
    #[default]
    Prepared,
    /// Label = true state at the start of the window (cluster-harvested
    /// natural leakage, as in the paper's methodology).
    Initial,
}

/// A labelled collection of simulated readout shots, the stand-in for the
/// paper's captured five-qubit dataset (all `kⁿ` basis states, a fixed
/// number of shots each).
///
/// Shots live in a shared structure-of-arrays [`TraceStore`]: one flat
/// trace arena plus packed label/event side arrays. Read paths borrow
/// [`ShotView`]s ([`TraceDataset::view`]) or raw trace slices
/// ([`TraceDataset::raw`]); [`TraceDataset::truncated`] narrows the window
/// in O(1) by sharing the arena, never copying a trace.
///
/// # Examples
///
/// ```
/// use mlr_sim::{ChipConfig, TraceDataset};
///
/// let mut config = ChipConfig::five_qubit_paper();
/// config.n_samples = 100; // keep the doctest fast
/// let ds = TraceDataset::generate(&config, 2, 2, 42);
/// assert_eq!(ds.len(), 32 * 2); // 2^5 states x 2 shots
/// assert_eq!(ds.raw(0).len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct TraceDataset {
    config: ChipConfig,
    levels: usize,
    store: Arc<TraceStore>,
    label_source: LabelSource,
}

impl TraceDataset {
    /// Simulates `shots_per_state` shots for **every** `levels^n` basis
    /// state of the chip (in flat-index order), in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not 2 or 3 or the config is invalid.
    pub fn generate(config: &ChipConfig, levels: usize, shots_per_state: usize, seed: u64) -> Self {
        assert!((2..=3).contains(&levels), "levels must be 2 or 3");
        let states: Vec<BasisState> = (0..basis_state_count(config.n_qubits(), levels))
            .map(|i| BasisState::from_flat_index(i, config.n_qubits(), levels))
            .collect();
        Self::generate_states(config, levels, &states, shots_per_state, seed)
    }

    /// Simulates `shots_per_state` shots for each of the given prepared
    /// states, writing every trace directly into a pre-sliced chunk of one
    /// flat arena. Generation fans contiguous shot ranges out over scoped
    /// threads (the machine's parallelism, overridable with `MLR_THREADS`);
    /// per-shot seeds make the result independent of the thread count.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not 2 or 3 or the config is invalid.
    pub fn generate_states(
        config: &ChipConfig,
        levels: usize,
        states: &[BasisState],
        shots_per_state: usize,
        seed: u64,
    ) -> Self {
        Self::generate_states_with_threads(
            config,
            levels,
            states,
            shots_per_state,
            seed,
            generation_threads(),
        )
    }

    /// [`TraceDataset::generate_states`] with an explicit worker count —
    /// split out so thread-count independence is testable without touching
    /// the process environment.
    fn generate_states_with_threads(
        config: &ChipConfig,
        levels: usize,
        states: &[BasisState],
        shots_per_state: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!((2..=3).contains(&levels), "levels must be 2 or 3");
        let sim = ReadoutSimulator::new(config.clone());
        let n_samples = config.n_samples;
        let n_shots = states.len() * shots_per_state;
        let mut raw = vec![mlr_num::Complex::ZERO; n_shots * n_samples];
        let threads = threads.clamp(1, n_shots.max(1));
        let chunk_shots = n_shots.div_ceil(threads).max(1);
        let mut records: Vec<ShotRecord> = Vec::with_capacity(n_shots);
        std::thread::scope(|scope| {
            let sim = &sim;
            let handles: Vec<_> = raw
                .chunks_mut(chunk_shots * n_samples)
                .enumerate()
                .map(|(c, arena_chunk)| {
                    scope.spawn(move || {
                        let mut scratch = SimScratch::default();
                        arena_chunk
                            .chunks_exact_mut(n_samples)
                            .enumerate()
                            .map(|(j, out)| {
                                let g = c * chunk_shots + j;
                                let mut rng = StdRng::seed_from_u64(mix_seed(seed, g as u64));
                                sim.simulate_shot_into(
                                    &states[g / shots_per_state],
                                    &mut rng,
                                    &mut scratch,
                                    out,
                                )
                            })
                            .collect::<Vec<ShotRecord>>()
                    })
                })
                .collect();
            for handle in handles {
                records.extend(handle.join().expect("generation worker panicked"));
            }
        });
        let store = TraceStore::assemble(config.n_qubits(), n_samples, raw, records);
        Self {
            config: config.clone(),
            levels,
            store: Arc::new(store),
            label_source: LabelSource::Prepared,
        }
    }

    /// Simulates the paper's calibration-free methodology: only the `2ⁿ`
    /// computational basis states are prepared (`shots_per_state` each), and
    /// shots are **labelled by their true initial three-level state** —
    /// leaked labels exist only where natural leakage occurred, giving the
    /// heavily imbalanced class counts the paper reports (487 leaked traces
    /// on qubit 1 vs 17,642 on qubit 4).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid.
    pub fn generate_natural(config: &ChipConfig, shots_per_state: usize, seed: u64) -> Self {
        let states: Vec<BasisState> = (0..basis_state_count(config.n_qubits(), 2))
            .map(|i| BasisState::from_flat_index(i, config.n_qubits(), 2))
            .collect();
        let mut ds = Self::generate_states(config, 3, &states, shots_per_state, seed);
        ds.label_source = LabelSource::Initial;
        ds
    }

    /// Rebuilds a dataset around an existing store — the binary
    /// deserialisation path ([`TraceDataset::load_bin`]).
    pub(crate) fn from_store(
        config: ChipConfig,
        levels: usize,
        label_source: LabelSource,
        store: Arc<TraceStore>,
    ) -> Self {
        Self {
            config,
            levels,
            store,
            label_source,
        }
    }

    /// The chip configuration the shots were generated with. Its
    /// `n_samples` is the dataset's *window*, which a truncated dataset
    /// narrows below the store's physical stride.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Number of levels per qudit in the label alphabet (2 or 3).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The shared structure-of-arrays shot store backing this dataset.
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Samples per trace as exposed by this dataset's window.
    pub fn n_samples(&self) -> usize {
        self.config.n_samples
    }

    /// Raw trace of shot `i`, narrowed to the dataset window — a borrow
    /// out of the shared arena, never a copy.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn raw(&self, i: usize) -> &[mlr_num::Complex] {
        &self.store.raw(i)[..self.config.n_samples]
    }

    /// Zero-copy view of shot `i` (trace and events narrowed to the
    /// dataset window).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn view(&self, i: usize) -> ShotView<'_> {
        self.store
            .view(i)
            .truncate(self.config.n_samples, self.config.sample_rate_mhz)
    }

    /// Iterates zero-copy views over every shot.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = ShotView<'_>> {
        (0..self.len()).map(|i| self.view(i))
    }

    /// Transition events of shot `i` inside the dataset window.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn events(&self, i: usize) -> &[TransitionEvent] {
        self.view(i).events
    }

    /// Per-qubit level actually occupied by shot `i` at the start of the
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `qubit` is out of range.
    pub fn initial_level(&self, i: usize, qubit: usize) -> Level {
        self.store.initial_levels(i)[qubit]
    }

    /// Number of shots in the dataset.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the dataset holds no shots.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Where this dataset's labels come from.
    pub fn label_source(&self) -> LabelSource {
        self.label_source
    }

    /// The labelled per-qubit levels of shot `i` (per
    /// [`TraceDataset::label_source`]), borrowed from the side arrays.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn labelled_levels(&self, i: usize) -> &[Level] {
        match self.label_source {
            LabelSource::Prepared => self.store.prepared_levels(i),
            LabelSource::Initial => self.store.initial_levels(i),
        }
    }

    /// The labelled basis state of shot `i` as an owned register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn labelled_state(&self, i: usize) -> BasisState {
        BasisState::new(self.labelled_levels(i).to_vec())
    }

    /// Per-qubit level label of shot `i` (`0`, `1` or `2`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `qubit` is out of range.
    pub fn label(&self, i: usize, qubit: usize) -> usize {
        self.labelled_levels(i)[qubit].index()
    }

    /// Joint flat-index label of shot `i` over the dataset's level alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn joint_label(&self, i: usize) -> usize {
        crate::level::flat_index_of(self.labelled_levels(i), self.levels)
    }

    /// Returns a dataset whose window is narrowed to `n_samples` (for the
    /// readout-duration sweep). Labels are preserved.
    ///
    /// This is **O(1)** and zero-copy: the returned dataset shares the
    /// trace arena and side arrays; only the config's window shrinks.
    /// Views and [`TraceDataset::raw`] slices are stride-narrowed into the
    /// shared memory.
    pub fn truncated(&self, n_samples: usize) -> Self {
        Self {
            config: self.config.truncated(n_samples),
            levels: self.levels,
            store: Arc::clone(&self.store),
            label_source: self.label_source,
        }
    }

    /// Stratified split into train/validation/test index sets following the
    /// paper's methodology: per prepared state, `train_frac` of the shots go
    /// to training (of which `val_frac` are carved out for validation) and
    /// the rest to test. The paper uses `train_frac = 0.3`,
    /// `val_frac = 0.15`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are outside `[0, 1]`.
    pub fn split(&self, train_frac: f64, val_frac: f64, seed: u64) -> DatasetSplit {
        assert!((0.0..=1.0).contains(&train_frac), "train_frac out of range");
        assert!((0.0..=1.0).contains(&val_frac), "val_frac out of range");
        // Group indices by prepared state.
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..self.len() {
            groups.entry(self.joint_label(i)).or_default().push(i);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut split = DatasetSplit::default();
        for (_, mut idxs) in groups {
            idxs.shuffle(&mut rng);
            let n_train_total = (idxs.len() as f64 * train_frac).round() as usize;
            let n_val = (n_train_total as f64 * val_frac).round() as usize;
            for (pos, idx) in idxs.into_iter().enumerate() {
                if pos < n_train_total.saturating_sub(n_val) {
                    split.train.push(idx);
                } else if pos < n_train_total {
                    split.val.push(idx);
                } else {
                    split.test.push(idx);
                }
            }
        }
        split
    }

    /// The paper's split: 30 % train / 70 % test per state, 15 % of train
    /// reserved for validation.
    pub fn paper_split(&self, seed: u64) -> DatasetSplit {
        self.split(0.3, 0.15, seed)
    }
}

/// Index sets produced by [`TraceDataset::split`]. Indices refer to shot
/// positions in the dataset ([`TraceDataset::view`] /
/// [`TraceDataset::raw`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetSplit {
    /// Training-set shot indices.
    pub train: Vec<usize>,
    /// Validation-set shot indices (carved out of the training fraction).
    pub val: Vec<usize>,
    /// Test-set shot indices.
    pub test: Vec<usize>,
}

impl DatasetSplit {
    /// Total number of indexed shots across the three sets.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// `true` if no shots are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ChipConfig {
        let mut c = ChipConfig::five_qubit_paper();
        c.n_samples = 50;
        c
    }

    #[test]
    fn generation_is_deterministic_and_complete() {
        let c = small_config();
        let a = TraceDataset::generate(&c, 2, 3, 7);
        let b = TraceDataset::generate(&c, 2, 3, 7);
        assert_eq!(a.len(), 32 * 3);
        assert_eq!(a.store(), b.store());
        let other = TraceDataset::generate(&c, 2, 3, 8);
        assert_ne!(a.store(), other.store());
    }

    #[test]
    fn arena_generation_matches_per_shot_simulation() {
        // The arena path (simulate_shot_into over pre-sliced chunks) must
        // be bit-identical to driving the simulator one owned Shot at a
        // time with the same per-shot seeds.
        let c = small_config();
        let ds = TraceDataset::generate(&c, 3, 2, 11);
        let sim = ReadoutSimulator::new(c);
        for i in [0usize, 7, 100, ds.len() - 1] {
            let state = BasisState::from_flat_index(i / 2, 5, 3);
            let mut rng = StdRng::seed_from_u64(mix_seed(11, i as u64));
            let shot = sim.simulate_shot(&state, &mut rng);
            let v = ds.view(i);
            assert_eq!(v.raw, &shot.raw[..], "shot {i} trace");
            assert_eq!(v.events, &shot.events[..], "shot {i} events");
            assert_eq!(v.initial_state(), shot.initial, "shot {i} initial");
            assert_eq!(v.final_basis_state(), shot.final_state);
        }
    }

    #[test]
    fn labels_follow_flat_index_grouping() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 3, 2, 1);
        assert_eq!(ds.len(), 243 * 2);
        // First two shots belong to |00000>, last two to |22222>.
        assert_eq!(ds.joint_label(0), 0);
        assert_eq!(ds.joint_label(1), 0);
        assert_eq!(ds.joint_label(ds.len() - 1), 242);
        assert_eq!(ds.label(ds.len() - 1, 0), 2);
    }

    #[test]
    fn paper_split_proportions() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 2, 20, 3);
        let split = ds.paper_split(11);
        assert_eq!(split.len(), ds.len());
        // 30% of 20 = 6 per state; 15% of 6 = 1 val.
        assert_eq!(split.train.len(), 32 * 5);
        assert_eq!(split.val.len(), 32);
        assert_eq!(split.test.len(), 32 * 14);
        // Disjoint.
        let mut all: Vec<usize> = split
            .train
            .iter()
            .chain(&split.val)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ds.len());
    }

    #[test]
    fn split_is_stratified() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 2, 10, 3);
        let split = ds.split(0.5, 0.0, 1);
        // Each state contributes exactly 5 train shots.
        let mut per_state = std::collections::HashMap::new();
        for &i in &split.train {
            *per_state.entry(ds.joint_label(i)).or_insert(0usize) += 1;
        }
        assert!(per_state.values().all(|&n| n == 5));
    }

    #[test]
    fn truncated_dataset_shortens_all_traces() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 2, 1, 5).truncated(20);
        assert!(ds.iter().all(|v| v.len() == 20));
        assert_eq!(ds.config().n_samples, 20);
    }

    #[test]
    fn truncation_is_zero_copy_and_matches_legacy_shot_truncation() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 3, 2, 9);
        let t = ds.truncated(20);
        // The truncated dataset shares the arena: O(1), no trace copies.
        assert!(Arc::ptr_eq(&ds.store, &t.store));
        let rate = ds.config().sample_rate_mhz;
        for i in 0..ds.len() {
            let legacy = ds.view(i).to_shot().truncated(20, rate);
            let v = t.view(i);
            assert_eq!(v.raw, &legacy.raw[..], "shot {i} trace");
            assert_eq!(v.events, &legacy.events[..], "shot {i} events");
            // raw(i) borrows the same memory the full dataset exposes.
            assert!(std::ptr::eq(t.raw(i).as_ptr(), ds.raw(i).as_ptr()));
        }
    }

    #[test]
    fn natural_dataset_labels_by_initial_state() {
        let mut c = small_config();
        c.qubits[3].prep_leak_prob = 0.2; // make leakage plentiful
        let ds = TraceDataset::generate_natural(&c, 20, 9);
        assert_eq!(ds.levels(), 3);
        assert_eq!(ds.label_source(), LabelSource::Initial);
        assert_eq!(ds.len(), 32 * 20);
        // Leaked labels exist despite only computational preparations...
        let leaked = (0..ds.len()).filter(|&i| ds.label(i, 3) == 2).count();
        assert!(leaked > 20, "found {leaked} leaked labels");
        // ...and labels agree with the simulator's ground truth.
        for i in 0..ds.len() {
            assert_eq!(ds.label(i, 3), ds.initial_level(i, 3).index());
            assert!(!ds.view(i).prepared_state().has_leakage());
        }
    }

    #[test]
    fn natural_split_is_stratified_by_true_state() {
        let mut c = small_config();
        c.qubits[0].prep_leak_prob = 0.3;
        let ds = TraceDataset::generate_natural(&c, 10, 2);
        let split = ds.split(0.5, 0.0, 1);
        assert_eq!(split.len(), ds.len());
        // Leaked-label shots appear in both train and test.
        let leaked_train = split.train.iter().filter(|&&i| ds.label(i, 0) == 2).count();
        let leaked_test = split.test.iter().filter(|&&i| ds.label(i, 0) == 2).count();
        assert!(leaked_train > 0 && leaked_test > 0);
    }

    #[test]
    fn generate_states_subset() {
        let c = small_config();
        let states = vec![
            BasisState::from_flat_index(0, 5, 3),
            BasisState::from_flat_index(242, 5, 3),
        ];
        let ds = TraceDataset::generate_states(&c, 3, &states, 4, 9);
        assert_eq!(ds.len(), 8);
        assert_eq!(ds.joint_label(0), 0);
        assert_eq!(ds.joint_label(7), 242);
    }

    #[test]
    fn generation_ignores_thread_count() {
        // Per-shot seeding makes the arena independent of the worker
        // count (the MLR_THREADS override only changes that count).
        let c = small_config();
        let states: Vec<BasisState> = (0..basis_state_count(5, 2))
            .map(|i| BasisState::from_flat_index(i, 5, 2))
            .collect();
        let single = TraceDataset::generate_states_with_threads(&c, 2, &states, 2, 21, 1);
        let many = TraceDataset::generate_states_with_threads(&c, 2, &states, 2, 21, 3);
        let odd = TraceDataset::generate_states_with_threads(&c, 2, &states, 2, 21, 7);
        assert_eq!(single.store(), many.store());
        assert_eq!(single.store(), odd.store());
        // And the default entry point agrees with all of them.
        assert_eq!(TraceDataset::generate(&c, 2, 2, 21).store(), single.store());
    }
}
