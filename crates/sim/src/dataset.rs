//! Labelled trace datasets and stratified train/validation/test splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::{basis_state_count, BasisState, ChipConfig, ReadoutSimulator, Shot};

/// SplitMix64 — mixes a seed and an index into an independent per-shot seed
/// so parallel generation is deterministic regardless of scheduling.
fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where a shot's classification label comes from.
///
/// The paper's three-level dataset is *not* explicitly calibrated: leaked
/// labels come from spectral clustering of naturally leaked traces
/// (Sec. V-A / VI). [`LabelSource::Initial`] models that pipeline — the
/// label is the state actually occupied at the start of the readout window
/// (computational preparation, natural leakage included) — while
/// [`LabelSource::Prepared`] labels by the nominal preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelSource {
    /// Label = nominally prepared state (explicit calibration).
    #[default]
    Prepared,
    /// Label = true state at the start of the window (cluster-harvested
    /// natural leakage, as in the paper's methodology).
    Initial,
}

/// A labelled collection of simulated readout shots, the stand-in for the
/// paper's captured five-qubit dataset (all `kⁿ` basis states, a fixed
/// number of shots each).
///
/// # Examples
///
/// ```
/// use mlr_sim::{ChipConfig, TraceDataset};
///
/// let mut config = ChipConfig::five_qubit_paper();
/// config.n_samples = 100; // keep the doctest fast
/// let ds = TraceDataset::generate(&config, 2, 2, 42);
/// assert_eq!(ds.len(), 32 * 2); // 2^5 states x 2 shots
/// ```
#[derive(Debug, Clone)]
pub struct TraceDataset {
    config: ChipConfig,
    levels: usize,
    shots: Vec<Shot>,
    label_source: LabelSource,
}

impl TraceDataset {
    /// Simulates `shots_per_state` shots for **every** `levels^n` basis
    /// state of the chip (in flat-index order), in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not 2 or 3 or the config is invalid.
    pub fn generate(config: &ChipConfig, levels: usize, shots_per_state: usize, seed: u64) -> Self {
        assert!((2..=3).contains(&levels), "levels must be 2 or 3");
        let states: Vec<BasisState> = (0..basis_state_count(config.n_qubits(), levels))
            .map(|i| BasisState::from_flat_index(i, config.n_qubits(), levels))
            .collect();
        Self::generate_states(config, levels, &states, shots_per_state, seed)
    }

    /// Simulates `shots_per_state` shots for each of the given prepared
    /// states, in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not 2 or 3 or the config is invalid.
    pub fn generate_states(
        config: &ChipConfig,
        levels: usize,
        states: &[BasisState],
        shots_per_state: usize,
        seed: u64,
    ) -> Self {
        assert!((2..=3).contains(&levels), "levels must be 2 or 3");
        let sim = ReadoutSimulator::new(config.clone());
        let jobs: Vec<(usize, usize)> = (0..states.len())
            .flat_map(|s| (0..shots_per_state).map(move |r| (s, r)))
            .collect();
        let shots: Vec<Shot> = jobs
            .par_iter()
            .map(|&(s, r)| {
                let shot_seed = mix_seed(seed, (s * shots_per_state + r) as u64);
                let mut rng = StdRng::seed_from_u64(shot_seed);
                sim.simulate_shot(&states[s], &mut rng)
            })
            .collect();
        Self {
            config: config.clone(),
            levels,
            shots,
            label_source: LabelSource::Prepared,
        }
    }

    /// Simulates the paper's calibration-free methodology: only the `2ⁿ`
    /// computational basis states are prepared (`shots_per_state` each), and
    /// shots are **labelled by their true initial three-level state** —
    /// leaked labels exist only where natural leakage occurred, giving the
    /// heavily imbalanced class counts the paper reports (487 leaked traces
    /// on qubit 1 vs 17,642 on qubit 4).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid.
    pub fn generate_natural(config: &ChipConfig, shots_per_state: usize, seed: u64) -> Self {
        let states: Vec<BasisState> = (0..basis_state_count(config.n_qubits(), 2))
            .map(|i| BasisState::from_flat_index(i, config.n_qubits(), 2))
            .collect();
        let mut ds = Self::generate_states(config, 3, &states, shots_per_state, seed);
        ds.label_source = LabelSource::Initial;
        ds
    }

    /// The chip configuration the shots were generated with.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Number of levels per qudit in the label alphabet (2 or 3).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// All shots, in generation order (grouped by prepared state).
    pub fn shots(&self) -> &[Shot] {
        &self.shots
    }

    /// Number of shots in the dataset.
    pub fn len(&self) -> usize {
        self.shots.len()
    }

    /// `true` if the dataset holds no shots.
    pub fn is_empty(&self) -> bool {
        self.shots.is_empty()
    }

    /// Where this dataset's labels come from.
    pub fn label_source(&self) -> LabelSource {
        self.label_source
    }

    /// The labelled basis state of shot `i` (per [`TraceDataset::label_source`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn labelled_state(&self, i: usize) -> &BasisState {
        match self.label_source {
            LabelSource::Prepared => &self.shots[i].prepared,
            LabelSource::Initial => &self.shots[i].initial,
        }
    }

    /// Per-qubit level label of shot `i` (`0`, `1` or `2`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `qubit` is out of range.
    pub fn label(&self, i: usize, qubit: usize) -> usize {
        self.labelled_state(i).level(qubit).index()
    }

    /// Joint flat-index label of shot `i` over the dataset's level alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn joint_label(&self, i: usize) -> usize {
        self.labelled_state(i).flat_index(self.levels)
    }

    /// Returns a dataset with every trace truncated to `n_samples` (for the
    /// readout-duration sweep). Labels are preserved.
    pub fn truncated(&self, n_samples: usize) -> Self {
        Self {
            config: self.config.truncated(n_samples),
            levels: self.levels,
            shots: self
                .shots
                .iter()
                .map(|s| s.truncated(n_samples, self.config.sample_rate_mhz))
                .collect(),
            label_source: self.label_source,
        }
    }

    /// Stratified split into train/validation/test index sets following the
    /// paper's methodology: per prepared state, `train_frac` of the shots go
    /// to training (of which `val_frac` are carved out for validation) and
    /// the rest to test. The paper uses `train_frac = 0.3`,
    /// `val_frac = 0.15`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are outside `[0, 1]`.
    pub fn split(&self, train_frac: f64, val_frac: f64, seed: u64) -> DatasetSplit {
        assert!((0.0..=1.0).contains(&train_frac), "train_frac out of range");
        assert!((0.0..=1.0).contains(&val_frac), "val_frac out of range");
        // Group indices by prepared state.
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..self.shots.len() {
            groups.entry(self.joint_label(i)).or_default().push(i);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut split = DatasetSplit::default();
        for (_, mut idxs) in groups {
            idxs.shuffle(&mut rng);
            let n_train_total = (idxs.len() as f64 * train_frac).round() as usize;
            let n_val = (n_train_total as f64 * val_frac).round() as usize;
            for (pos, idx) in idxs.into_iter().enumerate() {
                if pos < n_train_total.saturating_sub(n_val) {
                    split.train.push(idx);
                } else if pos < n_train_total {
                    split.val.push(idx);
                } else {
                    split.test.push(idx);
                }
            }
        }
        split
    }

    /// The paper's split: 30 % train / 70 % test per state, 15 % of train
    /// reserved for validation.
    pub fn paper_split(&self, seed: u64) -> DatasetSplit {
        self.split(0.3, 0.15, seed)
    }
}

/// Index sets produced by [`TraceDataset::split`]. Indices refer to
/// [`TraceDataset::shots`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetSplit {
    /// Training-set shot indices.
    pub train: Vec<usize>,
    /// Validation-set shot indices (carved out of the training fraction).
    pub val: Vec<usize>,
    /// Test-set shot indices.
    pub test: Vec<usize>,
}

impl DatasetSplit {
    /// Total number of indexed shots across the three sets.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// `true` if no shots are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ChipConfig {
        let mut c = ChipConfig::five_qubit_paper();
        c.n_samples = 50;
        c
    }

    #[test]
    fn generation_is_deterministic_and_complete() {
        let c = small_config();
        let a = TraceDataset::generate(&c, 2, 3, 7);
        let b = TraceDataset::generate(&c, 2, 3, 7);
        assert_eq!(a.len(), 32 * 3);
        assert_eq!(a.shots(), b.shots());
        let other = TraceDataset::generate(&c, 2, 3, 8);
        assert_ne!(a.shots(), other.shots());
    }

    #[test]
    fn labels_follow_flat_index_grouping() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 3, 2, 1);
        assert_eq!(ds.len(), 243 * 2);
        // First two shots belong to |00000>, last two to |22222>.
        assert_eq!(ds.joint_label(0), 0);
        assert_eq!(ds.joint_label(1), 0);
        assert_eq!(ds.joint_label(ds.len() - 1), 242);
        assert_eq!(ds.label(ds.len() - 1, 0), 2);
    }

    #[test]
    fn paper_split_proportions() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 2, 20, 3);
        let split = ds.paper_split(11);
        assert_eq!(split.len(), ds.len());
        // 30% of 20 = 6 per state; 15% of 6 = 1 val.
        assert_eq!(split.train.len(), 32 * 5);
        assert_eq!(split.val.len(), 32);
        assert_eq!(split.test.len(), 32 * 14);
        // Disjoint.
        let mut all: Vec<usize> = split
            .train
            .iter()
            .chain(&split.val)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ds.len());
    }

    #[test]
    fn split_is_stratified() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 2, 10, 3);
        let split = ds.split(0.5, 0.0, 1);
        // Each state contributes exactly 5 train shots.
        let mut per_state = std::collections::HashMap::new();
        for &i in &split.train {
            *per_state.entry(ds.joint_label(i)).or_insert(0usize) += 1;
        }
        assert!(per_state.values().all(|&n| n == 5));
    }

    #[test]
    fn truncated_dataset_shortens_all_traces() {
        let c = small_config();
        let ds = TraceDataset::generate(&c, 2, 1, 5).truncated(20);
        assert!(ds.shots().iter().all(|s| s.len() == 20));
        assert_eq!(ds.config().n_samples, 20);
    }

    #[test]
    fn natural_dataset_labels_by_initial_state() {
        let mut c = small_config();
        c.qubits[3].prep_leak_prob = 0.2; // make leakage plentiful
        let ds = TraceDataset::generate_natural(&c, 20, 9);
        assert_eq!(ds.levels(), 3);
        assert_eq!(ds.label_source(), LabelSource::Initial);
        assert_eq!(ds.len(), 32 * 20);
        // Leaked labels exist despite only computational preparations...
        let leaked = (0..ds.len()).filter(|&i| ds.label(i, 3) == 2).count();
        assert!(leaked > 20, "found {leaked} leaked labels");
        // ...and labels agree with the simulator's ground truth.
        for i in 0..ds.len() {
            assert_eq!(ds.label(i, 3), ds.shots()[i].initial.level(3).index());
            assert!(!ds.shots()[i].prepared.has_leakage());
        }
    }

    #[test]
    fn natural_split_is_stratified_by_true_state() {
        let mut c = small_config();
        c.qubits[0].prep_leak_prob = 0.3;
        let ds = TraceDataset::generate_natural(&c, 10, 2);
        let split = ds.split(0.5, 0.0, 1);
        assert_eq!(split.len(), ds.len());
        // Leaked-label shots appear in both train and test.
        let leaked_train = split.train.iter().filter(|&&i| ds.label(i, 0) == 2).count();
        let leaked_test = split.test.iter().filter(|&&i| ds.label(i, 0) == 2).count();
        assert!(leaked_train > 0 && leaked_test > 0);
    }

    #[test]
    fn generate_states_subset() {
        let c = small_config();
        let states = vec![
            BasisState::from_flat_index(0, 5, 3),
            BasisState::from_flat_index(242, 5, 3),
        ];
        let ds = TraceDataset::generate_states(&c, 3, &states, 4, 9);
        assert_eq!(ds.len(), 8);
        assert_eq!(ds.joint_label(0), 0);
        assert_eq!(ds.joint_label(7), 242);
    }
}
