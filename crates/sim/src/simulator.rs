//! The end-to-end shot simulator: level dynamics → resonator response →
//! crosstalk → multiplexed feedline → digitiser.

use mlr_num::Complex;
use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::trajectory::{baseband_response_into, sample_level_timeline};
use crate::{BasisState, ChipConfig, Level, Shot, ShotRecord, TransitionEvent};

/// Revision of the simulated physics and RNG stream. **Bump this whenever
/// [`ReadoutSimulator::simulate_shot`]'s output changes for a fixed seed**
/// (new physics, different draw order, RNG swap): it is folded into
/// [`crate::DatasetSpec`] fingerprints, so stale binary dataset caches
/// miss instead of silently serving pre-change traces to repro binaries.
pub const SIMULATOR_REVISION: u32 = 1;

/// Reusable per-worker scratch memory for [`ReadoutSimulator::simulate_shot_into`]:
/// the per-qubit baseband responses of one shot, flattened qubit-major.
///
/// Dataset generation holds one scratch per worker thread, so filling an
/// arena performs **zero per-shot heap allocation** for trace memory.
#[derive(Debug, Default, Clone)]
pub struct SimScratch {
    basebands: Vec<Complex>,
}

/// Simulates digitised readout shots for a configured chip.
///
/// The simulator is deterministic given the caller-provided RNG, so datasets
/// are reproducible and dataset generation can be parallelised by seeding a
/// per-shot RNG.
///
/// # Examples
///
/// ```
/// use mlr_sim::{BasisState, ChipConfig, Level, ReadoutSimulator};
/// use rand::SeedableRng;
///
/// let sim = ReadoutSimulator::new(ChipConfig::five_qubit_paper());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let shot = sim.simulate_shot(&BasisState::uniform(5, Level::Ground), &mut rng);
/// assert_eq!(shot.prepared.n_qubits(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ReadoutSimulator {
    config: ChipConfig,
    /// Precomputed per-qubit tone phasors `e^{+i 2π f_q t_n}` — sin/cos is
    /// the dominant cost of naive shot generation, so it is paid once per
    /// simulator instead of once per shot.
    tone_tables: Vec<Vec<Complex>>,
}

impl ReadoutSimulator {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails
    /// [`ChipConfig::validate_for_acquisition`] — generation is where
    /// sub-resolution tone spacing would silently produce degenerate
    /// channels; construct and validate the config separately to handle
    /// errors gracefully.
    pub fn new(config: ChipConfig) -> Self {
        config
            .validate_for_acquisition()
            .expect("invalid chip configuration");
        let dt_us = config.dt_us();
        let tone_tables = config
            .qubits
            .iter()
            .map(|q| {
                (0..config.n_samples)
                    .map(|n| Complex::cis(std::f64::consts::TAU * q.if_freq_mhz * n as f64 * dt_us))
                    .collect()
            })
            .collect();
        Self {
            config,
            tone_tables,
        }
    }

    /// Borrows the chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Simulates one readout shot with the register nominally prepared in
    /// `prepared`.
    ///
    /// Preparation leakage is applied first (a computational state may
    /// actually start leaked with the per-qubit `prep_leak_prob`), then each
    /// qubit follows a stochastic level timeline whose resonator response is
    /// mixed through the crosstalk matrix, modulated to its tone frequency,
    /// summed on the feedline, and digitised with additive receiver noise.
    ///
    /// # Panics
    ///
    /// Panics if `prepared` has a different number of qubits than the chip.
    pub fn simulate_shot(&self, prepared: &BasisState, rng: &mut impl Rng) -> Shot {
        let mut raw = vec![Complex::ZERO; self.config.n_samples];
        let mut scratch = SimScratch::default();
        let record = self.simulate_shot_into(prepared, rng, &mut scratch, &mut raw);
        Shot {
            raw,
            prepared: record.prepared,
            initial: record.initial,
            final_state: record.final_state,
            events: record.events,
        }
    }

    /// Simulates one shot **into** a caller-provided trace buffer — the
    /// arena-filling path of [`crate::TraceDataset::generate`]. The raw
    /// trace is written to `out` (one pre-sliced arena chunk) and the
    /// ground-truth metadata is returned as a [`ShotRecord`]; `scratch` is
    /// reused across calls so no per-shot trace memory is allocated.
    ///
    /// Bit-identical to [`ReadoutSimulator::simulate_shot`]: same RNG draw
    /// order, same floating-point operation order.
    ///
    /// # Panics
    ///
    /// Panics if `prepared` has a different number of qubits than the chip
    /// or `out` is not exactly `n_samples` long.
    pub fn simulate_shot_into(
        &self,
        prepared: &BasisState,
        rng: &mut impl Rng,
        scratch: &mut SimScratch,
        out: &mut [Complex],
    ) -> ShotRecord {
        let n_qubits = self.config.n_qubits();
        assert_eq!(
            prepared.n_qubits(),
            n_qubits,
            "prepared state does not match chip size"
        );
        let n_samples = self.config.n_samples;
        assert_eq!(out.len(), n_samples, "output chunk != readout window");
        let dt_us = self.config.dt_us();
        let duration = self.config.duration_us();

        // 1. Preparation: natural leakage may replace a computational state.
        let mut initial = prepared.clone();
        for (q, params) in self.config.qubits.iter().enumerate() {
            if !prepared.level(q).is_leaked() && rng.gen::<f64>() < params.prep_leak_prob {
                initial.set_level(q, Level::Leaked);
            }
        }

        // 2. Level dynamics and per-qubit baseband responses, written into
        //    the qubit-major scratch buffer.
        scratch.basebands.clear();
        scratch
            .basebands
            .resize(n_qubits * n_samples, Complex::ZERO);
        let mut events = Vec::new();
        let mut final_state = initial.clone();
        for ((q, params), bb) in self
            .config
            .qubits
            .iter()
            .enumerate()
            .zip(scratch.basebands.chunks_exact_mut(n_samples))
        {
            let segments = sample_level_timeline(params, initial.level(q), duration, rng);
            for w in segments.windows(2) {
                events.push(TransitionEvent {
                    qubit: q,
                    time_us: w[1].start_us,
                    from: w[0].level,
                    to: w[1].level,
                });
            }
            final_state.set_level(q, segments.last().expect("nonempty timeline").level);
            baseband_response_into(params, &segments, dt_us, bb);
        }

        // 3 + 4. Crosstalk mixing fused with frequency multiplexing: per
        // sample, each channel picks up its neighbours' basebands (same
        // accumulation order as the historic two-pass loop, so results are
        // bit-identical) and lands on the feedline at its tone frequency;
        // receiver noise and the ADC transfer function finish the sample.
        let basebands = &scratch.basebands;
        let noise = Normal::new(0.0, self.config.rx_noise).expect("validated sigma");
        for (n, slot) in out.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for q in 0..n_qubits {
                let mut s = basebands[q * n_samples + n];
                for (p, &beta) in self.config.crosstalk[q].iter().enumerate() {
                    if p != q && beta != 0.0 {
                        s += basebands[p * n_samples + n].scale(beta);
                    }
                }
                acc += s * self.tone_tables[q][n];
            }
            acc += Complex::new(noise.sample(rng), noise.sample(rng));
            *slot = self.quantize(acc);
        }

        events.sort_by(|a, b| a.time_us.partial_cmp(&b.time_us).expect("finite times"));
        ShotRecord {
            prepared: prepared.clone(),
            initial,
            final_state,
            events,
        }
    }

    /// Applies the ADC transfer function (clipping + uniform quantisation) to
    /// one complex sample.
    fn quantize(&self, s: Complex) -> Complex {
        match self.config.adc_bits {
            None => s,
            Some(bits) => {
                let fs = self.config.adc_full_scale;
                let lsb = 2.0 * fs / (1u64 << bits) as f64;
                let q = |x: f64| (x.clamp(-fs, fs) / lsb).round() * lsb;
                Complex::new(q(s.re), q(s.im))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim() -> ReadoutSimulator {
        ReadoutSimulator::new(ChipConfig::five_qubit_paper())
    }

    #[test]
    fn shot_has_expected_shape() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(1);
        let shot = s.simulate_shot(&BasisState::uniform(5, Level::Ground), &mut rng);
        assert_eq!(shot.len(), 500);
        assert_eq!(shot.prepared.n_qubits(), 5);
        assert_eq!(shot.final_state.n_qubits(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = sim();
        let prepared = BasisState::from_flat_index(121, 5, 3);
        let a = s.simulate_shot(&prepared, &mut StdRng::seed_from_u64(99));
        let b = s.simulate_shot(&prepared, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
        let c = s.simulate_shot(&prepared, &mut StdRng::seed_from_u64(100));
        assert_ne!(a.raw, c.raw);
    }

    #[test]
    fn events_match_state_change() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..200 {
            let prepared = BasisState::from_flat_index(i % 243, 5, 3);
            let shot = s.simulate_shot(&prepared, &mut rng);
            // No events => final state equals initial state.
            if shot.events.is_empty() {
                assert_eq!(shot.initial, shot.final_state);
            }
            // Events are time ordered.
            for w in shot.events.windows(2) {
                assert!(w[0].time_us <= w[1].time_us);
            }
        }
    }

    #[test]
    fn excited_population_decays_in_aggregate() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(17);
        let prepared = BasisState::uniform(5, Level::Excited);
        let shots = 2_000;
        let mut decayed = 0usize;
        let mut total = 0usize;
        for _ in 0..shots {
            let shot = s.simulate_shot(&prepared, &mut rng);
            for q in 0..5 {
                total += 1;
                if shot.final_state.level(q) == Level::Ground {
                    decayed += 1;
                }
            }
        }
        let frac = decayed as f64 / total as f64;
        // Chip-average T1 ~ 24 us over a 1 us window -> a few percent decay.
        assert!(frac > 0.01 && frac < 0.15, "decay fraction {frac}");
    }

    #[test]
    fn natural_leakage_appears_without_preparing_it() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(23);
        let prepared = BasisState::uniform(5, Level::Ground);
        let mut leaked_initial = 0usize;
        let shots = 4_000;
        for _ in 0..shots {
            let shot = s.simulate_shot(&prepared, &mut rng);
            if shot.initial.has_leakage() {
                leaked_initial += 1;
            }
        }
        // Sum of the preset's prep_leak_probs is ~7.9% per 5-qubit shot.
        let frac = leaked_initial as f64 / shots as f64;
        assert!(frac > 0.04 && frac < 0.13, "leak fraction {frac}");
    }

    #[test]
    fn quantization_respects_full_scale() {
        let mut config = ChipConfig::five_qubit_paper();
        config.adc_bits = Some(6);
        config.adc_full_scale = 4.0;
        let s = ReadoutSimulator::new(config);
        let mut rng = StdRng::seed_from_u64(2);
        let shot = s.simulate_shot(&BasisState::uniform(5, Level::Leaked), &mut rng);
        for z in &shot.raw {
            assert!(z.re.abs() <= 4.0 + 1e-9 && z.im.abs() <= 4.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "prepared state does not match chip size")]
    fn rejects_wrong_register_width() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = s.simulate_shot(&BasisState::uniform(3, Level::Ground), &mut rng);
    }
}
