//! The end-to-end shot simulator: level dynamics → resonator response →
//! crosstalk → multiplexed feedline → digitiser.

use mlr_num::Complex;
use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::trajectory::{baseband_response, sample_level_timeline};
use crate::{BasisState, ChipConfig, Level, Shot, TransitionEvent};

/// Simulates digitised readout shots for a configured chip.
///
/// The simulator is deterministic given the caller-provided RNG, so datasets
/// are reproducible and dataset generation can be parallelised by seeding a
/// per-shot RNG.
///
/// # Examples
///
/// ```
/// use mlr_sim::{BasisState, ChipConfig, Level, ReadoutSimulator};
/// use rand::SeedableRng;
///
/// let sim = ReadoutSimulator::new(ChipConfig::five_qubit_paper());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let shot = sim.simulate_shot(&BasisState::uniform(5, Level::Ground), &mut rng);
/// assert_eq!(shot.prepared.n_qubits(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ReadoutSimulator {
    config: ChipConfig,
    /// Precomputed per-qubit tone phasors `e^{+i 2π f_q t_n}` — sin/cos is
    /// the dominant cost of naive shot generation, so it is paid once per
    /// simulator instead of once per shot.
    tone_tables: Vec<Vec<Complex>>,
}

impl ReadoutSimulator {
    /// Creates a simulator for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipConfig::validate`]; construct
    /// and validate the config separately to handle errors gracefully.
    pub fn new(config: ChipConfig) -> Self {
        config.validate().expect("invalid chip configuration");
        let dt_us = config.dt_us();
        let tone_tables = config
            .qubits
            .iter()
            .map(|q| {
                (0..config.n_samples)
                    .map(|n| Complex::cis(std::f64::consts::TAU * q.if_freq_mhz * n as f64 * dt_us))
                    .collect()
            })
            .collect();
        Self {
            config,
            tone_tables,
        }
    }

    /// Borrows the chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Simulates one readout shot with the register nominally prepared in
    /// `prepared`.
    ///
    /// Preparation leakage is applied first (a computational state may
    /// actually start leaked with the per-qubit `prep_leak_prob`), then each
    /// qubit follows a stochastic level timeline whose resonator response is
    /// mixed through the crosstalk matrix, modulated to its tone frequency,
    /// summed on the feedline, and digitised with additive receiver noise.
    ///
    /// # Panics
    ///
    /// Panics if `prepared` has a different number of qubits than the chip.
    pub fn simulate_shot(&self, prepared: &BasisState, rng: &mut impl Rng) -> Shot {
        let n_qubits = self.config.n_qubits();
        assert_eq!(
            prepared.n_qubits(),
            n_qubits,
            "prepared state does not match chip size"
        );
        let n_samples = self.config.n_samples;
        let dt_us = self.config.dt_us();
        let duration = self.config.duration_us();

        // 1. Preparation: natural leakage may replace a computational state.
        let mut initial = prepared.clone();
        for (q, params) in self.config.qubits.iter().enumerate() {
            if !prepared.level(q).is_leaked() && rng.gen::<f64>() < params.prep_leak_prob {
                initial.set_level(q, Level::Leaked);
            }
        }

        // 2. Level dynamics and per-qubit baseband responses.
        let mut basebands: Vec<Vec<Complex>> = Vec::with_capacity(n_qubits);
        let mut events = Vec::new();
        let mut final_state = initial.clone();
        for (q, params) in self.config.qubits.iter().enumerate() {
            let segments = sample_level_timeline(params, initial.level(q), duration, rng);
            for w in segments.windows(2) {
                events.push(TransitionEvent {
                    qubit: q,
                    time_us: w[1].start_us,
                    from: w[0].level,
                    to: w[1].level,
                });
            }
            final_state.set_level(q, segments.last().expect("nonempty timeline").level);
            basebands.push(baseband_response(params, &segments, n_samples, dt_us));
        }

        // 3. Crosstalk: each channel picks up a fraction of its neighbours.
        let mixed: Vec<Vec<Complex>> = (0..n_qubits)
            .map(|q| {
                let row = &self.config.crosstalk[q];
                (0..n_samples)
                    .map(|n| {
                        let mut s = basebands[q][n];
                        for (p, &beta) in row.iter().enumerate() {
                            if p != q && beta != 0.0 {
                                s += basebands[p][n].scale(beta);
                            }
                        }
                        s
                    })
                    .collect()
            })
            .collect();

        // 4. Frequency multiplexing onto the feedline + receiver noise.
        let noise = Normal::new(0.0, self.config.rx_noise).expect("validated sigma");
        let mut raw = Vec::with_capacity(n_samples);
        for n in 0..n_samples {
            let mut s = Complex::ZERO;
            for (q, mixed_q) in mixed.iter().enumerate() {
                s += mixed_q[n] * self.tone_tables[q][n];
            }
            s += Complex::new(noise.sample(rng), noise.sample(rng));
            raw.push(self.quantize(s));
        }

        events.sort_by(|a, b| a.time_us.partial_cmp(&b.time_us).expect("finite times"));
        Shot {
            raw,
            prepared: prepared.clone(),
            initial,
            final_state,
            events,
        }
    }

    /// Applies the ADC transfer function (clipping + uniform quantisation) to
    /// one complex sample.
    fn quantize(&self, s: Complex) -> Complex {
        match self.config.adc_bits {
            None => s,
            Some(bits) => {
                let fs = self.config.adc_full_scale;
                let lsb = 2.0 * fs / (1u64 << bits) as f64;
                let q = |x: f64| (x.clamp(-fs, fs) / lsb).round() * lsb;
                Complex::new(q(s.re), q(s.im))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim() -> ReadoutSimulator {
        ReadoutSimulator::new(ChipConfig::five_qubit_paper())
    }

    #[test]
    fn shot_has_expected_shape() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(1);
        let shot = s.simulate_shot(&BasisState::uniform(5, Level::Ground), &mut rng);
        assert_eq!(shot.len(), 500);
        assert_eq!(shot.prepared.n_qubits(), 5);
        assert_eq!(shot.final_state.n_qubits(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = sim();
        let prepared = BasisState::from_flat_index(121, 5, 3);
        let a = s.simulate_shot(&prepared, &mut StdRng::seed_from_u64(99));
        let b = s.simulate_shot(&prepared, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
        let c = s.simulate_shot(&prepared, &mut StdRng::seed_from_u64(100));
        assert_ne!(a.raw, c.raw);
    }

    #[test]
    fn events_match_state_change() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..200 {
            let prepared = BasisState::from_flat_index(i % 243, 5, 3);
            let shot = s.simulate_shot(&prepared, &mut rng);
            // No events => final state equals initial state.
            if shot.events.is_empty() {
                assert_eq!(shot.initial, shot.final_state);
            }
            // Events are time ordered.
            for w in shot.events.windows(2) {
                assert!(w[0].time_us <= w[1].time_us);
            }
        }
    }

    #[test]
    fn excited_population_decays_in_aggregate() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(17);
        let prepared = BasisState::uniform(5, Level::Excited);
        let shots = 2_000;
        let mut decayed = 0usize;
        let mut total = 0usize;
        for _ in 0..shots {
            let shot = s.simulate_shot(&prepared, &mut rng);
            for q in 0..5 {
                total += 1;
                if shot.final_state.level(q) == Level::Ground {
                    decayed += 1;
                }
            }
        }
        let frac = decayed as f64 / total as f64;
        // Chip-average T1 ~ 24 us over a 1 us window -> a few percent decay.
        assert!(frac > 0.01 && frac < 0.15, "decay fraction {frac}");
    }

    #[test]
    fn natural_leakage_appears_without_preparing_it() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(23);
        let prepared = BasisState::uniform(5, Level::Ground);
        let mut leaked_initial = 0usize;
        let shots = 4_000;
        for _ in 0..shots {
            let shot = s.simulate_shot(&prepared, &mut rng);
            if shot.initial.has_leakage() {
                leaked_initial += 1;
            }
        }
        // Sum of the preset's prep_leak_probs is ~7.9% per 5-qubit shot.
        let frac = leaked_initial as f64 / shots as f64;
        assert!(frac > 0.04 && frac < 0.13, "leak fraction {frac}");
    }

    #[test]
    fn quantization_respects_full_scale() {
        let mut config = ChipConfig::five_qubit_paper();
        config.adc_bits = Some(6);
        config.adc_full_scale = 4.0;
        let s = ReadoutSimulator::new(config);
        let mut rng = StdRng::seed_from_u64(2);
        let shot = s.simulate_shot(&BasisState::uniform(5, Level::Leaked), &mut rng);
        for z in &shot.raw {
            assert!(z.re.abs() <= 4.0 + 1e-9 && z.im.abs() <= 4.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "prepared state does not match chip size")]
    fn rejects_wrong_register_width() {
        let s = sim();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = s.simulate_shot(&BasisState::uniform(3, Level::Ground), &mut rng);
    }
}
