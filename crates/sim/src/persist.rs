//! Versioned little-endian binary persistence for [`TraceDataset`] and the
//! dataset cache that keeps repro binaries from re-simulating.
//!
//! Datasets scale as `levels^n_qubits × shots_per_state` and every repro
//! binary used to re-simulate its own from scratch. The arena layout of
//! [`crate::TraceStore`] makes the on-disk form trivial — the file is the
//! arena:
//!
//! ```text
//! offset  field
//! 0       magic          b"MLRD"
//! 4       version        u32  (currently 1)
//! 8       header_hash    u64  FNV-1a of the chip-config JSON + every
//!                             u64 header field below, so corruption of
//!                             levels/label_source/counts is caught too
//! 16      levels         u64
//! 24      label_source   u64  (0 = Prepared, 1 = Initial)
//! 32      n_qubits       u64
//! 40      n_shots        u64
//! 48      stride         u64  physical samples per trace in the arena
//! 56      window         u64  samples exposed by the dataset (<= stride)
//! 64      n_events       u64
//! 72      config_len     u64  followed by that many JSON bytes
//! …       raw arena      n_shots × stride × (f64 I, f64 Q)
//! …       prepared       n_shots × n_qubits × u8 level
//! …       initial        n_shots × n_qubits × u8 level
//! …       final          n_shots × n_qubits × u8 level
//! …       event_offsets  (n_shots + 1) × u64
//! …       events         n_events × (u32 qubit, u8 from, u8 to, f64 time_us)
//! ```
//!
//! All integers and floats are little-endian; traces round-trip bit-exactly
//! (`f64::to_le_bytes`). Loading validates the magic, version, config hash,
//! level bytes and event-offset monotonicity before touching the data, and
//! reports failures as typed [`DatasetIoError`]s instead of panicking.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mlr_num::Complex;

use crate::{ChipConfig, LabelSource, Level, TraceDataset, TraceStore, TransitionEvent};

/// File magic of the binary dataset format.
pub const DATASET_MAGIC: [u8; 4] = *b"MLRD";

/// Format version this build reads and writes.
pub const DATASET_FORMAT_VERSION: u32 = 1;

/// Why a binary dataset file could not be written or read back.
#[derive(Debug)]
pub enum DatasetIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`DATASET_MAGIC`].
    BadMagic,
    /// The file's format version is not [`DATASET_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// Structurally invalid content (message names the violated invariant).
    Corrupt(String),
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "dataset io failed: {e}"),
            DatasetIoError::BadMagic => write!(f, "not a binary trace dataset (bad magic)"),
            DatasetIoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "dataset format version {v} (this build reads {DATASET_FORMAT_VERSION})"
                )
            }
            DatasetIoError::Corrupt(msg) => write!(f, "corrupt dataset file: {msg}"),
        }
    }
}

impl std::error::Error for DatasetIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<std::io::Error> for DatasetIoError {
    fn from(e: std::io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Stable 64-bit content hash of a chip configuration (FNV-1a over its
/// canonical JSON) — part of [`DatasetSpec::fingerprint`] and the binary
/// header's integrity hash.
pub fn config_hash(config: &ChipConfig) -> u64 {
    let json = serde_json::to_string(config).expect("chip config serialises");
    fnv1a(json.as_bytes(), FNV_OFFSET)
}

/// Integrity hash stored in the binary header: FNV-1a over the config
/// JSON chained with every variable u64 header field, so a bit flip in
/// `levels`/`label_source`/any count is caught instead of silently
/// loading a differently-labelled dataset.
fn header_hash(config_json: &[u8], fields: &[u64; 7]) -> u64 {
    let mut h = fnv1a(config_json, FNV_OFFSET);
    for f in fields {
        h = fnv1a(&f.to_le_bytes(), h);
    }
    h
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

struct Wr<W: Write> {
    inner: W,
}

impl<W: Write> Wr<W> {
    fn u32(&mut self, v: u32) -> std::io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> std::io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }
    fn f64(&mut self, v: f64) -> std::io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

struct Rd<R: Read> {
    inner: R,
}

impl<R: Read> Rd<R> {
    fn bytes<const N: usize>(&mut self) -> Result<[u8; N], DatasetIoError> {
        let mut buf = [0u8; N];
        self.inner.read_exact(&mut buf)?;
        Ok(buf)
    }
    fn u32(&mut self) -> Result<u32, DatasetIoError> {
        Ok(u32::from_le_bytes(self.bytes()?))
    }
    fn u64(&mut self) -> Result<u64, DatasetIoError> {
        Ok(u64::from_le_bytes(self.bytes()?))
    }
    fn f64(&mut self) -> Result<f64, DatasetIoError> {
        Ok(f64::from_le_bytes(self.bytes()?))
    }
    fn usize(&mut self, what: &str) -> Result<usize, DatasetIoError> {
        usize::try_from(self.u64()?)
            .map_err(|_| DatasetIoError::Corrupt(format!("{what} exceeds the address space")))
    }
    fn u8_levels(&mut self, n: usize, what: &str) -> Result<Vec<Level>, DatasetIoError> {
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        let mut buf = [0u8; 4096];
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(buf.len());
            self.inner.read_exact(&mut buf[..take])?;
            for &b in &buf[..take] {
                out.push(Level::from_index(b as usize).ok_or_else(|| {
                    DatasetIoError::Corrupt(format!("{what} level byte {b} > 2"))
                })?);
            }
            remaining -= take;
        }
        Ok(out)
    }
}

/// Upper bound on any single `Vec::with_capacity` driven by an untrusted
/// header count. Counts above this still load — the vector grows as real
/// payload bytes arrive — but a corrupt header claiming astronomical sizes
/// hits a read error (truncation) long before memory is committed, keeping
/// the typed-error contract instead of aborting on OOM.
const PREALLOC_CAP: usize = 1 << 22;

/// Reads `n` complex samples in bounded chunks (no `n × 16`-byte staging
/// allocation for multi-hundred-MB arenas).
fn read_complex_array<R: Read>(rd: &mut Rd<R>, n: usize) -> Result<Vec<Complex>, DatasetIoError> {
    const CHUNK_SAMPLES: usize = 4096;
    let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
    let mut buf = [0u8; CHUNK_SAMPLES * 16];
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(CHUNK_SAMPLES);
        let bytes = &mut buf[..take * 16];
        rd.inner.read_exact(bytes)?;
        for s in bytes.chunks_exact(16) {
            out.push(Complex::new(
                f64::from_le_bytes(s[..8].try_into().expect("8-byte slice")),
                f64::from_le_bytes(s[8..].try_into().expect("8-byte slice")),
            ));
        }
        remaining -= take;
    }
    Ok(out)
}

impl TraceDataset {
    /// Writes the dataset in the versioned binary arena format.
    ///
    /// The full physical arena is saved (a window-truncated dataset keeps
    /// its underlying full-stride store); the header's `window` field
    /// restores the truncation on load.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetIoError::Io`] on write failure.
    pub fn save_bin<W: Write>(&self, writer: W) -> Result<(), DatasetIoError> {
        let store = self.store();
        let mut w = Wr { inner: writer };
        let config_json = serde_json::to_string(self.config()).expect("chip config serialises");
        let fields: [u64; 7] = [
            self.levels() as u64,
            match self.label_source() {
                LabelSource::Prepared => 0,
                LabelSource::Initial => 1,
            },
            store.n_qubits() as u64,
            store.len() as u64,
            store.n_samples() as u64,
            self.config().n_samples as u64,
            store.events_flat().len() as u64,
        ];
        w.inner.write_all(&DATASET_MAGIC)?;
        w.u32(DATASET_FORMAT_VERSION)?;
        w.u64(header_hash(config_json.as_bytes(), &fields))?;
        for f in fields {
            w.u64(f)?;
        }
        w.u64(config_json.len() as u64)?;
        w.inner.write_all(config_json.as_bytes())?;
        for z in store.raw_arena() {
            w.f64(z.re)?;
            w.f64(z.im)?;
        }
        for i in 0..store.len() {
            w.inner
                .write_all(&levels_to_bytes(store.prepared_levels(i)))?;
        }
        for i in 0..store.len() {
            w.inner
                .write_all(&levels_to_bytes(store.initial_levels(i)))?;
        }
        for i in 0..store.len() {
            w.inner.write_all(&levels_to_bytes(store.final_levels(i)))?;
        }
        for &off in store.event_offsets() {
            w.u64(off as u64)?;
        }
        for e in store.events_flat() {
            w.u32(e.qubit as u32)?;
            w.inner
                .write_all(&[e.from.index() as u8, e.to.index() as u8])?;
            w.f64(e.time_us)?;
        }
        Ok(())
    }

    /// Saves the dataset to a binary file (buffered).
    ///
    /// # Errors
    ///
    /// As for [`TraceDataset::save_bin`].
    pub fn save_bin_file<P: AsRef<Path>>(&self, path: P) -> Result<(), DatasetIoError> {
        let mut w = BufWriter::new(File::create(path)?);
        self.save_bin(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Reads a dataset from the versioned binary arena format, validating
    /// the header and every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DatasetIoError`]: `BadMagic` / `UnsupportedVersion`
    /// for foreign or future files, `Corrupt` for hash or shape violations,
    /// `Io` for underlying read failures (including truncation).
    pub fn load_bin<R: Read>(reader: R) -> Result<Self, DatasetIoError> {
        let mut r = Rd { inner: reader };
        let magic: [u8; 4] = r.bytes()?;
        if magic != DATASET_MAGIC {
            return Err(DatasetIoError::BadMagic);
        }
        let version = r.u32()?;
        if version != DATASET_FORMAT_VERSION {
            return Err(DatasetIoError::UnsupportedVersion(version));
        }
        let stored_hash = r.u64()?;
        let mut fields = [0u64; 7];
        for f in &mut fields {
            *f = r.u64()?;
        }
        let levels = usize::try_from(fields[0])
            .map_err(|_| DatasetIoError::Corrupt("levels exceeds the address space".into()))?;
        let label_source = match fields[1] {
            0 => LabelSource::Prepared,
            1 => LabelSource::Initial,
            other => {
                return Err(DatasetIoError::Corrupt(format!(
                    "label source tag {other} (expected 0 or 1)"
                )))
            }
        };
        if !(2..=3).contains(&levels) {
            return Err(DatasetIoError::Corrupt(format!(
                "level alphabet {levels} (expected 2 or 3)"
            )));
        }
        let header_usize = |i: usize, what: &str| -> Result<usize, DatasetIoError> {
            usize::try_from(fields[i])
                .map_err(|_| DatasetIoError::Corrupt(format!("{what} exceeds the address space")))
        };
        let n_qubits = header_usize(2, "n_qubits")?;
        let n_shots = header_usize(3, "n_shots")?;
        let stride = header_usize(4, "stride")?;
        let window = header_usize(5, "window")?;
        let n_events = header_usize(6, "n_events")?;
        let config_len = r.usize("config length")?;
        if config_len > 1 << 24 {
            return Err(DatasetIoError::Corrupt(format!(
                "config blob of {config_len} bytes"
            )));
        }
        let mut config_json = vec![0u8; config_len];
        r.inner.read_exact(&mut config_json)?;
        let config_json = String::from_utf8(config_json)
            .map_err(|_| DatasetIoError::Corrupt("config JSON is not UTF-8".into()))?;
        let config: ChipConfig = serde_json::from_str(&config_json)
            .map_err(|e| DatasetIoError::Corrupt(format!("config JSON: {e}")))?;
        if header_hash(config_json.as_bytes(), &fields) != stored_hash {
            return Err(DatasetIoError::Corrupt(
                "header hash does not match (corrupt config or header fields)".into(),
            ));
        }
        config
            .validate()
            .map_err(|e| DatasetIoError::Corrupt(format!("chip config: {e}")))?;
        if config.n_qubits() != n_qubits {
            return Err(DatasetIoError::Corrupt(format!(
                "config has {} qubits, header says {n_qubits}",
                config.n_qubits()
            )));
        }
        if config.n_samples != window || window > stride || stride == 0 {
            return Err(DatasetIoError::Corrupt(format!(
                "window {window} / stride {stride} / config n_samples {}",
                config.n_samples
            )));
        }
        let n_arena = n_shots
            .checked_mul(stride)
            .ok_or_else(|| DatasetIoError::Corrupt("arena size overflows".into()))?;
        let n_labels = n_shots
            .checked_mul(n_qubits)
            .ok_or_else(|| DatasetIoError::Corrupt("label array size overflows".into()))?;

        let raw = read_complex_array(&mut r, n_arena)?;
        let prepared = r.u8_levels(n_labels, "prepared")?;
        let initial = r.u8_levels(n_labels, "initial")?;
        let finals = r.u8_levels(n_labels, "final")?;
        // The labelled side array must stay inside the declared alphabet,
        // or labelling later panics instead of failing typed here. (Only
        // the labelled array: a two-level dataset legitimately records
        // leaked *initial*/final states from natural leakage.)
        let labelled = match label_source {
            LabelSource::Prepared => &prepared,
            LabelSource::Initial => &initial,
        };
        if let Some(bad) = labelled.iter().find(|l| l.index() >= levels) {
            return Err(DatasetIoError::Corrupt(format!(
                "label level {} outside the {levels}-level alphabet",
                bad.index()
            )));
        }
        let mut event_offsets = Vec::with_capacity((n_shots + 1).min(PREALLOC_CAP));
        for _ in 0..=n_shots {
            event_offsets.push(r.usize("event offset")?);
        }
        if event_offsets.first() != Some(&0)
            || event_offsets.last() != Some(&n_events)
            || event_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(DatasetIoError::Corrupt(
                "event offsets are not a monotone prefix-sum ending at n_events".into(),
            ));
        }
        let mut events = Vec::with_capacity(n_events.min(PREALLOC_CAP));
        for _ in 0..n_events {
            let qubit = r.u32()? as usize;
            let [from, to]: [u8; 2] = r.bytes()?;
            let time_us = r.f64()?;
            if qubit >= n_qubits {
                return Err(DatasetIoError::Corrupt(format!(
                    "event qubit {qubit} out of range"
                )));
            }
            let from = Level::from_index(from as usize)
                .ok_or_else(|| DatasetIoError::Corrupt(format!("event level byte {from}")))?;
            let to = Level::from_index(to as usize)
                .ok_or_else(|| DatasetIoError::Corrupt(format!("event level byte {to}")))?;
            events.push(TransitionEvent {
                qubit,
                time_us,
                from,
                to,
            });
        }

        let store = TraceStore::from_columns(
            n_qubits,
            stride,
            raw,
            prepared,
            initial,
            finals,
            events,
            event_offsets,
        );
        Ok(TraceDataset::from_store(
            config,
            levels,
            label_source,
            Arc::new(store),
        ))
    }

    /// Loads a dataset from a binary file (buffered).
    ///
    /// # Errors
    ///
    /// As for [`TraceDataset::load_bin`].
    pub fn load_bin_file<P: AsRef<Path>>(path: P) -> Result<Self, DatasetIoError> {
        Self::load_bin(BufReader::new(File::open(path)?))
    }
}

fn levels_to_bytes(levels: &[Level]) -> Vec<u8> {
    levels.iter().map(|l| l.index() as u8).collect()
}

// ---------------------------------------------------------------------------
// Dataset cache
// ---------------------------------------------------------------------------

/// A reproducible dataset generation request: everything that determines
/// the simulated shots, hashed into a cache [`DatasetSpec::fingerprint`].
///
/// Repro binaries and benches build a spec, probe the cache directory with
/// [`DatasetSpec::load_cached`], and fall back to [`DatasetSpec::generate`]
/// on a miss — so a dataset is simulated once per (chip, levels, shots,
/// seed) combination instead of once per binary invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Chip configuration to simulate.
    pub config: ChipConfig,
    /// Level alphabet (2 or 3); for natural generation this is the label
    /// alphabet (always 3).
    pub levels: usize,
    /// Shots per prepared basis state.
    pub shots_per_state: usize,
    /// Master seed.
    pub seed: u64,
    /// `true` selects [`TraceDataset::generate_natural`] (computational
    /// preparations, initial-state labels), `false` the full
    /// [`TraceDataset::generate`] basis sweep.
    pub natural: bool,
    /// `Some(k)` replaces the exhaustive `levels^n` basis sweep with `k`
    /// seed-derived random preparations — the only tractable methodology
    /// past ~12 qubits, where the full sweep is astronomically large
    /// (multiplexed feedlines read 20–40 qubits per line). `None` keeps
    /// the exhaustive sweep and leaves the fingerprint identical to
    /// pre-sampling cache keys.
    pub sampled_states: Option<usize>,
}

impl DatasetSpec {
    /// Spec for the full `levels^n` basis sweep.
    pub fn full(config: ChipConfig, levels: usize, shots_per_state: usize, seed: u64) -> Self {
        Self {
            config,
            levels,
            shots_per_state,
            seed,
            natural: false,
            sampled_states: None,
        }
    }

    /// Spec for the paper's calibration-free natural-leakage methodology.
    pub fn natural(config: ChipConfig, shots_per_state: usize, seed: u64) -> Self {
        Self {
            config,
            levels: 3,
            shots_per_state,
            seed,
            natural: true,
            sampled_states: None,
        }
    }

    /// Spec for `n_states` seed-derived random preparations instead of the
    /// exhaustive basis sweep — the crowded-feedline methodology, where
    /// `levels^n` states cannot be enumerated. The sampled states are a
    /// pure function of `(seed, n_states, n_qubits, levels)`, so the spec
    /// stays reproducible and cacheable like the exhaustive modes.
    pub fn sampled(
        config: ChipConfig,
        levels: usize,
        n_states: usize,
        shots_per_state: usize,
        seed: u64,
    ) -> Self {
        Self {
            config,
            levels,
            shots_per_state,
            seed,
            natural: false,
            sampled_states: Some(n_states),
        }
    }

    /// Stable content fingerprint of the request — the cache key. Folds
    /// in [`crate::SIMULATOR_REVISION`], so caches simulated by older
    /// physics/RNG revisions miss instead of silently masking simulator
    /// changes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(b"mlr-dataset-v1", FNV_OFFSET);
        h = fnv1a(&crate::SIMULATOR_REVISION.to_le_bytes(), h);
        h = fnv1a(
            serde_json::to_string(&self.config)
                .expect("chip config serialises")
                .as_bytes(),
            h,
        );
        h = fnv1a(&(self.levels as u64).to_le_bytes(), h);
        h = fnv1a(&(self.shots_per_state as u64).to_le_bytes(), h);
        h = fnv1a(&self.seed.to_le_bytes(), h);
        h = fnv1a(&[self.natural as u8], h);
        // Folded only when present, so every pre-sampling fingerprint (and
        // therefore every existing cache file name) is unchanged.
        if let Some(k) = self.sampled_states {
            h = fnv1a(b"sampled", h);
            h = fnv1a(&(k as u64).to_le_bytes(), h);
        }
        h
    }

    /// Cache file name for this spec (`mlr-<fingerprint>.mlrds`).
    pub fn cache_file_name(&self) -> String {
        format!("mlr-{:016x}.mlrds", self.fingerprint())
    }

    /// Path of this spec's cache file inside `dir`.
    pub fn cache_path(&self, dir: &Path) -> PathBuf {
        dir.join(self.cache_file_name())
    }

    /// Simulates the dataset this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or `levels` is out of range, as the
    /// underlying generators do.
    pub fn generate(&self) -> TraceDataset {
        if let Some(k) = self.sampled_states {
            let states =
                crate::sample_basis_states(self.config.n_qubits(), self.levels, k, self.seed);
            TraceDataset::generate_states(
                &self.config,
                self.levels,
                &states,
                self.shots_per_state,
                self.seed,
            )
        } else if self.natural {
            TraceDataset::generate_natural(&self.config, self.shots_per_state, self.seed)
        } else {
            TraceDataset::generate(&self.config, self.levels, self.shots_per_state, self.seed)
        }
    }

    /// `true` if a loaded dataset plausibly came from this spec (config,
    /// alphabet, label source and shot count all agree).
    pub fn matches(&self, ds: &TraceDataset) -> bool {
        let expected_source = if self.natural {
            LabelSource::Initial
        } else {
            LabelSource::Prepared
        };
        let prepared_states = self
            .sampled_states
            .unwrap_or_else(|| basis_count_for(&self.config, self.levels, self.natural));
        ds.config() == &self.config
            && ds.levels() == self.levels
            && ds.label_source() == expected_source
            && ds.len() == prepared_states * self.shots_per_state
    }

    /// Probes `dir` for this spec's cache file.
    ///
    /// Returns `Ok(None)` when the file does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetIoError`] when the file exists but cannot be read,
    /// fails validation, or describes a different spec (stale cache).
    pub fn load_cached(&self, dir: &Path) -> Result<Option<TraceDataset>, DatasetIoError> {
        let path = self.cache_path(dir);
        if !path.exists() {
            return Ok(None);
        }
        let ds = TraceDataset::load_bin_file(&path)?;
        if !self.matches(&ds) {
            return Err(DatasetIoError::Corrupt(format!(
                "cache file {} does not match its spec",
                path.display()
            )));
        }
        Ok(Some(ds))
    }

    /// Saves `ds` as this spec's cache file in `dir` (created if missing),
    /// returning the written path.
    ///
    /// The write is atomic: data lands in a temporary sibling first and is
    /// renamed into place, so an interrupted save never leaves a truncated
    /// cache file under the spec's name.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetIoError::Io`] on directory or write failure.
    pub fn store_cached(&self, dir: &Path, ds: &TraceDataset) -> Result<PathBuf, DatasetIoError> {
        std::fs::create_dir_all(dir)?;
        let path = self.cache_path(dir);
        let tmp = dir.join(format!(
            ".{}.tmp-{}",
            self.cache_file_name(),
            std::process::id()
        ));
        if let Err(e) = ds.save_bin_file(&tmp) {
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        Ok(path)
    }
}

fn basis_count_for(config: &ChipConfig, levels: usize, natural: bool) -> usize {
    crate::basis_state_count(config.n_qubits(), if natural { 2 } else { levels })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> TraceDataset {
        let mut c = ChipConfig::five_qubit_paper();
        c.n_samples = 40;
        TraceDataset::generate_natural(&c, 2, 5)
    }

    fn save_to_vec(ds: &TraceDataset) -> Vec<u8> {
        let mut buf = Vec::new();
        ds.save_bin(&mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ds = small_dataset();
        let buf = save_to_vec(&ds);
        let back = TraceDataset::load_bin(buf.as_slice()).unwrap();
        assert_eq!(back.store(), ds.store());
        assert_eq!(back.config(), ds.config());
        assert_eq!(back.levels(), ds.levels());
        assert_eq!(back.label_source(), ds.label_source());
    }

    #[test]
    fn truncated_dataset_roundtrips_with_window() {
        let ds = small_dataset().truncated(25);
        let buf = save_to_vec(&ds);
        let back = TraceDataset::load_bin(buf.as_slice()).unwrap();
        assert_eq!(back.config().n_samples, 25);
        assert_eq!(back.store().n_samples(), 40); // full stride preserved
        for i in 0..ds.len() {
            assert_eq!(back.raw(i), ds.raw(i));
            assert_eq!(back.events(i), ds.events(i));
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let ds = small_dataset();
        let mut buf = save_to_vec(&ds);
        buf[0] = b'X';
        assert!(matches!(
            TraceDataset::load_bin(buf.as_slice()),
            Err(DatasetIoError::BadMagic)
        ));
        let mut buf = save_to_vec(&ds);
        buf[4] = 99;
        assert!(matches!(
            TraceDataset::load_bin(buf.as_slice()),
            Err(DatasetIoError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn corrupt_payload_is_rejected_not_panicked() {
        let ds = small_dataset();
        // Flip a byte inside the config JSON: the stored hash must catch it.
        let mut buf = save_to_vec(&ds);
        let json_start = 80;
        buf[json_start + 3] ^= 0x20;
        match TraceDataset::load_bin(buf.as_slice()) {
            Err(DatasetIoError::Corrupt(msg)) => {
                assert!(msg.contains("hash") || msg.contains("JSON"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Truncated file: an Io error, never a panic.
        let buf = save_to_vec(&ds);
        let short = &buf[..buf.len() / 2];
        assert!(matches!(
            TraceDataset::load_bin(short),
            Err(DatasetIoError::Io(_))
        ));
    }

    #[test]
    fn header_field_corruption_is_caught_by_the_hash() {
        // levels / label_source / counts sit outside the config JSON;
        // the header hash must cover them so a flipped tag cannot load a
        // differently-labelled dataset.
        let ds = small_dataset(); // natural => label_source = Initial
        for offset in [16usize, 24, 40] {
            // levels, label_source, n_shots
            let mut buf = save_to_vec(&ds);
            buf[offset] ^= 1;
            match TraceDataset::load_bin(buf.as_slice()) {
                Err(DatasetIoError::Corrupt(_)) | Err(DatasetIoError::Io(_)) => {}
                other => panic!("offset {offset}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_alphabet_label_byte_is_corrupt_not_panic() {
        // Payload bytes are not hash-covered; the labelled side array gets
        // an explicit alphabet check instead.
        let mut c = ChipConfig::uniform(1);
        c.n_samples = 10;
        let ds = TraceDataset::generate(&c, 2, 1, 3); // Prepared labels, levels = 2
        let mut buf = save_to_vec(&ds);
        let config_len = u64::from_le_bytes(buf[72..80].try_into().unwrap()) as usize;
        let n_shots = u64::from_le_bytes(buf[40..48].try_into().unwrap()) as usize;
        let stride = u64::from_le_bytes(buf[48..56].try_into().unwrap()) as usize;
        let prepared_start = 80 + config_len + n_shots * stride * 16;
        buf[prepared_start] = 2; // Leaked label in a two-level alphabet
        match TraceDataset::load_bin(buf.as_slice()) {
            Err(DatasetIoError::Corrupt(msg)) => assert!(msg.contains("alphabet"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn astronomical_header_counts_fail_typed_not_oom() {
        // A corrupt header may claim petabyte-scale arrays; loading must
        // hit the truncation (Io) or a Corrupt check, never pre-commit
        // the claimed allocation.
        let ds = small_dataset();
        for field_offset in [40usize, 48, 64] {
            // n_shots, stride, n_events
            let mut buf = save_to_vec(&ds);
            buf[field_offset..field_offset + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
            match TraceDataset::load_bin(buf.as_slice()) {
                Err(DatasetIoError::Io(_)) | Err(DatasetIoError::Corrupt(_)) => {}
                other => panic!("offset {field_offset}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn spec_fingerprint_tracks_every_knob() {
        let c = ChipConfig::five_qubit_paper();
        let base = DatasetSpec::natural(c.clone(), 10, 1);
        let mut fps = vec![base.fingerprint()];
        fps.push(DatasetSpec::natural(c.clone(), 11, 1).fingerprint());
        fps.push(DatasetSpec::natural(c.clone(), 10, 2).fingerprint());
        fps.push(DatasetSpec::full(c.clone(), 3, 10, 1).fingerprint());
        fps.push(DatasetSpec::full(c.clone(), 2, 10, 1).fingerprint());
        let mut truncated = c.clone();
        truncated.n_samples = 100;
        fps.push(DatasetSpec::natural(truncated, 10, 1).fingerprint());
        let mut unique = fps.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), fps.len(), "fingerprint collision: {fps:?}");
    }

    #[test]
    fn cache_roundtrip_and_stale_detection() {
        let dir = std::env::temp_dir().join(format!("mlr_persist_test_{}", std::process::id()));
        let mut c = ChipConfig::five_qubit_paper();
        c.n_samples = 30;
        let spec = DatasetSpec::natural(c.clone(), 1, 3);
        assert!(spec.load_cached(&dir).unwrap().is_none());
        let ds = spec.generate();
        let path = spec.store_cached(&dir, &ds).unwrap();
        assert!(path.exists());
        let cached = spec.load_cached(&dir).unwrap().expect("cache hit");
        assert_eq!(cached.store(), ds.store());
        // A different spec saved under this spec's name is rejected.
        let other = DatasetSpec::natural(c, 2, 3);
        other.generate().save_bin_file(&path).unwrap();
        assert!(matches!(
            spec.load_cached(&dir),
            Err(DatasetIoError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
