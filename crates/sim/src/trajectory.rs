//! Stochastic level timelines and the resonator's response to them.

use mlr_num::Complex;
use rand::Rng;
use rand_distr::{Distribution, Exp};

use crate::{Level, QubitParams};

/// One piece of a piecewise-constant level timeline: the qubit occupies
/// `level` from `start_us` (inclusive) to `end_us` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSegment {
    /// Segment start time within the readout window, microseconds.
    pub start_us: f64,
    /// Segment end time, microseconds.
    pub end_us: f64,
    /// Level occupied during the segment.
    pub level: Level,
}

/// Samples the stochastic level trajectory of one qubit over a readout
/// window of `duration_us`, starting from `initial`.
///
/// Relaxation (`1/T1` rates, with `|2⟩` branching to `|1⟩` or directly to
/// `|0⟩`) competes with measurement-induced excitation; the earliest
/// exponential clock fires and the walk continues from the new level.
///
/// The result is never empty and its segments tile `[0, duration_us]`
/// exactly.
///
/// # Examples
///
/// ```
/// use mlr_sim::{sample_level_timeline, Level, QubitParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let segs = sample_level_timeline(&QubitParams::nominal(), Level::Ground, 1.0, &mut rng);
/// assert_eq!(segs[0].start_us, 0.0);
/// assert_eq!(segs.last().unwrap().end_us, 1.0);
/// ```
pub fn sample_level_timeline(
    params: &QubitParams,
    initial: Level,
    duration_us: f64,
    rng: &mut impl Rng,
) -> Vec<LevelSegment> {
    let mut segments = Vec::with_capacity(2);
    let mut t = 0.0;
    let mut level = initial;

    while t < duration_us {
        // Candidate processes from the current level: (rate per us, target).
        let mut processes: Vec<(f64, Level)> = Vec::with_capacity(3);
        match level {
            Level::Ground => {
                processes.push((params.exc_ge_per_us, Level::Excited));
                processes.push((params.exc_gf_per_us, Level::Leaked));
            }
            Level::Excited => {
                processes.push((1.0 / params.t1_ge_us, Level::Ground));
                processes.push((params.exc_ef_per_us, Level::Leaked));
            }
            Level::Leaked => {
                let decay_rate = 1.0 / params.t1_ef_us;
                let direct = params.direct_leak_decay_prob;
                processes.push((decay_rate * (1.0 - direct), Level::Excited));
                processes.push((decay_rate * direct, Level::Ground));
            }
        }

        // Earliest firing clock wins.
        let mut first: Option<(f64, Level)> = None;
        for (rate, target) in processes {
            if rate <= 0.0 {
                continue;
            }
            let wait = Exp::new(rate).expect("positive rate").sample(rng);
            if first.is_none_or(|(best, _)| wait < best) {
                first = Some((wait, target));
            }
        }

        match first {
            Some((wait, target)) if t + wait < duration_us => {
                segments.push(LevelSegment {
                    start_us: t,
                    end_us: t + wait,
                    level,
                });
                t += wait;
                level = target;
            }
            _ => {
                segments.push(LevelSegment {
                    start_us: t,
                    end_us: duration_us,
                    level,
                });
                break;
            }
        }
    }
    segments
}

/// Steady-state dispersive response of the resonator when the qubit sits in
/// `level`.
pub(crate) fn steady_state(params: &QubitParams, level: Level) -> Complex {
    Complex::from_polar(
        params.amplitude,
        params.phase_deg[level.index()].to_radians(),
    )
}

/// Integrates the resonator response to a level timeline.
///
/// The resonator starts empty (`s(0) = 0`, ring-up) and relaxes toward the
/// steady-state point of the currently occupied level with time constant
/// `ring_up_tau_ns`; a mid-trace jump re-targets the relaxation, producing
/// the characteristic kinked trajectories that relaxation/excitation matched
/// filters key on.
///
/// Writes one complex (I, Q) sample per slot of `out` — the
/// allocation-free form the arena-filling simulator uses.
pub(crate) fn baseband_response_into(
    params: &QubitParams,
    segments: &[LevelSegment],
    dt_us: f64,
    out: &mut [Complex],
) {
    let tau_us = params.ring_up_tau_ns * 1e-3;
    let alpha = (-dt_us / tau_us).exp();
    let mut s = Complex::ZERO;
    let mut seg_idx = 0;
    for (n, slot) in out.iter_mut().enumerate() {
        let t = n as f64 * dt_us;
        while seg_idx + 1 < segments.len() && t >= segments[seg_idx].end_us {
            seg_idx += 1;
        }
        let target = steady_state(params, segments[seg_idx].level);
        // First-order relaxation toward the target over one sample period.
        s = target + (s - target).scale(alpha);
        *slot = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nominal() -> QubitParams {
        QubitParams::nominal()
    }

    fn baseband_response(
        params: &QubitParams,
        segments: &[LevelSegment],
        n_samples: usize,
        dt_us: f64,
    ) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; n_samples];
        baseband_response_into(params, segments, dt_us, &mut out);
        out
    }

    #[test]
    fn timeline_tiles_window() {
        let mut rng = StdRng::seed_from_u64(42);
        for init in Level::ALL {
            for _ in 0..50 {
                let segs = sample_level_timeline(&nominal(), init, 1.0, &mut rng);
                assert!(!segs.is_empty());
                assert_eq!(segs[0].start_us, 0.0);
                assert_eq!(segs.last().unwrap().end_us, 1.0);
                for w in segs.windows(2) {
                    assert!((w[0].end_us - w[1].start_us).abs() < 1e-12);
                    assert_ne!(w[0].level, w[1].level, "segments only split at jumps");
                }
            }
        }
    }

    #[test]
    fn excited_state_decays_at_roughly_t1_rate() {
        let mut params = nominal();
        params.t1_ge_us = 5.0;
        params.exc_ef_per_us = 0.0;
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let mut decayed = 0;
        for _ in 0..trials {
            let segs = sample_level_timeline(&params, Level::Excited, 1.0, &mut rng);
            if segs.last().unwrap().level == Level::Ground {
                decayed += 1;
            }
        }
        let p = decayed as f64 / trials as f64;
        let expected = 1.0 - (-1.0f64 / 5.0).exp(); // ~0.181
        assert!(
            (p - expected).abs() < 0.01,
            "decay fraction {p} vs expected {expected}"
        );
    }

    #[test]
    fn ground_state_mostly_stays_put() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut stayed = 0;
        let trials = 5_000;
        for _ in 0..trials {
            let segs = sample_level_timeline(&nominal(), Level::Ground, 1.0, &mut rng);
            if segs.len() == 1 {
                stayed += 1;
            }
        }
        // exc rates are ~0.005/us, so >98% of shots should be jump-free.
        assert!(stayed as f64 / trials as f64 > 0.98);
    }

    #[test]
    fn leaked_state_decays_through_cascade() {
        let mut params = nominal();
        params.t1_ef_us = 0.05; // decay almost surely within the window
        params.t1_ge_us = 0.05;
        let mut rng = StdRng::seed_from_u64(11);
        let segs = sample_level_timeline(&params, Level::Leaked, 1.0, &mut rng);
        assert!(segs.len() >= 2);
        assert_eq!(segs.last().unwrap().level, Level::Ground);
    }

    #[test]
    fn zero_rates_freeze_the_ground_state() {
        let mut params = nominal();
        params.exc_ge_per_us = 0.0;
        params.exc_gf_per_us = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        let segs = sample_level_timeline(&params, Level::Ground, 1.0, &mut rng);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].level, Level::Ground);
    }

    #[test]
    fn response_rings_up_to_steady_state() {
        let params = nominal();
        let segs = [LevelSegment {
            start_us: 0.0,
            end_us: 1.0,
            level: Level::Excited,
        }];
        let resp = baseband_response(&params, &segs, 500, 1.0 / 500.0);
        let target = steady_state(&params, Level::Excited);
        // Early sample far from steady state, late sample converged.
        assert!((resp[0] - target).abs() > 0.5 * target.abs());
        assert!((resp[499] - target).abs() < 1e-3 * target.abs());
    }

    #[test]
    fn response_tracks_mid_trace_jump() {
        let params = nominal();
        let segs = [
            LevelSegment {
                start_us: 0.0,
                end_us: 0.5,
                level: Level::Excited,
            },
            LevelSegment {
                start_us: 0.5,
                end_us: 1.0,
                level: Level::Ground,
            },
        ];
        let resp = baseband_response(&params, &segs, 500, 1.0 / 500.0);
        let e = steady_state(&params, Level::Excited);
        let g = steady_state(&params, Level::Ground);
        // Just before the jump: near |1>; at the end: near |0>.
        assert!((resp[249] - e).abs() < 0.1 * e.abs());
        assert!((resp[499] - g).abs() < 0.1 * g.abs());
    }
}
