//! Chip and qubit parameterisation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical parameters of one transmon and its readout resonator.
///
/// Times are in the units stated per field; rates are per microsecond. The
/// per-level IQ geometry (`amplitude`, `phase_deg`) sets how separable the
/// three dispersive responses are — the paper's qubit 2 is modelled with a
/// compressed phase spread, which is what limits its fidelity in every
/// discriminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QubitParams {
    /// `|1⟩ → |0⟩` relaxation time in microseconds (paper range: 7–40 µs).
    pub t1_ge_us: f64,
    /// `|2⟩ → |1⟩` relaxation time in microseconds (shorter than `t1_ge_us`
    /// for a transmon).
    pub t1_ef_us: f64,
    /// Probability that a `|2⟩` decay goes directly to `|0⟩` instead of
    /// `|1⟩`.
    pub direct_leak_decay_prob: f64,
    /// Measurement-induced `|0⟩ → |1⟩` excitation rate, events per µs.
    pub exc_ge_per_us: f64,
    /// Measurement-induced `|0⟩ → |2⟩` excitation rate, events per µs.
    pub exc_gf_per_us: f64,
    /// Measurement-induced `|1⟩ → |2⟩` excitation rate, events per µs.
    pub exc_ef_per_us: f64,
    /// Probability that a qubit nominally prepared in a computational state
    /// actually starts the readout leaked (`|2⟩`) — the "natural leakage"
    /// harvested by the calibration-free clustering of Sec. V-A.
    pub prep_leak_prob: f64,
    /// Steady-state resonator response magnitude (arbitrary ADC units).
    pub amplitude: f64,
    /// Steady-state response phase for levels `|0⟩`, `|1⟩`, `|2⟩`, degrees.
    pub phase_deg: [f64; 3],
    /// Resonator ring-up/settle time constant `2/κ`, nanoseconds.
    pub ring_up_tau_ns: f64,
    /// Intermediate (readout tone) frequency on the shared feedline, MHz.
    pub if_freq_mhz: f64,
}

impl QubitParams {
    /// A well-behaved default transmon: 25 µs T1, widely separated response
    /// phases, 100 ns ring-up.
    pub fn nominal() -> Self {
        Self {
            t1_ge_us: 25.0,
            t1_ef_us: 14.0,
            direct_leak_decay_prob: 0.12,
            exc_ge_per_us: 0.004,
            exc_gf_per_us: 0.001,
            exc_ef_per_us: 0.005,
            prep_leak_prob: 0.002,
            amplitude: 1.0,
            phase_deg: [0.0, 110.0, 225.0],
            ring_up_tau_ns: 100.0,
            if_freq_mhz: 25.0,
        }
    }
}

impl Default for QubitParams {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Reasons a [`ChipConfig`] fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The chip has no qubits.
    NoQubits,
    /// The crosstalk matrix is not `n x n` for `n` qubits.
    CrosstalkShape,
    /// A lifetime, rate, amplitude or time constant is non-positive where it
    /// must be positive (message names the field).
    NonPositive(&'static str),
    /// A probability field lies outside `[0, 1]` (message names the field).
    ProbabilityRange(&'static str),
    /// Trace length or sample rate is zero.
    EmptyTrace,
    /// Two qubits on the shared feedline have identical or sub-resolution
    /// intermediate frequencies: their tones land in the same spectral
    /// bin of the readout window (`sample_rate / n_samples`), so
    /// demodulation cannot separate the channels and the dataset would be
    /// silently degenerate. Holds the colliding qubit indices.
    ToneCollision(usize, usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoQubits => write!(f, "chip has no qubits"),
            ConfigError::CrosstalkShape => write!(f, "crosstalk matrix is not n x n"),
            ConfigError::NonPositive(field) => write!(f, "{field} must be positive"),
            ConfigError::ProbabilityRange(field) => {
                write!(f, "{field} must lie in [0, 1]")
            }
            ConfigError::EmptyTrace => write!(f, "trace length and sample rate must be nonzero"),
            ConfigError::ToneCollision(a, b) => write!(
                f,
                "qubits {a} and {b} have sub-resolution tone separation on the shared feedline"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a frequency-multiplexed readout chip: per-qubit
/// physics, the channel crosstalk matrix, and the digitiser front end.
///
/// # Examples
///
/// ```
/// use mlr_sim::ChipConfig;
///
/// let config = ChipConfig::five_qubit_paper();
/// assert_eq!(config.n_qubits(), 5);
/// assert!((config.duration_us() - 1.0).abs() < 1e-12);
/// config.validate().expect("preset is valid");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Per-qubit physical parameters.
    pub qubits: Vec<QubitParams>,
    /// Row `q` holds the fraction of each channel's baseband that bleeds
    /// into channel `q` (diagonal entries are ignored; self-coupling is 1).
    pub crosstalk: Vec<Vec<f64>>,
    /// Standard deviation of the additive receiver noise per I/Q sample.
    pub rx_noise: f64,
    /// ADC sampling rate in MSamples/s (the paper uses 500).
    pub sample_rate_mhz: f64,
    /// Samples per readout trace (the paper uses 500, i.e. 1 µs).
    pub n_samples: usize,
    /// ADC resolution in bits; `None` disables quantisation.
    pub adc_bits: Option<u32>,
    /// ADC full-scale range, in the same units as the signal amplitude.
    pub adc_full_scale: f64,
}

impl ChipConfig {
    /// The five-qubit chip mirroring the paper's dataset (Sec. VI):
    ///
    /// * 500 MS/s, 1 µs traces;
    /// * qubit 2 (index 1) has a compressed dispersive phase spread, limiting
    ///   its distinguishability "due to the experimental setup";
    /// * qubits 3 and 4 (indices 2 and 3) are more prone to `|2⟩`
    ///   excitations and natural leakage;
    /// * qubit 4 also has the shortest T1 (7 µs, the bottom of the paper's
    ///   7–40 µs range).
    #[allow(clippy::vec_init_then_push)] // per-qubit commentary between pushes
    pub fn five_qubit_paper() -> Self {
        let mut qubits = Vec::with_capacity(5);

        // Qubit 1: long-lived, clean.
        qubits.push(QubitParams {
            t1_ge_us: 40.0,
            t1_ef_us: 22.0,
            prep_leak_prob: 0.004,
            exc_ge_per_us: 0.003,
            exc_gf_per_us: 0.0008,
            exc_ef_per_us: 0.004,
            phase_deg: [0.0, 115.0, 230.0],
            if_freq_mhz: -125.0,
            ..QubitParams::nominal()
        });
        // Qubit 2: poor state separation (compressed phases, weak response).
        qubits.push(QubitParams {
            t1_ge_us: 18.0,
            t1_ef_us: 10.0,
            prep_leak_prob: 0.012,
            exc_ge_per_us: 0.006,
            exc_gf_per_us: 0.0015,
            exc_ef_per_us: 0.007,
            amplitude: 0.56,
            phase_deg: [0.0, 55.0, 118.0],
            if_freq_mhz: -75.0,
            ..QubitParams::nominal()
        });
        // Qubit 3: leakage-prone (elevated |2> excitation).
        qubits.push(QubitParams {
            t1_ge_us: 22.0,
            t1_ef_us: 12.0,
            prep_leak_prob: 0.022,
            exc_ge_per_us: 0.012,
            exc_gf_per_us: 0.012,
            exc_ef_per_us: 0.035,
            phase_deg: [0.0, 105.0, 215.0],
            if_freq_mhz: -25.0,
            ..QubitParams::nominal()
        });
        // Qubit 4: shortest T1 and the strongest natural leakage.
        qubits.push(QubitParams {
            t1_ge_us: 7.0,
            t1_ef_us: 4.0,
            prep_leak_prob: 0.032,
            exc_ge_per_us: 0.014,
            exc_gf_per_us: 0.015,
            exc_ef_per_us: 0.040,
            phase_deg: [0.0, 108.0, 220.0],
            if_freq_mhz: 25.0,
            ..QubitParams::nominal()
        });
        // Qubit 5: clean, mid-range T1.
        qubits.push(QubitParams {
            t1_ge_us: 32.0,
            t1_ef_us: 18.0,
            prep_leak_prob: 0.009,
            exc_ge_per_us: 0.003,
            exc_gf_per_us: 0.001,
            exc_ef_per_us: 0.004,
            phase_deg: [0.0, 112.0, 228.0],
            if_freq_mhz: 75.0,
            ..QubitParams::nominal()
        });

        // Nearest-neighbour dominated crosstalk, slightly asymmetric, as on a
        // chip with a shared feedline. Strong enough that a per-qubit-only
        // discriminator (LDA/QDA) pays a visible penalty that the all-qubit
        // neural designs recover — the Table V gap.
        let n = qubits.len();
        let mut crosstalk = vec![vec![0.0; n]; n];
        for (q, row) in crosstalk.iter_mut().enumerate() {
            for (p, entry) in row.iter_mut().enumerate() {
                let dist = q.abs_diff(p);
                *entry = match dist {
                    0 => 0.0,
                    1 => 0.13 + 0.02 * ((q * 7 + p * 3) % 5) as f64 / 5.0,
                    2 => 0.035,
                    _ => 0.01,
                };
            }
        }

        Self {
            qubits,
            crosstalk,
            rx_noise: 3.4,
            sample_rate_mhz: 500.0,
            n_samples: 500,
            adc_bits: Some(12),
            adc_full_scale: 24.0,
        }
    }

    /// A homogeneous `n`-qubit chip of [`QubitParams::nominal`] transmons
    /// with weak nearest-neighbour crosstalk — useful for scaling studies.
    pub fn uniform(n: usize) -> Self {
        let qubits: Vec<QubitParams> = (0..n)
            .map(|q| QubitParams {
                // Spread tones 50 MHz apart centred on DC.
                if_freq_mhz: (q as f64 - (n as f64 - 1.0) / 2.0) * 50.0,
                ..QubitParams::nominal()
            })
            .collect();
        let mut crosstalk = vec![vec![0.0; n]; n];
        for (q, row) in crosstalk.iter_mut().enumerate() {
            for (p, entry) in row.iter_mut().enumerate() {
                if q.abs_diff(p) == 1 {
                    *entry = 0.05;
                }
            }
        }
        Self {
            qubits,
            crosstalk,
            rx_noise: 3.4,
            sample_rate_mhz: 500.0,
            n_samples: 500,
            adc_bits: Some(12),
            adc_full_scale: 24.0,
        }
    }

    /// Number of qubits on the chip.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Sample period in microseconds.
    pub fn dt_us(&self) -> f64 {
        1.0 / self.sample_rate_mhz
    }

    /// Total readout duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.n_samples as f64 * self.dt_us()
    }

    /// Returns a copy with a shorter trace (`n_samples` clamped to the
    /// current length) — used by the readout-duration sweep of Fig. 5(b).
    pub fn truncated(&self, n_samples: usize) -> Self {
        let mut c = self.clone();
        c.n_samples = n_samples.min(self.n_samples);
        c
    }

    /// Spectral resolution of the readout window in MHz: tones closer
    /// than one DFT bin (`sample_rate / n_samples`) cannot be separated
    /// by demodulation over the window and count as colliding at
    /// acquisition time ([`ChipConfig::validate_for_acquisition`]).
    pub fn tone_resolution_mhz(&self) -> f64 {
        self.sample_rate_mhz / self.n_samples as f64
    }

    /// Checks structural and numeric validity.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.qubits.is_empty() {
            return Err(ConfigError::NoQubits);
        }
        let n = self.qubits.len();
        if self.crosstalk.len() != n || self.crosstalk.iter().any(|row| row.len() != n) {
            return Err(ConfigError::CrosstalkShape);
        }
        if self.n_samples == 0 || self.sample_rate_mhz <= 0.0 {
            return Err(ConfigError::EmptyTrace);
        }
        // Exactly coincident tones are degenerate at any window length:
        // the channels demodulate to the same baseband and every
        // discriminator silently fails on both.
        for a in 0..n {
            for b in (a + 1)..n {
                if self.qubits[a].if_freq_mhz == self.qubits[b].if_freq_mhz {
                    return Err(ConfigError::ToneCollision(a, b));
                }
            }
        }
        if self.rx_noise < 0.0 {
            return Err(ConfigError::NonPositive("rx_noise"));
        }
        if self.adc_full_scale <= 0.0 {
            return Err(ConfigError::NonPositive("adc_full_scale"));
        }
        for q in &self.qubits {
            if q.t1_ge_us <= 0.0 || q.t1_ef_us <= 0.0 {
                return Err(ConfigError::NonPositive("t1"));
            }
            if q.ring_up_tau_ns <= 0.0 {
                return Err(ConfigError::NonPositive("ring_up_tau_ns"));
            }
            if q.amplitude <= 0.0 {
                return Err(ConfigError::NonPositive("amplitude"));
            }
            if q.exc_ge_per_us < 0.0 || q.exc_gf_per_us < 0.0 || q.exc_ef_per_us < 0.0 {
                return Err(ConfigError::NonPositive("excitation rate"));
            }
            if !(0.0..=1.0).contains(&q.prep_leak_prob) {
                return Err(ConfigError::ProbabilityRange("prep_leak_prob"));
            }
            if !(0.0..=1.0).contains(&q.direct_leak_decay_prob) {
                return Err(ConfigError::ProbabilityRange("direct_leak_decay_prob"));
            }
        }
        Ok(())
    }

    /// [`ChipConfig::validate`] plus the acquisition-time tone-resolution
    /// criterion: every qubit pair on the shared feedline needs at least
    /// one spectral bin ([`ChipConfig::tone_resolution_mhz`]) of
    /// separation over the configured window, or demodulation cannot
    /// separate the channels and generated data would be degenerate.
    ///
    /// Only data *generation* enforces this — prefix-truncated views of a
    /// valid acquisition (streaming checkpoints, [`ChipConfig::truncated`])
    /// legitimately widen the bin past close tone spacings, and reloading
    /// such a dataset must not reject it.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`].
    pub fn validate_for_acquisition(&self) -> Result<(), ConfigError> {
        self.validate()?;
        let n = self.qubits.len();
        let resolution = self.tone_resolution_mhz();
        for a in 0..n {
            for b in (a + 1)..n {
                let sep = (self.qubits[a].if_freq_mhz - self.qubits[b].if_freq_mhz).abs();
                if sep < resolution {
                    return Err(ConfigError::ToneCollision(a, b));
                }
            }
        }
        Ok(())
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::five_qubit_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_is_valid_and_matches_methodology() {
        let c = ChipConfig::five_qubit_paper();
        c.validate().unwrap();
        assert_eq!(c.n_qubits(), 5);
        assert_eq!(c.n_samples, 500);
        assert!((c.sample_rate_mhz - 500.0).abs() < 1e-12);
        // T1 range 7-40 us as in the paper.
        let t1s: Vec<f64> = c.qubits.iter().map(|q| q.t1_ge_us).collect();
        assert!((t1s.iter().cloned().fold(f64::INFINITY, f64::min) - 7.0).abs() < 1e-9);
        assert!((t1s.iter().cloned().fold(0.0, f64::max) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn qubit2_is_least_separable() {
        let c = ChipConfig::five_qubit_paper();
        let spread =
            |q: &QubitParams| q.amplitude * (q.phase_deg[1] - q.phase_deg[0]).to_radians().sin();
        let s1 = spread(&c.qubits[1]);
        for (i, q) in c.qubits.iter().enumerate() {
            if i != 1 {
                assert!(
                    spread(q) > s1,
                    "qubit {i} should separate better than qubit 2"
                );
            }
        }
    }

    #[test]
    fn qubits_3_4_are_leakage_prone() {
        let c = ChipConfig::five_qubit_paper();
        for clean in [0usize, 1, 4] {
            for leaky in [2usize, 3] {
                assert!(c.qubits[leaky].exc_gf_per_us > c.qubits[clean].exc_gf_per_us);
                assert!(c.qubits[leaky].prep_leak_prob > c.qubits[clean].prep_leak_prob);
            }
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ChipConfig::five_qubit_paper();
        c.qubits[0].t1_ge_us = 0.0;
        assert_eq!(c.validate(), Err(ConfigError::NonPositive("t1")));

        let mut c = ChipConfig::five_qubit_paper();
        c.crosstalk.pop();
        assert_eq!(c.validate(), Err(ConfigError::CrosstalkShape));

        let mut c = ChipConfig::five_qubit_paper();
        c.qubits[2].prep_leak_prob = 1.5;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ProbabilityRange("prep_leak_prob"))
        );

        let mut c = ChipConfig::five_qubit_paper();
        c.qubits.clear();
        assert_eq!(c.validate(), Err(ConfigError::NoQubits));
    }

    #[test]
    fn tone_collisions_are_typed_errors() {
        // Identical intermediate frequencies collide outright, even under
        // the structural check that reloads use.
        let mut c = ChipConfig::five_qubit_paper();
        c.qubits[3].if_freq_mhz = c.qubits[1].if_freq_mhz;
        assert_eq!(c.validate(), Err(ConfigError::ToneCollision(1, 3)));

        // Sub-resolution separation collides at acquisition time only:
        // 500 samples at 500 MS/s resolve 1 MHz, so tones 0.4 MHz apart
        // share a DFT bin and must not be *generated* — but the config
        // stays structurally valid, so truncated views still reload.
        let mut c = ChipConfig::five_qubit_paper();
        c.qubits[2].if_freq_mhz = c.qubits[1].if_freq_mhz + 0.4;
        assert_eq!(
            c.validate_for_acquisition(),
            Err(ConfigError::ToneCollision(1, 2))
        );
        assert_eq!(c.validate(), Ok(()));
        assert!((c.tone_resolution_mhz() - 1.0).abs() < 1e-12);

        // Exactly one bin of separation is the limiting valid spacing.
        let mut c = ChipConfig::five_qubit_paper();
        c.qubits[2].if_freq_mhz = c.qubits[1].if_freq_mhz + 1.0;
        assert_eq!(c.validate_for_acquisition(), Ok(()));

        // Prefix truncation widens the bin past the paper chip's 50 MHz
        // spacing; the structural check must keep accepting the view.
        let c = ChipConfig::five_qubit_paper().truncated(5);
        assert!(c.tone_resolution_mhz() > 50.0);
        assert_eq!(c.validate(), Ok(()));

        let msg = ConfigError::ToneCollision(1, 3).to_string();
        assert!(msg.contains('1') && msg.contains('3'));
    }

    #[test]
    fn truncation_shortens_trace() {
        let c = ChipConfig::five_qubit_paper().truncated(400);
        assert_eq!(c.n_samples, 400);
        assert!((c.duration_us() - 0.8).abs() < 1e-12);
        // Clamped, never extended.
        assert_eq!(c.truncated(9999).n_samples, 400);
    }

    #[test]
    fn uniform_chip_spaces_tones() {
        let c = ChipConfig::uniform(4);
        c.validate().unwrap();
        let f: Vec<f64> = c.qubits.iter().map(|q| q.if_freq_mhz).collect();
        assert_eq!(f, vec![-75.0, -25.0, 25.0, 75.0]);
    }

    #[test]
    fn config_error_display() {
        let msg = ConfigError::NonPositive("t1").to_string();
        assert!(msg.contains("t1"));
    }
}
