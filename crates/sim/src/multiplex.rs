//! Frequency-multiplexed feedline scale-out: crowded tone grids, physics-
//! derived crosstalk, and per-feedline sharded dataset generation.
//!
//! The paper's chip reads five qubits on one feedline with hand-tuned
//! crosstalk numbers. The multiplexed-readout literature (Chen 2012 phase
//! qubits, Jerger 2012 FDM flux-qubit arrays, Kundu 2019 broadband-JPA
//! 3D cQED) packs 10–100 tones per line, where crowding — not the tuning
//! of any single pair — sets the crosstalk floor. [`FeedlineSpec`] /
//! [`MultiplexedChip`] model that regime:
//!
//! * **crowded tone grid** — `n_qubits` tones evenly spaced across
//!   `band_mhz`, centred on DC, so halving the spacing doubles the
//!   multiplexing factor at fixed band;
//! * **derived crosstalk** — resonator responses are Lorentzians of
//!   linewidth `kappa_mhz`; channel `p` bleeds into channel `q` with the
//!   spectral overlap `coupling / (1 + (2Δf/κ)²)`, replacing hand-tuned
//!   matrices for scaled chips;
//! * **per-feedline digitiser saturation** — one ADC digitises the whole
//!   line, so its full scale is provisioned against the line's composite
//!   signal (RMS tone sum + noise tails, times [`FeedlineSpec::adc_headroom`]),
//!   not against any single channel: crowding eats dynamic range;
//! * **sharded generation** — each feedline is an independent
//!   [`DatasetSpec`] with a seed derived per shard ([`MultiplexedChip::shard_seed`]),
//!   so shards reproduce independently of each other and of thread count,
//!   and cache independently under the `MLR_DATASET_DIR` fingerprint
//!   scheme ([`MultiplexedChip::generate_cached`]).

use crate::{ChipConfig, DatasetIoError, DatasetSpec, QubitParams, TraceDataset};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Salt separating shard seeds from every other seed stream ("MUXSHARD").
const SHARD_SALT: u64 = 0x4D55_5853_4841_5244;

/// One readout feedline: how many tones share it, how wide the band is,
/// and how its resonators and digitiser behave.
///
/// # Examples
///
/// ```
/// use mlr_sim::multiplex::FeedlineSpec;
///
/// let line = FeedlineSpec::crowded(20);
/// let chip = line.chip();
/// chip.validate_for_acquisition()
///     .expect("crowded grid stays above tone resolution");
/// assert_eq!(chip.n_qubits(), 20);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedlineSpec {
    /// Qubits (tones) multiplexed on this line.
    pub n_qubits: usize,
    /// Total intermediate-frequency band the tones are packed into, MHz.
    /// Tones sit on an even grid of `band_mhz / n_qubits` spacing centred
    /// on DC, so the band — not the qubit count — is the scarce resource.
    pub band_mhz: f64,
    /// Resonator linewidth κ (FWHM), MHz. Sets both the Lorentzian
    /// crosstalk tails and the ring-up time constant (`τ = 1/(π·κ)`).
    pub kappa_mhz: f64,
    /// Peak bleed fraction between two channels whose tones coincide; the
    /// Lorentzian overlap scales it down with spectral separation.
    pub coupling: f64,
    /// Additive receiver noise per I/Q sample (shared line amplifier).
    pub rx_noise: f64,
    /// ADC sampling rate, MSamples/s.
    pub sample_rate_mhz: f64,
    /// Samples per readout trace.
    pub n_samples: usize,
    /// Per-feedline ADC resolution in bits; `None` disables quantisation.
    pub adc_bits: Option<u32>,
    /// Full-scale provisioning factor: the ADC range is
    /// `adc_headroom × (RMS tone sum + 3·rx_noise)`. Because the RMS sum
    /// grows only like `√n` while occasional coherent peaks grow faster,
    /// crowding a line clips more — the saturation penalty of FDM readout.
    pub adc_headroom: f64,
}

impl FeedlineSpec {
    /// A crowded line in the paper's acquisition format (500 MS/s, 1 µs
    /// traces, 12-bit ADC): `n_qubits` tones packed into a fixed 240 MHz
    /// band, κ = 12 MHz resonators. At 5 tones per line the grid is
    /// spacious (48 MHz spacing, nearest-neighbour bleed ≈ 1 %); at 40
    /// the same band gives 6 MHz spacing and ≈ 45 % bleed — the crowding
    /// regime a joint discriminator is built for.
    pub fn crowded(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            band_mhz: 240.0,
            kappa_mhz: 12.0,
            coupling: 0.9,
            rx_noise: 3.4,
            sample_rate_mhz: 500.0,
            n_samples: 500,
            adc_bits: Some(12),
            adc_headroom: 2.0,
        }
    }

    /// Grid spacing between adjacent tones, MHz.
    pub fn tone_spacing_mhz(&self) -> f64 {
        self.band_mhz / self.n_qubits.max(1) as f64
    }

    /// Tone frequency of qubit `q` on this line: even grid centred on DC.
    pub fn tone_mhz(&self, q: usize) -> f64 {
        (q as f64 - (self.n_qubits as f64 - 1.0) / 2.0) * self.tone_spacing_mhz()
    }

    /// Lorentzian bleed fraction between channels separated by `delta_mhz`:
    /// `coupling / (1 + (2Δf/κ)²)` — the squared magnitude of a resonator
    /// response of linewidth κ evaluated Δf off resonance.
    pub fn lorentzian_overlap(&self, delta_mhz: f64) -> f64 {
        self.coupling / (1.0 + (2.0 * delta_mhz / self.kappa_mhz).powi(2))
    }

    /// The [`ChipConfig`] this line simulates as: grid tones, Lorentzian
    /// crosstalk, κ-derived ring-up, and the provisioned ADC full scale.
    ///
    /// Per-qubit physics starts from [`QubitParams::nominal`] with a small
    /// deterministic spread in amplitude and dispersive phase (a real line
    /// never carries identical resonators), so per-channel difficulty
    /// varies across the line.
    pub fn chip(&self) -> ChipConfig {
        let n = self.n_qubits;
        let ring_up_tau_ns = 1000.0 / (std::f64::consts::PI * self.kappa_mhz);
        let qubits: Vec<QubitParams> = (0..n)
            .map(|q| {
                // Deterministic fabrication spread: ±8 % amplitude, a few
                // degrees of phase, keyed by the qubit's grid position.
                let wobble = ((q * 7 + 3) % 11) as f64 / 10.0 - 0.5;
                QubitParams {
                    if_freq_mhz: self.tone_mhz(q),
                    amplitude: 1.0 + 0.16 * wobble,
                    phase_deg: [0.0, 110.0 + 8.0 * wobble, 222.0 + 10.0 * wobble],
                    ring_up_tau_ns,
                    ..QubitParams::nominal()
                }
            })
            .collect();
        let crosstalk = (0..n)
            .map(|q| {
                (0..n)
                    .map(|p| {
                        if p == q {
                            0.0
                        } else {
                            self.lorentzian_overlap(self.tone_mhz(q) - self.tone_mhz(p))
                        }
                    })
                    .collect()
            })
            .collect();
        let amp_rms: f64 = qubits
            .iter()
            .map(|q| q.amplitude * q.amplitude)
            .sum::<f64>()
            .sqrt();
        ChipConfig {
            qubits,
            crosstalk,
            rx_noise: self.rx_noise,
            sample_rate_mhz: self.sample_rate_mhz,
            n_samples: self.n_samples,
            adc_bits: self.adc_bits,
            adc_full_scale: self.adc_headroom * (amp_rms + 3.0 * self.rx_noise),
        }
    }
}

/// A chip of `M` feedlines, each an independent [`FeedlineSpec`].
///
/// Feedlines share no analog path, so dataset production shards per line:
/// shard `f` is the [`DatasetSpec`] of its line's chip under the derived
/// seed [`MultiplexedChip::shard_seed`]`(seed, f)`. Shards are
/// reproducible in isolation (regenerating one line never touches the
/// others' RNG streams) and cache independently under the
/// `MLR_DATASET_DIR` fingerprint scheme.
///
/// # Examples
///
/// ```
/// use mlr_sim::multiplex::{FeedlineSpec, MultiplexedChip};
///
/// let chip = MultiplexedChip::homogeneous(2, FeedlineSpec::crowded(5));
/// assert_eq!(chip.total_qubits(), 10);
/// let shards = chip.generate(3, 16, 2, 7);
/// assert_eq!(shards.len(), 2);
/// assert_eq!(shards[0].len(), 16 * 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiplexedChip {
    /// The feedlines, in line order.
    pub feedlines: Vec<FeedlineSpec>,
}

impl MultiplexedChip {
    /// `m` identical copies of `line`.
    pub fn homogeneous(m: usize, line: FeedlineSpec) -> Self {
        Self {
            feedlines: vec![line; m],
        }
    }

    /// Number of feedlines.
    pub fn n_feedlines(&self) -> usize {
        self.feedlines.len()
    }

    /// Total qubits across every line.
    pub fn total_qubits(&self) -> usize {
        self.feedlines.iter().map(|l| l.n_qubits).sum()
    }

    /// The simulated chip of feedline `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn feedline_chip(&self, f: usize) -> ChipConfig {
        self.feedlines[f].chip()
    }

    /// The master seed of shard `f`: SplitMix64 over `(seed, salt + f)`,
    /// so shards draw from independent streams whatever order — or subset
    /// — of them is generated.
    pub fn shard_seed(seed: u64, f: usize) -> u64 {
        crate::dataset::mix_seed(seed, SHARD_SALT.wrapping_add(f as u64))
    }

    /// One [`DatasetSpec`] per feedline: `n_states` sampled preparations,
    /// `shots_per_state` shots each, shard-derived seeds. These specs *are*
    /// the shard cache keys.
    pub fn shard_specs(
        &self,
        levels: usize,
        n_states: usize,
        shots_per_state: usize,
        seed: u64,
    ) -> Vec<DatasetSpec> {
        self.feedlines
            .iter()
            .enumerate()
            .map(|(f, line)| {
                DatasetSpec::sampled(
                    line.chip(),
                    levels,
                    n_states,
                    shots_per_state,
                    Self::shard_seed(seed, f),
                )
            })
            .collect()
    }

    /// Generates every shard from scratch, in line order. Per-shard output
    /// is thread-count-independent (per-shot seeds), so the whole result
    /// is too.
    ///
    /// # Panics
    ///
    /// As for [`TraceDataset::generate_states`].
    pub fn generate(
        &self,
        levels: usize,
        n_states: usize,
        shots_per_state: usize,
        seed: u64,
    ) -> Vec<TraceDataset> {
        self.shard_specs(levels, n_states, shots_per_state, seed)
            .iter()
            .map(DatasetSpec::generate)
            .collect()
    }

    /// Generates every shard through the fingerprint cache in `dir`: hits
    /// load, misses simulate and store. Returns the shards plus how many
    /// were cache hits. Because each shard is its own spec, invalidating
    /// one line (say, a retuned κ) regenerates only that line's file.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetIoError`] when a cache file exists but cannot be
    /// read or does not match its spec, or when a store fails.
    pub fn generate_cached(
        &self,
        levels: usize,
        n_states: usize,
        shots_per_state: usize,
        seed: u64,
        dir: &Path,
    ) -> Result<(Vec<TraceDataset>, usize), DatasetIoError> {
        let mut shards = Vec::with_capacity(self.n_feedlines());
        let mut hits = 0;
        for spec in self.shard_specs(levels, n_states, shots_per_state, seed) {
            match spec.load_cached(dir)? {
                Some(ds) => {
                    hits += 1;
                    shards.push(ds);
                }
                None => {
                    let ds = spec.generate();
                    spec.store_cached(dir, &ds)?;
                    shards.push(ds);
                }
            }
        }
        Ok((shards, hits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crowded_grids_validate_up_to_forty_tones() {
        for n in [5, 10, 20, 40] {
            let chip = FeedlineSpec::crowded(n).chip();
            chip.validate_for_acquisition()
                .unwrap_or_else(|e| panic!("n = {n}: {e}"));
            assert_eq!(chip.n_qubits(), n);
            // Tones stay inside the band and below Nyquist.
            for q in &chip.qubits {
                assert!(q.if_freq_mhz.abs() < chip.sample_rate_mhz / 2.0);
                assert!(q.if_freq_mhz.abs() <= 160.0);
            }
        }
    }

    #[test]
    fn crosstalk_grows_with_crowding_and_decays_with_separation() {
        let sparse = FeedlineSpec::crowded(5).chip();
        let dense = FeedlineSpec::crowded(40).chip();
        let nn = |c: &ChipConfig| c.crosstalk[1][2];
        // Nearest-neighbour bleed is ~40x worse at 8x the crowding.
        assert!(
            nn(&dense) > 20.0 * nn(&sparse),
            "dense {} sparse {}",
            nn(&dense),
            nn(&sparse)
        );
        assert!(nn(&dense) > 0.1, "dense crowding should be substantial");
        // Within one chip, bleed decays monotonically with tone distance.
        let row = &dense.crosstalk[0];
        for p in 2..dense.n_qubits() {
            assert!(row[p] < row[p - 1], "q0 <- q{p}");
        }
        // Diagonal is zero: self-coupling is the signal, not crosstalk.
        for (q, row) in dense.crosstalk.iter().enumerate() {
            assert_eq!(row[q], 0.0);
        }
    }

    #[test]
    fn digitiser_range_is_provisioned_per_line() {
        let n5 = FeedlineSpec::crowded(5).chip();
        let n40 = FeedlineSpec::crowded(40).chip();
        // Full scale tracks the RMS tone sum: 8x the tones buys only ~sqrt(8)x
        // the signal range, so per-tone dynamic range shrinks with crowding.
        assert!(n40.adc_full_scale > n5.adc_full_scale);
        assert!(n40.adc_full_scale < n5.adc_full_scale * (40.0f64 / 5.0).sqrt() * 1.5);
    }

    #[test]
    fn shards_are_reproducible_and_order_independent() {
        let chip = MultiplexedChip::homogeneous(3, FeedlineSpec::crowded(4));
        let shards = chip.generate(3, 8, 2, 99);
        assert_eq!(shards.len(), 3);
        // Regenerating one shard in isolation reproduces it bit-exactly.
        let spec1 = &chip.shard_specs(3, 8, 2, 99)[1];
        let alone = spec1.generate();
        assert_eq!(alone.store(), shards[1].store());
        // Different shards draw from different streams.
        assert_ne!(shards[0].store(), shards[1].store());
        // And shard seeds differ from the master seed's own stream.
        assert_ne!(MultiplexedChip::shard_seed(99, 0), 99);
    }

    #[test]
    fn shard_cache_round_trips_and_counts_hits() {
        let dir = std::env::temp_dir().join(format!("mlr-mux-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let chip = MultiplexedChip::homogeneous(2, FeedlineSpec::crowded(3));
        let (cold, hits) = chip.generate_cached(3, 6, 2, 7, &dir).unwrap();
        assert_eq!(hits, 0);
        let (warm, hits) = chip.generate_cached(3, 6, 2, 7, &dir).unwrap();
        assert_eq!(hits, 2);
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.store(), b.store());
        }
        // The cache matches fresh generation bit-exactly.
        let fresh = chip.generate(3, 6, 2, 7);
        for (a, b) in fresh.iter().zip(&warm) {
            assert_eq!(a.store(), b.store());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_states_are_deterministic_and_bounded() {
        let a = crate::sample_basis_states(40, 3, 12, 5);
        let b = crate::sample_basis_states(40, 3, 12, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.iter().all(|s| s.n_qubits() == 40));
        assert_ne!(a, crate::sample_basis_states(40, 3, 12, 6));
        // A sampled spec fingerprints differently from the full sweep and
        // from other sample counts.
        let chip = FeedlineSpec::crowded(3).chip();
        let full = DatasetSpec::full(chip.clone(), 3, 4, 1);
        let s12 = DatasetSpec::sampled(chip.clone(), 3, 12, 4, 1);
        let s13 = DatasetSpec::sampled(chip, 3, 13, 4, 1);
        assert_ne!(full.fingerprint(), s12.fingerprint());
        assert_ne!(s12.fingerprint(), s13.fingerprint());
    }
}
