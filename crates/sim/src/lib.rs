//! Dispersive-readout physics simulator for frequency-multiplexed
//! multi-level superconducting qubit readout.
//!
//! This crate is the data substrate for the DAC 2025 reproduction: the paper
//! evaluates on readout traces captured from a five-transmon chip
//! (Lienhard et al., 500 MSamples/s ADC, 1 µs traces). We do not have that
//! proprietary dataset, so this crate synthesises traces from the same
//! physical mechanisms the discriminators must cope with:
//!
//! * **dispersive response** — each qubit level pulls its readout resonator
//!   to a distinct steady-state IQ point; the resonator rings up/settles with
//!   time constant `2/κ`;
//! * **relaxation during readout** — `|2⟩ → |1⟩ → |0⟩` decay cascades
//!   sampled from the qubit lifetimes, producing the mid-trace trajectory
//!   kinks that relaxation matched filters detect;
//! * **measurement-induced excitation** — rare `|0⟩→|1⟩`, `|0⟩→|2⟩`,
//!   `|1⟩→|2⟩` jumps (qubits 3 and 4 of the preset are more prone, as in the
//!   paper);
//! * **readout crosstalk** — neighbouring resonator responses bleed into
//!   each channel through a crosstalk matrix, which only a discriminator that
//!   sees *all* qubits can correct;
//! * **frequency multiplexing** — per-qubit basebands are modulated onto
//!   intermediate frequencies and summed onto one feedline, then digitised
//!   with additive receiver noise and optional ADC quantisation.
//!
//! The raw composite trace (what the ADC sees) feeds the raw-trace FNN
//! baseline; demodulation in `mlr-dsp` recovers per-qubit basebands for the
//! matched-filter designs.
//!
//! Shots live in a structure-of-arrays [`TraceStore`] — one flat trace
//! arena (stride = `n_samples`) plus packed side arrays for labels and
//! transition events. The simulator writes shots directly into pre-sliced
//! arena chunks ([`ReadoutSimulator::simulate_shot_into`]), read paths
//! borrow [`ShotView`]s, and datasets persist in a versioned little-endian
//! binary format ([`TraceDataset::save_bin`] / [`TraceDataset::load_bin`])
//! so repro binaries can load a cached dataset instead of re-simulating
//! ([`DatasetSpec`]).
//!
//! # Examples
//!
//! ```
//! use mlr_sim::{ChipConfig, ReadoutSimulator, BasisState, Level};
//! use rand::SeedableRng;
//!
//! let config = ChipConfig::five_qubit_paper();
//! let sim = ReadoutSimulator::new(config);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let prepared = BasisState::uniform(5, Level::Excited);
//! let shot = sim.simulate_shot(&prepared, &mut rng);
//! assert_eq!(shot.raw.len(), 500);
//! ```

#![deny(missing_docs)]

mod dataset;
mod level;
pub mod multiplex;
mod params;
mod persist;
mod shot;
mod simulator;
mod store;
mod trajectory;

pub use dataset::{sample_basis_states, DatasetSplit, LabelSource, TraceDataset};
pub use level::{basis_state_count, BasisState, BasisStates, Level};
pub use multiplex::{FeedlineSpec, MultiplexedChip};
pub use params::{ChipConfig, ConfigError, QubitParams};
pub use persist::{
    config_hash, DatasetIoError, DatasetSpec, DATASET_FORMAT_VERSION, DATASET_MAGIC,
};
pub use shot::{Shot, TransitionEvent};
pub use simulator::{ReadoutSimulator, SimScratch, SIMULATOR_REVISION};
pub use store::{ShotRecord, ShotView, TraceStore};
pub use trajectory::{sample_level_timeline, LevelSegment};
