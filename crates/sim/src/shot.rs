//! A single readout shot and the transition events inside it.

use mlr_num::Complex;

use crate::{BasisState, Level};

/// A level transition that occurred during a readout window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionEvent {
    /// Which qubit jumped.
    pub qubit: usize,
    /// When the jump occurred, microseconds into the readout window.
    pub time_us: f64,
    /// Level before the jump.
    pub from: Level,
    /// Level after the jump.
    pub to: Level,
}

impl TransitionEvent {
    /// `true` if the jump lost energy (relaxation), `false` for excitation.
    pub fn is_relaxation(&self) -> bool {
        self.to.index() < self.from.index()
    }
}

/// One digitised readout shot of the whole chip — the **owned** (AoS)
/// form.
///
/// `raw` is the composite frequency-multiplexed trace as seen by the ADC —
/// the sum of every qubit's tone plus receiver noise. Per-qubit information
/// is recovered by demodulation (`mlr-dsp`). The ground-truth fields record
/// what the simulator actually did, for labelling and for validating the
/// error-trace tagging of the discriminators.
///
/// Datasets no longer store `Shot`s: shots live in the structure-of-arrays
/// [`crate::TraceStore`] and read paths borrow [`crate::ShotView`]s out of
/// it. `Shot` remains the single-shot currency of
/// [`crate::ReadoutSimulator::simulate_shot`] and the reference for the
/// zero-copy equivalence tests ([`crate::ShotView::to_shot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Shot {
    /// Composite ADC trace, one complex (I, Q) sample per time bin.
    pub raw: Vec<Complex>,
    /// State the register was *nominally* prepared in (the classification
    /// label, as in the paper's labelled dataset).
    pub prepared: BasisState,
    /// State actually occupied at the start of the window (differs from
    /// `prepared` when natural leakage or SPAM errors strike).
    pub initial: BasisState,
    /// State occupied at the end of the window.
    pub final_state: BasisState,
    /// Every mid-trace level transition, in time order per qubit.
    pub events: Vec<TransitionEvent>,
}

impl Shot {
    /// Number of ADC samples in the trace.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// `true` if qubit `q` jumped at least once during the window.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range for the register.
    pub fn qubit_jumped(&self, q: usize) -> bool {
        assert!(q < self.prepared.n_qubits(), "qubit index out of range");
        self.events.iter().any(|e| e.qubit == q)
    }

    /// Returns a copy with the trace truncated to the first `n_samples`
    /// samples and events outside the shortened window dropped — used by the
    /// readout-duration sweep (Fig. 5b).
    pub fn truncated(&self, n_samples: usize, sample_rate_mhz: f64) -> Shot {
        let n = n_samples.min(self.raw.len());
        let t_max = n as f64 / sample_rate_mhz;
        let mut out = self.clone();
        out.raw.truncate(n);
        out.events.retain(|e| e.time_us < t_max);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shot_with_events() -> Shot {
        Shot {
            raw: vec![Complex::ZERO; 500],
            prepared: BasisState::uniform(2, Level::Excited),
            initial: BasisState::uniform(2, Level::Excited),
            final_state: BasisState::uniform(2, Level::Ground),
            events: vec![
                TransitionEvent {
                    qubit: 0,
                    time_us: 0.3,
                    from: Level::Excited,
                    to: Level::Ground,
                },
                TransitionEvent {
                    qubit: 1,
                    time_us: 0.9,
                    from: Level::Excited,
                    to: Level::Leaked,
                },
            ],
        }
    }

    #[test]
    fn relaxation_vs_excitation() {
        let s = shot_with_events();
        assert!(s.events[0].is_relaxation());
        assert!(!s.events[1].is_relaxation());
    }

    #[test]
    fn jump_queries() {
        let s = shot_with_events();
        assert!(s.qubit_jumped(0));
        assert!(s.qubit_jumped(1));
    }

    #[test]
    fn truncation_drops_late_events() {
        let s = shot_with_events();
        let t = s.truncated(250, 500.0); // keep first 0.5 us
        assert_eq!(t.len(), 250);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].qubit, 0);
    }

    #[test]
    fn truncation_is_clamped() {
        let s = shot_with_events();
        assert_eq!(s.truncated(10_000, 500.0).len(), 500);
    }
}
