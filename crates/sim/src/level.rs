//! Qubit energy levels and multi-qubit basis states.

use std::fmt;

/// One energy level of a transmon treated as a three-level system.
///
/// The computational subspace is `{Ground, Excited}`; [`Level::Leaked`] is
/// the `|2⟩` state outside it, the target of leakage detection throughout
/// this workspace.
///
/// # Examples
///
/// ```
/// use mlr_sim::Level;
///
/// assert_eq!(Level::Leaked.index(), 2);
/// assert_eq!(Level::from_index(1), Some(Level::Excited));
/// assert!(Level::Leaked.is_leaked());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Level {
    /// `|0⟩`, the ground state.
    #[default]
    Ground,
    /// `|1⟩`, the excited computational state.
    Excited,
    /// `|2⟩`, the leaked state outside the computational subspace.
    Leaked,
}

impl Level {
    /// All three levels in energy order.
    pub const ALL: [Level; 3] = [Level::Ground, Level::Excited, Level::Leaked];

    /// Numeric index of the level (`0`, `1`, `2`).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Level::Ground => 0,
            Level::Excited => 1,
            Level::Leaked => 2,
        }
    }

    /// Inverse of [`Level::index`]; `None` for indices above 2.
    #[inline]
    pub const fn from_index(i: usize) -> Option<Level> {
        match i {
            0 => Some(Level::Ground),
            1 => Some(Level::Excited),
            2 => Some(Level::Leaked),
            _ => None,
        }
    }

    /// `true` only for [`Level::Leaked`].
    #[inline]
    pub const fn is_leaked(self) -> bool {
        matches!(self, Level::Leaked)
    }

    /// The level one quantum of energy below, or `Ground` if already there.
    #[inline]
    pub const fn decayed(self) -> Level {
        match self {
            Level::Ground | Level::Excited => Level::Ground,
            Level::Leaked => Level::Excited,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|{}>", self.index())
    }
}

/// Encodes a per-qubit level slice as a flat base-`levels` index — the
/// shared core of [`BasisState::flat_index`] and the dataset's packed
/// joint-label path.
///
/// # Panics
///
/// Panics if any level lies outside the encoded alphabet.
pub(crate) fn flat_index_of(levels_slice: &[Level], levels: usize) -> usize {
    let mut idx = 0;
    for level in levels_slice {
        assert!(level.index() < levels, "level outside the encoded alphabet");
        idx = idx * levels + level.index();
    }
    idx
}

/// Number of joint basis states for `n` qubits with `k` levels each (`k^n`).
///
/// # Panics
///
/// Panics on overflow (not reachable for the system sizes used here).
pub fn basis_state_count(n_qubits: usize, levels: usize) -> usize {
    levels
        .checked_pow(n_qubits as u32)
        .expect("basis state count overflow")
}

/// A joint computational/leakage basis state of an `n`-qubit register, e.g.
/// `|0 2 1 0 0⟩`.
///
/// # Examples
///
/// ```
/// use mlr_sim::{BasisState, Level};
///
/// let s = BasisState::from_flat_index(7, 2, 3); // base-3 digits of 7 = [2, 1]
/// assert_eq!(s.level(0), Level::Leaked);
/// assert_eq!(s.level(1), Level::Excited);
/// assert_eq!(s.flat_index(3), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BasisState(Vec<Level>);

impl BasisState {
    /// Builds a basis state from per-qubit levels.
    pub fn new(levels: Vec<Level>) -> Self {
        Self(levels)
    }

    /// All `n` qubits prepared in the same `level`.
    pub fn uniform(n: usize, level: Level) -> Self {
        Self(vec![level; n])
    }

    /// Decodes a flat index into a basis state, treating the index as an
    /// `n_qubits`-digit base-`levels` number. Qubit 0 is the *most
    /// significant* digit, matching the `|q0 q1 …⟩` ket ordering used in the
    /// paper's state tables.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or greater than 3, or if `index` is out of
    /// range.
    pub fn from_flat_index(index: usize, n_qubits: usize, levels: usize) -> Self {
        assert!((1..=3).contains(&levels), "levels must be 1..=3");
        assert!(
            index < basis_state_count(n_qubits, levels),
            "flat index out of range"
        );
        let mut digits = vec![Level::Ground; n_qubits];
        let mut rem = index;
        for q in (0..n_qubits).rev() {
            digits[q] = Level::from_index(rem % levels).expect("digit < levels <= 3");
            rem /= levels;
        }
        Self(digits)
    }

    /// Encodes this state as a flat base-`levels` index (inverse of
    /// [`BasisState::from_flat_index`]).
    ///
    /// # Panics
    ///
    /// Panics if any qubit occupies a level `>= levels`.
    pub fn flat_index(&self, levels: usize) -> usize {
        flat_index_of(&self.0, levels)
    }

    /// Number of qubits in the register.
    pub fn n_qubits(&self) -> usize {
        self.0.len()
    }

    /// Level of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn level(&self, q: usize) -> Level {
        self.0[q]
    }

    /// Replaces the level of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_level(&mut self, q: usize, level: Level) {
        self.0[q] = level;
    }

    /// Per-qubit levels as a slice.
    pub fn levels(&self) -> &[Level] {
        &self.0
    }

    /// Count of qubits in the leaked state.
    pub fn leaked_count(&self) -> usize {
        self.0.iter().filter(|l| l.is_leaked()).count()
    }

    /// `true` if any qubit is leaked.
    pub fn has_leakage(&self) -> bool {
        self.0.iter().any(|l| l.is_leaked())
    }
}

impl fmt::Display for BasisState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|")?;
        for l in &self.0 {
            write!(f, "{}", l.index())?;
        }
        write!(f, ">")
    }
}

impl From<&[usize]> for BasisState {
    fn from(indices: &[usize]) -> Self {
        Self(
            indices
                .iter()
                .map(|&i| Level::from_index(i).expect("level index out of range"))
                .collect(),
        )
    }
}

/// Iterator over every joint basis state of `n` qubits with `k` levels, in
/// flat-index order. Created by [`BasisStates::new`].
///
/// # Examples
///
/// ```
/// use mlr_sim::BasisStates;
///
/// let all: Vec<_> = BasisStates::new(2, 3).collect();
/// assert_eq!(all.len(), 9);
/// assert_eq!(all[4].to_string(), "|11>");
/// ```
#[derive(Debug, Clone)]
pub struct BasisStates {
    n_qubits: usize,
    levels: usize,
    next: usize,
    total: usize,
}

impl BasisStates {
    /// Iterates over all `levels^n_qubits` basis states.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or greater than 3.
    pub fn new(n_qubits: usize, levels: usize) -> Self {
        assert!((1..=3).contains(&levels), "levels must be 1..=3");
        Self {
            n_qubits,
            levels,
            next: 0,
            total: basis_state_count(n_qubits, levels),
        }
    }
}

impl Iterator for BasisStates {
    type Item = BasisState;

    fn next(&mut self) -> Option<BasisState> {
        if self.next >= self.total {
            return None;
        }
        let s = BasisState::from_flat_index(self.next, self.n_qubits, self.levels);
        self.next += 1;
        Some(s)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BasisStates {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_index_roundtrip() {
        for l in Level::ALL {
            assert_eq!(Level::from_index(l.index()), Some(l));
        }
        assert_eq!(Level::from_index(3), None);
    }

    #[test]
    fn decay_ladder() {
        assert_eq!(Level::Leaked.decayed(), Level::Excited);
        assert_eq!(Level::Excited.decayed(), Level::Ground);
        assert_eq!(Level::Ground.decayed(), Level::Ground);
    }

    #[test]
    fn basis_state_roundtrip_all_243() {
        for idx in 0..basis_state_count(5, 3) {
            let s = BasisState::from_flat_index(idx, 5, 3);
            assert_eq!(s.flat_index(3), idx);
        }
    }

    #[test]
    fn basis_state_msb_is_qubit_zero() {
        // index 162 = 2*81 -> |20000>
        let s = BasisState::from_flat_index(162, 5, 3);
        assert_eq!(s.level(0), Level::Leaked);
        assert!(s.levels()[1..].iter().all(|&l| l == Level::Ground));
    }

    #[test]
    fn two_level_encoding_matches_binary() {
        let s = BasisState::from_flat_index(0b10110, 5, 2);
        let expect = [1, 0, 1, 1, 0].map(|i| Level::from_index(i).unwrap());
        assert_eq!(s.levels(), &expect);
    }

    #[test]
    fn leakage_queries() {
        let mut s = BasisState::uniform(3, Level::Ground);
        assert!(!s.has_leakage());
        s.set_level(1, Level::Leaked);
        assert!(s.has_leakage());
        assert_eq!(s.leaked_count(), 1);
        assert_eq!(s.to_string(), "|020>");
    }

    #[test]
    fn iterator_covers_all_states_once() {
        let states: Vec<_> = BasisStates::new(3, 3).collect();
        assert_eq!(states.len(), 27);
        let mut seen = std::collections::HashSet::new();
        for s in &states {
            assert!(seen.insert(s.flat_index(3)));
        }
    }

    #[test]
    fn iterator_size_hint_exact() {
        let mut it = BasisStates::new(2, 2);
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    #[should_panic(expected = "flat index out of range")]
    fn flat_index_bounds_checked() {
        let _ = BasisState::from_flat_index(243, 5, 3);
    }
}
