//! Bit-accurate integer inference, mirroring the FPGA dense-layer datapath.
//!
//! [`crate::QuantizedMlp`] estimates deployment accuracy by snapping values
//! to the fixed-point grid in floating point. [`IntMlp`] goes one step
//! further: it *is* the hardware datapath — two's-complement Q-format
//! weights, 64-bit multiply-accumulate, a round-half-away rescale shift and
//! width-saturation after every layer. Its outputs are bit-identical to
//! `QuantizedMlp` (a property the tests pin down), so the float model can
//! be used for fast sweeps and this one as the RTL-reference for a real
//! deployment.

use serde::{Deserialize, Serialize};

use crate::quantize::FixedPointFormat;
use crate::Mlp;

/// A dense network in two's-complement fixed point with an integer-only
/// forward pass.
///
/// Weights and activations are `Q(int_bits, fraction_bits)` values stored
/// in `i32`; layer accumulation happens in `i64` at double fractional
/// precision, exactly as a DSP48-based FPGA MAC chain would.
///
/// # Examples
///
/// ```
/// use mlr_nn::{FixedPointFormat, IntMlp, Mlp, QuantizedMlp};
///
/// let mlp = Mlp::new(&[4, 8, 3], 1);
/// let fmt = FixedPointFormat::HLS4ML_DEFAULT;
/// let imlp = IntMlp::from_mlp(&mlp, fmt);
/// let qmlp = QuantizedMlp::from_mlp(&mlp, fmt);
/// let x = [0.25f32, -0.5, 0.125, 1.0];
/// // The integer datapath reproduces the float quantisation model exactly.
/// assert_eq!(imlp.forward(&x), qmlp.forward(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntMlp {
    sizes: Vec<usize>,
    /// `weights[l][o * sizes[l] + i]` in `Q(fraction_bits)`.
    weights: Vec<Vec<i32>>,
    /// Biases pre-shifted to the accumulator's `Q(2 × fraction_bits)`.
    biases: Vec<Vec<i64>>,
    format: FixedPointFormat,
}

/// Rounds `x` (in real units) to a `Q(frac)` integer, half away from zero,
/// saturating to the `total` bit two's-complement range.
fn to_fixed(x: f64, format: FixedPointFormat) -> i32 {
    let scale = 2f64.powi(format.fraction_bits() as i32);
    let max = (1i64 << (format.total_bits() - 1)) - 1;
    let min = -(1i64 << (format.total_bits() - 1));
    let v = (x * scale).round() as i64;
    v.clamp(min, max) as i32
}

/// Divides by `2^shift`, rounding half away from zero — the behaviour of
/// `f64::round`, so integer and float quantisation agree on grid midpoints.
fn rounding_shift(acc: i64, shift: u32) -> i64 {
    if shift == 0 {
        return acc;
    }
    let half = 1i64 << (shift - 1);
    if acc >= 0 {
        (acc + half) >> shift
    } else {
        -((-acc + half) >> shift)
    }
}

impl IntMlp {
    /// Quantises a trained float network into the integer datapath.
    ///
    /// # Panics
    ///
    /// Panics if `format.total_bits() > 24`: wider words could overflow the
    /// 64-bit accumulator for the layer widths used here, and no FPGA
    /// deployment in this workspace uses more than 18-bit words.
    pub fn from_mlp(mlp: &Mlp, format: FixedPointFormat) -> Self {
        assert!(
            format.total_bits() <= 24,
            "IntMlp supports at most 24-bit words"
        );
        let frac = format.fraction_bits();
        let weights = mlp
            .weights
            .iter()
            .map(|w| w.iter().map(|&v| to_fixed(v as f64, format)).collect())
            .collect();
        let biases = mlp
            .biases
            .iter()
            .map(|b| {
                b.iter()
                    .map(|&v| (to_fixed(v as f64, format) as i64) << frac)
                    .collect()
            })
            .collect();
        Self {
            sizes: mlp.sizes().to_vec(),
            weights,
            biases,
            format,
        }
    }

    /// The fixed-point format of weights and activations.
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// Layer widths from input to output.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Quantises a real-valued input vector to `Q(fraction_bits)` words.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<i32> {
        x.iter().map(|&v| to_fixed(v as f64, self.format)).collect()
    }

    /// Integer-only forward pass over quantised inputs, returning
    /// `Q(fraction_bits)` output words.
    ///
    /// Each layer: `acc = bias + Σ w·x` in `Q(2·frac)` with `i64`
    /// accumulation, ReLU on the accumulator for hidden layers, then a
    /// round-half-away rescale to `Q(frac)` saturated to the word width.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward_raw(&self, x: &[i32]) -> Vec<i32> {
        assert_eq!(x.len(), self.sizes[0], "input length mismatch");
        let frac = self.format.fraction_bits();
        let max = (1i64 << (self.format.total_bits() - 1)) - 1;
        let min = -(1i64 << (self.format.total_bits() - 1));
        let n_layers = self.weights.len();
        let mut cur: Vec<i32> = x.to_vec();
        for l in 0..n_layers {
            let n_in = cur.len();
            let relu = l + 1 < n_layers;
            let mut next = Vec::with_capacity(self.biases[l].len());
            for (o, &bias) in self.biases[l].iter().enumerate() {
                let row = &self.weights[l][o * n_in..(o + 1) * n_in];
                let mut acc: i64 = bias;
                for (&w, &v) in row.iter().zip(&cur) {
                    acc += w as i64 * v as i64;
                }
                if relu {
                    acc = acc.max(0);
                }
                let scaled = rounding_shift(acc, frac).clamp(min, max);
                next.push(scaled as i32);
            }
            cur = next;
        }
        cur
    }

    /// Forward pass from real-valued inputs to real-valued (dequantised)
    /// outputs — the drop-in analogue of [`Mlp::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let scale = 2f32.powi(-(self.format.fraction_bits() as i32));
        self.forward_raw(&self.quantize_input(x))
            .iter()
            .map(|&v| v as f32 * scale)
            .collect()
    }

    /// Hard class prediction (argmax over output words; ties resolve to the
    /// lowest class index).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn predict(&self, x: &[f32]) -> usize {
        let out = self.forward_raw(&self.quantize_input(x));
        out.iter()
            .enumerate()
            .fold(
                (0usize, i32::MIN),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            )
            .0
    }

    /// Minimum accumulator width (bits) that cannot overflow for the
    /// widest layer of this network: `2·total_bits + ⌈log₂(n_in + 1)⌉`,
    /// the sizing rule hls4ml applies to dense-layer accumulators.
    pub fn accumulator_bits_required(&self) -> u32 {
        let widest = self
            .sizes
            .iter()
            .take(self.sizes.len() - 1)
            .copied()
            .max()
            .unwrap_or(0);
        2 * self.format.total_bits() + ((widest + 1) as f64).log2().ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuantizedMlp;

    #[test]
    fn to_fixed_rounds_half_away_and_saturates() {
        let fmt = FixedPointFormat::new(8, 4); // Q4.4: range [-8, 7.9375]
        assert_eq!(to_fixed(1.0, fmt), 16);
        assert_eq!(to_fixed(0.03125, fmt), 1); // 0.5 LSB rounds away
        assert_eq!(to_fixed(-0.03125, fmt), -1);
        assert_eq!(to_fixed(100.0, fmt), 127);
        assert_eq!(to_fixed(-100.0, fmt), -128);
    }

    #[test]
    fn rounding_shift_is_symmetric() {
        assert_eq!(rounding_shift(5, 1), 3); // 2.5 -> 3
        assert_eq!(rounding_shift(-5, 1), -3); // -2.5 -> -3
        assert_eq!(rounding_shift(4, 2), 1);
        assert_eq!(rounding_shift(6, 2), 2); // 1.5 -> 2
        assert_eq!(rounding_shift(-6, 2), -2);
        assert_eq!(rounding_shift(7, 0), 7);
    }

    #[test]
    fn matches_float_quantization_model_exactly() {
        // The headline property: integer datapath == float grid-snapping
        // model, bit for bit, across formats and topologies.
        for (seed, sizes) in [
            (0u64, vec![6, 12, 4]),
            (1, vec![10, 5, 5, 3]),
            (2, vec![3, 3]),
        ] {
            let mlp = Mlp::new(&sizes, seed);
            for fmt in [
                FixedPointFormat::HLS4ML_DEFAULT,
                FixedPointFormat::new(12, 5),
                FixedPointFormat::new(18, 8),
            ] {
                let imlp = IntMlp::from_mlp(&mlp, fmt);
                let qmlp = QuantizedMlp::from_mlp(&mlp, fmt);
                for trial in 0..20 {
                    let x: Vec<f32> = (0..sizes[0])
                        .map(|i| ((i + trial) as f32 * 0.37).sin() * 2.0)
                        .collect();
                    assert_eq!(
                        imlp.forward(&x),
                        qmlp.forward(&x),
                        "seed {seed} fmt {fmt:?} trial {trial}"
                    );
                }
            }
        }
    }

    #[test]
    fn predictions_agree_with_quantized_model() {
        let mlp = Mlp::new(&[8, 16, 5], 9);
        let fmt = FixedPointFormat::HLS4ML_DEFAULT;
        let imlp = IntMlp::from_mlp(&mlp, fmt);
        let qmlp = QuantizedMlp::from_mlp(&mlp, fmt);
        for trial in 0..50 {
            let x: Vec<f32> = (0..8)
                .map(|i| ((i * 13 + trial * 7) as f32 * 0.11).cos())
                .collect();
            assert_eq!(imlp.predict(&x), qmlp.predict(&x), "trial {trial}");
        }
    }

    #[test]
    fn saturation_clamps_hot_outputs() {
        // A weight of ~max value times an input of ~max value overflows the
        // word range; the output must saturate, not wrap.
        let fmt = FixedPointFormat::new(8, 4);
        let mut mlp = Mlp::new(&[1, 1], 0);
        mlp.weights[0] = vec![7.0];
        mlp.biases[0] = vec![0.0];
        let imlp = IntMlp::from_mlp(&mlp, fmt);
        let out = imlp.forward(&[7.0]);
        // 7*7 = 49 saturates to max_value (7.9375).
        assert!((out[0] - 7.9375).abs() < 1e-6, "{out:?}");
        let out_neg = imlp.forward(&[-7.0]);
        assert!((out_neg[0] + 8.0).abs() < 1e-6, "{out_neg:?}");
    }

    #[test]
    fn relu_applies_on_hidden_layers_only() {
        let fmt = FixedPointFormat::new(16, 6);
        let mut mlp = Mlp::new(&[1, 1, 1], 0);
        mlp.weights[0] = vec![1.0];
        mlp.biases[0] = vec![0.0];
        mlp.weights[1] = vec![1.0];
        mlp.biases[1] = vec![-1.0];
        let imlp = IntMlp::from_mlp(&mlp, fmt);
        // Hidden clamps -2 -> 0; output stays linear at -1.
        let out = imlp.forward(&[-2.0]);
        assert!((out[0] + 1.0).abs() < 1e-4, "{out:?}");
    }

    #[test]
    fn accumulator_sizing_covers_worst_case() {
        let mlp = Mlp::new(&[45, 22, 11, 3], 0);
        let imlp = IntMlp::from_mlp(&mlp, FixedPointFormat::HLS4ML_DEFAULT);
        // 2*16 + ceil(log2(46)) = 32 + 6 = 38.
        assert_eq!(imlp.accumulator_bits_required(), 38);
        assert!(imlp.accumulator_bits_required() <= 64);
    }

    #[test]
    #[should_panic(expected = "at most 24-bit")]
    fn wide_words_are_rejected() {
        let mlp = Mlp::new(&[2, 2], 0);
        let _ = IntMlp::from_mlp(&mlp, FixedPointFormat::new(32, 8));
    }
}
