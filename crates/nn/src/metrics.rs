//! Classification metrics: accuracy, confusion matrices, and the paper's
//! geometric-mean fidelity.

/// Fraction of matching prediction/label pairs.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// use mlr_nn::accuracy;
///
/// assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty inputs");
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, y)| p == y)
        .count();
    hits as f64 / predictions.len() as f64
}

/// Geometric mean of per-qubit fidelities — the paper's cumulative accuracy
/// `F5Q = (F1 F2 F3 F4 F5)^(1/5)` (Tables II and IV).
///
/// # Panics
///
/// Panics on an empty slice or a negative fidelity.
///
/// # Examples
///
/// ```
/// use mlr_nn::geometric_mean;
///
/// let f5q = geometric_mean(&[0.967, 0.728, 0.928, 0.932, 0.962]);
/// assert!((f5q - 0.8985).abs() < 5e-4); // the paper's FNN row
/// ```
pub fn geometric_mean(fidelities: &[f64]) -> f64 {
    assert!(!fidelities.is_empty(), "empty fidelities");
    assert!(fidelities.iter().all(|&f| f >= 0.0), "negative fidelity");
    let log_sum: f64 = fidelities.iter().map(|&f| f.max(1e-300).ln()).sum();
    (log_sum / fidelities.len() as f64).exp()
}

/// A point on a receiver-operating-characteristic curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold: positives are scores `>= threshold`.
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate (recall) at this threshold.
    pub tpr: f64,
}

/// ROC curve of a scalar score against boolean labels, one point per
/// distinct score (thresholds descending, so points run from (0,0)-ish
/// toward (1,1)).
///
/// Used to characterise leakage detection: score = the discriminator's
/// `|2⟩` probability, label = whether the shot truly leaked. The curve
/// (with [`auc`]) is what a control system consults to pick the flag
/// threshold that trades missed leakage against spurious LRC resets.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or either class is
/// absent.
///
/// # Examples
///
/// ```
/// use mlr_nn::roc_curve;
///
/// let points = roc_curve(&[0.9, 0.8, 0.3, 0.1], &[true, true, false, false]);
/// // A perfect separator reaches TPR 1 before any false positive.
/// assert!(points.iter().any(|p| p.tpr == 1.0 && p.fpr == 0.0));
/// ```
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty inputs");
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    assert!(positives > 0 && negatives > 0, "need both classes");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));

    let mut points = Vec::new();
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume every sample tied at this score before emitting a point.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold,
            fpr: fp as f64 / negatives as f64,
            tpr: tp as f64 / positives as f64,
        });
    }
    points
}

/// Area under the ROC curve by the Mann-Whitney U statistic: the
/// probability that a random positive outscores a random negative (ties
/// count half).
///
/// # Panics
///
/// As for [`roc_curve`].
///
/// # Examples
///
/// ```
/// use mlr_nn::auc;
///
/// assert_eq!(auc(&[0.9, 0.8, 0.3], &[true, true, false]), 1.0);
/// assert_eq!(auc(&[0.1, 0.9], &[true, false]), 0.0); // inverted scores
/// ```
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty inputs");
    let pos: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&s, _)| s)
        .collect();
    let neg: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &l)| !l)
        .map(|(&s, _)| s)
        .collect();
    assert!(!pos.is_empty() && !neg.is_empty(), "need both classes");
    let mut u = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            u += if p > n {
                1.0
            } else if p == n {
                0.5
            } else {
                0.0
            };
        }
    }
    u / (pos.len() * neg.len()) as f64
}

/// A `k x k` confusion matrix with rows = true class, columns = predicted.
///
/// # Examples
///
/// ```
/// use mlr_nn::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(2, 2);
/// cm.record(2, 1);
/// assert_eq!(cm.count(2, 1), 1);
/// assert_eq!(cm.class_accuracy(2), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty `k x k` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Records one (true, predicted) observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.k && predicted < self.k, "class out of range");
        self.counts[truth * self.k + predicted] += 1;
    }

    /// Records a batch of observations.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range classes.
    pub fn record_all(&mut self, truths: &[usize], predictions: &[usize]) {
        assert_eq!(truths.len(), predictions.len(), "length mismatch");
        for (&t, &p) in truths.iter().zip(predictions) {
            self.record(t, p);
        }
    }

    /// Count in cell `(truth, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        assert!(truth < self.k && predicted < self.k, "class out of range");
        self.counts[truth * self.k + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass over total); 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.k).map(|i| self.counts[i * self.k + i]).sum();
        diag as f64 / total as f64
    }

    /// Recall of one class (diagonal over row sum); 0 for an empty row.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_accuracy(&self, class: usize) -> f64 {
        assert!(class < self.k, "class out of range");
        let row_sum: u64 = (0..self.k).map(|j| self.counts[class * self.k + j]).sum();
        if row_sum == 0 {
            return 0.0;
        }
        self.counts[class * self.k + class] as f64 / row_sum as f64
    }

    /// Merges another matrix of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.k, other.k, "shape mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roc_of_random_scores_has_half_auc() {
        // Deterministic interleaving: scores carry no information.
        let scores: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let labels: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let a = auc(&scores, &labels);
        assert!((a - 0.5).abs() < 0.1, "auc {a}");
    }

    #[test]
    fn roc_curve_is_monotone_and_ends_at_one_one() {
        let scores = [0.9, 0.7, 0.7, 0.4, 0.2, 0.1];
        let labels = [true, true, false, true, false, false];
        let points = roc_curve(&scores, &labels);
        for w in points.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].threshold < w[0].threshold);
        }
        let last = points.last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn auc_handles_ties_as_half() {
        // One positive and one negative share the same score.
        assert_eq!(auc(&[0.5, 0.5], &[true, false]), 0.5);
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn roc_requires_both_classes() {
        let _ = roc_curve(&[0.1, 0.2], &[true, true]);
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
        assert_eq!(accuracy(&[1, 0], &[1, 1]), 0.5);
    }

    #[test]
    fn geometric_mean_matches_paper_f5q() {
        // Table IV "OURS" row.
        let f = geometric_mean(&[0.971, 0.745, 0.923, 0.939, 0.969]);
        assert!((f - 0.9052).abs() < 5e-4, "F5Q = {f}");
    }

    #[test]
    fn geometric_mean_is_below_arithmetic_for_spread_values() {
        let vals = [0.7, 0.9, 0.99];
        let geo = geometric_mean(&vals);
        let ari = vals.iter().sum::<f64>() / 3.0;
        assert!(geo < ari);
    }

    #[test]
    fn confusion_matrix_accounting() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record_all(&[0, 0, 1, 2, 2, 2], &[0, 1, 1, 2, 2, 0]);
        assert_eq!(cm.total(), 6);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((cm.class_accuracy(2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.class_accuracy(1), 1.0);
    }

    #[test]
    fn confusion_matrix_merge() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.record(1, 0);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.count(1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn confusion_matrix_bounds() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn empty_class_row_is_zero() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.class_accuracy(0), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }
}
