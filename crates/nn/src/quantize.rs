//! Fixed-point quantisation of trained networks, mirroring the
//! `ap_fixed<W, I>` types an hls4ml deployment would use.

use serde::{Deserialize, Serialize};

use crate::mlp::argmax_f32;
use crate::{Mlp, TrainData};

/// An `ap_fixed<total_bits, int_bits>`-style signed fixed-point format:
/// `total_bits` overall, of which `int_bits` are integer (including sign).
///
/// # Examples
///
/// ```
/// use mlr_nn::FixedPointFormat;
///
/// let fmt = FixedPointFormat::new(16, 6);
/// assert_eq!(fmt.fraction_bits(), 10);
/// let q = fmt.quantize(0.30078125);
/// assert!((q - 0.30078125).abs() < fmt.resolution());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedPointFormat {
    total_bits: u32,
    int_bits: u32,
}

impl FixedPointFormat {
    /// hls4ml's default dense-layer precision, `ap_fixed<16, 6>`.
    pub const HLS4ML_DEFAULT: FixedPointFormat = FixedPointFormat {
        total_bits: 16,
        int_bits: 6,
    };

    /// Creates a format with `total_bits` overall and `int_bits` integer
    /// bits (sign included).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= int_bits <= total_bits <= 64`.
    pub fn new(total_bits: u32, int_bits: u32) -> Self {
        assert!(
            (1..=total_bits).contains(&int_bits) && total_bits <= 64,
            "invalid fixed point format"
        );
        Self {
            total_bits,
            int_bits,
        }
    }

    /// Total width in bits.
    pub fn total_bits(self) -> u32 {
        self.total_bits
    }

    /// Integer bits (including sign).
    pub fn int_bits(self) -> u32 {
        self.int_bits
    }

    /// Fractional bits.
    pub fn fraction_bits(self) -> u32 {
        self.total_bits - self.int_bits
    }

    /// Smallest representable increment.
    pub fn resolution(self) -> f64 {
        2f64.powi(-(self.fraction_bits() as i32))
    }

    /// Largest representable value.
    pub fn max_value(self) -> f64 {
        2f64.powi(self.int_bits as i32 - 1) - self.resolution()
    }

    /// Rounds `x` to the nearest representable value, saturating at the
    /// format limits.
    pub fn quantize(self, x: f64) -> f64 {
        let scale = 2f64.powi(self.fraction_bits() as i32);
        let min = -(2f64.powi(self.int_bits as i32 - 1));
        (x * scale)
            .round()
            .clamp(min * scale, self.max_value() * scale)
            / scale
    }
}

/// A network whose weights and activations are rounded to a
/// [`FixedPointFormat`], for estimating post-deployment accuracy.
///
/// The quantised model keeps `f32` storage but snaps every weight, bias and
/// intermediate activation to the fixed-point grid — numerically equivalent
/// to integer arithmetic with the same widths, while staying simple.
///
/// # Examples
///
/// ```
/// use mlr_nn::{FixedPointFormat, Mlp, QuantizedMlp};
///
/// let mlp = Mlp::new(&[4, 8, 2], 3);
/// let q = QuantizedMlp::from_mlp(&mlp, FixedPointFormat::HLS4ML_DEFAULT);
/// let x = [0.25, -0.5, 0.125, 0.0];
/// // 16-bit fixed point tracks f32 closely on a freshly initialised net.
/// let dense = mlp.forward(&x);
/// let fixed = q.forward(&x);
/// assert!(dense.iter().zip(&fixed).all(|(a, b)| (a - b).abs() < 0.02));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    sizes: Vec<usize>,
    weights: Vec<Vec<f32>>,
    biases: Vec<Vec<f32>>,
    format: FixedPointFormat,
}

impl QuantizedMlp {
    /// Quantises a trained network's parameters to `format`.
    pub fn from_mlp(mlp: &Mlp, format: FixedPointFormat) -> Self {
        let q = |v: &f32| format.quantize(*v as f64) as f32;
        Self {
            sizes: mlp.sizes().to_vec(),
            weights: mlp
                .weights
                .iter()
                .map(|w| w.iter().map(q).collect())
                .collect(),
            biases: mlp
                .biases
                .iter()
                .map(|b| b.iter().map(q).collect())
                .collect(),
            format,
        }
    }

    /// The fixed-point format in use.
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// Forward pass with activations snapped to the fixed-point grid after
    /// every layer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.sizes[0], "input length mismatch");
        let n_layers = self.weights.len();
        let mut cur: Vec<f32> = x
            .iter()
            .map(|&v| self.format.quantize(v as f64) as f32)
            .collect();
        for l in 0..n_layers {
            let n_in = cur.len();
            let relu = l + 1 < n_layers;
            let mut next = Vec::with_capacity(self.biases[l].len());
            for (o, &bias) in self.biases[l].iter().enumerate() {
                let row = &self.weights[l][o * n_in..(o + 1) * n_in];
                let mut acc = bias as f64;
                for (w, v) in row.iter().zip(&cur) {
                    acc += (*w as f64) * (*v as f64);
                }
                let act = if relu { acc.max(0.0) } else { acc };
                next.push(self.format.quantize(act) as f32);
            }
            cur = next;
        }
        cur
    }

    /// Hard class prediction under quantised inference.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn predict(&self, x: &[f32]) -> usize {
        argmax_f32(&self.forward(x))
    }

    /// Accuracy on a labelled dataset under quantised inference.
    pub fn evaluate(&self, data: &TrainData) -> f64 {
        let correct = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                self.predict(x) == y
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrainConfig;

    #[test]
    fn format_arithmetic() {
        let fmt = FixedPointFormat::new(8, 4);
        assert_eq!(fmt.fraction_bits(), 4);
        assert_eq!(fmt.resolution(), 0.0625);
        assert_eq!(fmt.max_value(), 8.0 - 0.0625);
        // Saturation both ways.
        assert_eq!(fmt.quantize(100.0), fmt.max_value());
        assert_eq!(fmt.quantize(-100.0), -8.0);
        // Exact grid points survive.
        assert_eq!(fmt.quantize(1.25), 1.25);
    }

    #[test]
    #[should_panic(expected = "invalid fixed point format")]
    fn format_rejects_zero_int_bits() {
        let _ = FixedPointFormat::new(8, 0);
    }

    #[test]
    fn quantized_net_tracks_float_net() {
        let mlp = Mlp::new(&[6, 12, 4], 5);
        let q = QuantizedMlp::from_mlp(&mlp, FixedPointFormat::new(18, 6));
        let x: Vec<f32> = (0..6).map(|i| (i as f32 - 3.0) / 4.0).collect();
        let dense = mlp.forward(&x);
        let fixed = q.forward(&x);
        for (a, b) in dense.iter().zip(&fixed) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn coarse_quantization_degrades_gracefully() {
        // Train a small classifier, then crush it to 6 bits: accuracy drops
        // but the 16-bit version matches float closely.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let c = i % 2;
            inputs.push(vec![
                c as f32 + rng.gen::<f32>() * 0.3,
                -(c as f32) + rng.gen::<f32>() * 0.3,
            ]);
            labels.push(c);
        }
        let data = TrainData::new(inputs, labels, 2).unwrap();
        let mut mlp = Mlp::new(&[2, 8, 2], 1);
        mlp.train(
            &data,
            None,
            &TrainConfig {
                epochs: 40,
                learning_rate: 0.02,
                batch_size: 16,
                ..TrainConfig::default()
            },
        );
        let float_acc = mlp.evaluate(&data);
        assert!(float_acc > 0.95);
        let q16 = QuantizedMlp::from_mlp(&mlp, FixedPointFormat::HLS4ML_DEFAULT);
        assert!((q16.evaluate(&data) - float_acc).abs() < 0.03);
    }
}
