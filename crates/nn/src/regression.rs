//! Minibatch Adam training with mean-squared-error loss.
//!
//! Classification heads train on cross-entropy ([`crate::TrainData`] /
//! [`Mlp::train`]); the autoencoder baseline of `mlr-baselines` instead
//! regresses its own input, which needs a vector-target dataset and an MSE
//! backward pass. Everything else (topology, Adam, early stopping) is
//! shared with the classifier path.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::mlp::Mlp;
use crate::train::{Adam, DataError, TrainConfig};

/// A vector-regression dataset: each input row maps to a target row of
/// fixed (possibly different) dimensionality.
///
/// # Examples
///
/// ```
/// use mlr_nn::RegressionData;
///
/// // Identity targets, as an autoencoder would use.
/// let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
/// let data = RegressionData::new(rows.clone(), rows).unwrap();
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.target_dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionData {
    inputs: Vec<Vec<f32>>,
    targets: Vec<Vec<f32>>,
}

impl RegressionData {
    /// Validates and wraps a regression dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] when no samples are given,
    /// [`DataError::LengthMismatch`] when `inputs` and `targets` differ in
    /// length, and [`DataError::Ragged`] when rows of either side differ in
    /// dimensionality.
    pub fn new(inputs: Vec<Vec<f32>>, targets: Vec<Vec<f32>>) -> Result<Self, DataError> {
        if inputs.is_empty() {
            return Err(DataError::Empty);
        }
        if inputs.len() != targets.len() {
            return Err(DataError::LengthMismatch);
        }
        let in_dim = inputs[0].len();
        let out_dim = targets[0].len();
        if inputs.iter().any(|x| x.len() != in_dim) || targets.iter().any(|t| t.len() != out_dim) {
            return Err(DataError::Ragged);
        }
        Ok(Self { inputs, targets })
    }

    /// Autoencoder construction: every row is its own target.
    ///
    /// # Errors
    ///
    /// As for [`RegressionData::new`].
    pub fn identity(inputs: Vec<Vec<f32>>) -> Result<Self, DataError> {
        let targets = inputs.clone();
        Self::new(inputs, targets)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when there are no samples (unreachable after construction).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.inputs[0].len()
    }

    /// Target dimensionality.
    pub fn target_dim(&self) -> usize {
        self.targets[0].len()
    }

    /// Borrows sample `i` as `(input, target)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> (&[f32], &[f32]) {
        (&self.inputs[i], &self.targets[i])
    }

    /// Borrows all inputs.
    pub fn inputs(&self) -> &[Vec<f32>] {
        &self.inputs
    }
}

/// Per-epoch telemetry returned by [`Mlp::train_regression`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegressionReport {
    /// Mean squared error per training epoch.
    pub train_losses: Vec<f64>,
    /// Validation MSE per epoch (empty without a validation set).
    pub val_losses: Vec<f64>,
    /// Epoch whose weights were kept (lowest validation MSE, or the last
    /// epoch without a validation set).
    pub best_epoch: usize,
}

impl Mlp {
    /// Trains the network with minibatch Adam on mean-squared error.
    ///
    /// The output layer stays linear (as in classification the softmax is
    /// external, here there is none), so the network can regress arbitrary
    /// real targets. With a validation set, the weights with the lowest
    /// validation MSE are restored at the end and
    /// [`TrainConfig::early_stop_patience`] can cut training short.
    /// [`TrainConfig::class_weights`] is ignored — there are no classes.
    ///
    /// # Panics
    ///
    /// Panics if the data dimensions do not match the network topology or
    /// `batch_size == 0`.
    pub fn train_regression(
        &mut self,
        data: &RegressionData,
        val: Option<&RegressionData>,
        config: &TrainConfig,
    ) -> RegressionReport {
        assert_eq!(data.input_dim(), self.input_len(), "input width mismatch");
        assert_eq!(
            data.target_dim(),
            self.output_len(),
            "target width mismatch"
        );
        assert!(config.batch_size > 0, "batch_size must be positive");

        let mut adam = Adam::new(self);
        let mut grad_w: Vec<Vec<f32>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut grad_b: Vec<Vec<f32>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut report = RegressionReport::default();
        let mut best: Option<crate::train::Checkpoint> = None;
        let mut stale = 0usize;

        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for batch in order.chunks(config.batch_size) {
                grad_w.iter_mut().for_each(|g| g.fill(0.0));
                grad_b.iter_mut().for_each(|g| g.fill(0.0));
                for &i in batch {
                    let (x, t) = data.sample(i);
                    epoch_loss += self.backprop_mse(x, t, &mut grad_w, &mut grad_b);
                }
                let scale = 1.0 / batch.len() as f32;
                adam.t += 1;
                let bc1 = 1.0 - config.beta1.powi(adam.t);
                let bc2 = 1.0 - config.beta2.powi(adam.t);
                for l in 0..self.weights.len() {
                    grad_w[l].iter_mut().for_each(|g| *g *= scale);
                    grad_b[l].iter_mut().for_each(|g| *g *= scale);
                    Adam::step_inplace(
                        &mut self.weights[l],
                        &grad_w[l],
                        &mut adam.m_w[l],
                        &mut adam.v_w[l],
                        config.learning_rate,
                        config.beta1,
                        config.beta2,
                        bc1,
                        bc2,
                        config.weight_decay,
                    );
                    Adam::step_inplace(
                        &mut self.biases[l],
                        &grad_b[l],
                        &mut adam.m_b[l],
                        &mut adam.v_b[l],
                        config.learning_rate,
                        config.beta1,
                        config.beta2,
                        bc1,
                        bc2,
                        0.0,
                    );
                }
            }
            report.train_losses.push(epoch_loss / data.len() as f64);

            if let Some(val) = val {
                let loss = self.mse(val);
                report.val_losses.push(loss);
                if best.as_ref().is_none_or(|(b, _, _)| loss < *b) {
                    best = Some((loss, self.weights.clone(), self.biases.clone()));
                    report.best_epoch = epoch;
                    stale = 0;
                } else {
                    stale += 1;
                    if config.early_stop_patience.is_some_and(|p| stale >= p) {
                        break;
                    }
                }
            } else {
                report.best_epoch = epoch;
            }
        }

        if let Some((_, w, b)) = best {
            self.weights = w;
            self.biases = b;
        }
        report
    }

    /// Mean squared error of the network over a regression dataset
    /// (averaged over samples and output units).
    ///
    /// # Panics
    ///
    /// Panics if the data dimensions do not match the network topology.
    pub fn mse(&self, data: &RegressionData) -> f64 {
        let mut total = 0.0f64;
        for i in 0..data.len() {
            let (x, t) = data.sample(i);
            let y = self.forward(x);
            total += y
                .iter()
                .zip(t)
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>();
        }
        total / (data.len() * data.target_dim()) as f64
    }

    /// One-sample MSE backprop accumulating gradients; returns the sample's
    /// mean squared error over output units.
    ///
    /// Loss is `L = (1/k) Σ (ŷ − t)²` so the output delta is
    /// `2 (ŷ − t) / k`, keeping gradient magnitudes comparable across
    /// output widths.
    fn backprop_mse(
        &self,
        x: &[f32],
        target: &[f32],
        grad_w: &mut [Vec<f32>],
        grad_b: &mut [Vec<f32>],
    ) -> f64 {
        let acts = self.forward_cached(x);
        let n_layers = self.weights.len();
        let output = &acts[n_layers];
        let k = output.len() as f32;

        let mut loss = 0.0f64;
        let mut delta: Vec<f32> = output
            .iter()
            .zip(target)
            .map(|(&y, &t)| {
                let e = y - t;
                loss += (e as f64).powi(2);
                2.0 * e / k
            })
            .collect();
        loss /= k as f64;

        for l in (0..n_layers).rev() {
            let a_in = &acts[l];
            let n_in = a_in.len();
            for (o, &d) in delta.iter().enumerate() {
                grad_b[l][o] += d;
                if d != 0.0 {
                    let g_row = &mut grad_w[l][o * n_in..(o + 1) * n_in];
                    for (g, &a) in g_row.iter_mut().zip(a_in) {
                        *g += d * a;
                    }
                }
            }
            if l == 0 {
                break;
            }
            let mut prev = vec![0.0f32; n_in];
            for (o, &d) in delta.iter().enumerate() {
                if d != 0.0 {
                    let row = &self.weights[l][o * n_in..(o + 1) * n_in];
                    for (p, &w) in prev.iter_mut().zip(row) {
                        *p += d * w;
                    }
                }
            }
            for (p, &a) in prev.iter_mut().zip(a_in) {
                if a <= 0.0 {
                    *p = 0.0;
                }
            }
            delta = prev;
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(
            RegressionData::new(vec![], vec![]).unwrap_err(),
            DataError::Empty
        );
        assert_eq!(
            RegressionData::new(vec![vec![1.0]], vec![]).unwrap_err(),
            DataError::LengthMismatch
        );
        assert_eq!(
            RegressionData::new(vec![vec![1.0], vec![1.0, 2.0]], vec![vec![0.0], vec![0.0]])
                .unwrap_err(),
            DataError::Ragged
        );
        let ok = RegressionData::identity(vec![vec![1.0, 2.0]]).unwrap();
        assert_eq!(ok.input_dim(), 2);
        assert_eq!(ok.target_dim(), 2);
    }

    #[test]
    fn learns_a_linear_map() {
        // y = [x0 + x1, x0 - x1] is exactly representable; MSE must go
        // essentially to zero.
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for i in 0..50 {
            let x0 = (i as f32) / 25.0 - 1.0;
            let x1 = ((i * 7) % 50) as f32 / 25.0 - 1.0;
            inputs.push(vec![x0, x1]);
            targets.push(vec![x0 + x1, x0 - x1]);
        }
        let data = RegressionData::new(inputs, targets).unwrap();
        let mut mlp = Mlp::new(&[2, 8, 2], 3);
        let config = TrainConfig {
            epochs: 300,
            learning_rate: 0.01,
            batch_size: 10,
            early_stop_patience: None,
            ..TrainConfig::default()
        };
        let report = mlp.train_regression(&data, None, &config);
        assert!(report.train_losses.len() == 300);
        assert!(
            mlp.mse(&data) < 1e-3,
            "final mse {} should be tiny",
            mlp.mse(&data)
        );
        // Loss decreased over training.
        assert!(report.train_losses[299] < report.train_losses[0] / 10.0);
    }

    #[test]
    fn autoencoder_compresses_correlated_data() {
        // Inputs live on a 1-D manifold inside R^4; a width-1 bottleneck
        // reconstructs them much better than predicting the mean.
        let mut rows = Vec::new();
        for i in 0..80 {
            let t = (i as f32) / 40.0 - 1.0;
            rows.push(vec![t, 2.0 * t, -t, 0.5 * t]);
        }
        let data = RegressionData::identity(rows).unwrap();
        let mut ae = Mlp::new(&[4, 1, 4], 7);
        let config = TrainConfig {
            epochs: 400,
            learning_rate: 0.02,
            batch_size: 16,
            early_stop_patience: None,
            ..TrainConfig::default()
        };
        ae.train_regression(&data, None, &config);
        // Mean-prediction MSE: variance of each channel. For t uniform in
        // [-1,1): var(t) = 1/3 scaled per channel; mean over channels.
        let mse = ae.mse(&data);
        assert!(mse < 0.05, "bottleneck mse {mse}");
    }

    #[test]
    fn validation_early_stopping_restores_best() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![(i as f32) / 10.0 - 1.0]).collect();
        let data = RegressionData::identity(rows.clone()).unwrap();
        let val = RegressionData::identity(rows).unwrap();
        let mut mlp = Mlp::new(&[1, 4, 1], 1);
        let config = TrainConfig {
            epochs: 50,
            learning_rate: 0.01,
            batch_size: 4,
            early_stop_patience: Some(5),
            ..TrainConfig::default()
        };
        let report = mlp.train_regression(&data, Some(&val), &config);
        assert!(!report.val_losses.is_empty());
        let best_val = report
            .val_losses
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // The restored weights achieve the best recorded validation loss.
        assert!((mlp.mse(&val) - best_val).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "target width mismatch")]
    fn target_width_is_checked() {
        let data = RegressionData::new(vec![vec![0.0]], vec![vec![0.0, 1.0]]).unwrap();
        let mut mlp = Mlp::new(&[1, 1], 0);
        let _ = mlp.train_regression(&data, None, &TrainConfig::default());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index drives in-place weight nudges
    fn mse_gradient_matches_finite_difference() {
        let mut mlp = Mlp::new(&[2, 3, 2], 5);
        let x = [0.3f32, -0.8];
        let t = [0.5f32, 0.25];
        let mut grad_w: Vec<Vec<f32>> = mlp.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut grad_b: Vec<Vec<f32>> = mlp.biases.iter().map(|b| vec![0.0; b.len()]).collect();
        mlp.backprop_mse(&x, &t, &mut grad_w, &mut grad_b);

        let loss_of = |mlp: &Mlp| {
            let y = mlp.forward(&x);
            y.iter()
                .zip(&t)
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / t.len() as f64
        };
        let eps = 1e-3f32;
        for l in 0..mlp.weights.len() {
            for i in 0..mlp.weights[l].len() {
                let orig = mlp.weights[l][i];
                mlp.weights[l][i] = orig + eps;
                let lp = loss_of(&mlp);
                mlp.weights[l][i] = orig - eps;
                let lm = loss_of(&mlp);
                mlp.weights[l][i] = orig;
                let numeric = (lp - lm) / (2.0 * eps as f64);
                let analytic = grad_w[l][i] as f64;
                assert!(
                    (numeric - analytic).abs() < 1e-3 * (1.0 + analytic.abs()),
                    "layer {l} weight {i}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
