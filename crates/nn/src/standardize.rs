//! Per-feature standardisation (zero mean, unit variance).

use serde::{Deserialize, Serialize};

/// A fitted per-feature affine transform `x → (x − mean) / std`, estimated
/// on training data and then applied identically at inference time.
///
/// Constant features (zero variance) pass through shifted but unscaled.
///
/// # Examples
///
/// ```
/// use mlr_nn::Standardizer;
///
/// let train = vec![vec![0.0, 10.0], vec![2.0, 10.0]];
/// let s = Standardizer::fit(&train).unwrap();
/// let z = s.transform(&[1.0, 10.0]);
/// assert!(z[0].abs() < 1e-9 && z[1].abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Estimates means and standard deviations from training rows.
    ///
    /// Returns `None` for empty input or ragged rows.
    pub fn fit(rows: &[Vec<f64>]) -> Option<Self> {
        let dim = rows.first()?.len();
        if rows.iter().any(|r| r.len() != dim) {
            return None;
        }
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for r in rows {
            for (m, &v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut vars = vec![0.0; dim];
        for r in rows {
            for ((v, &x), &m) in vars.iter_mut().zip(r).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .iter()
            .map(|&v| {
                let s = (v / n.max(1.0)).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Some(Self { means, stds })
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// The fitted per-feature means — the `μ` of `x → (x − μ)/σ`, exposed
    /// so an inference-plan compiler can fold the transform into
    /// downstream weights.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The fitted per-feature standard deviations (`σ`, with zero-variance
    /// features pinned to 1.0 — see [`Standardizer::fit`]).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardises one row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimensionality.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Standardises one row directly into `f32` network precision.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimensionality.
    pub fn transform_f32(&self, x: &[f64]) -> Vec<f32> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| ((v - m) / s) as f32)
            .collect()
    }

    /// Standardises a batch of rows.
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from the fitted dimensionality.
    pub fn transform_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Standardises a batch of rows directly into `f32` network precision
    /// — the standardise-once step of the batched inference paths. Each
    /// row is transformed exactly as [`Standardizer::transform_f32`]
    /// would, so batched and per-shot inference see identical inputs.
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from the fitted dimensionality.
    pub fn transform_batch_f32(&self, rows: &[Vec<f64>]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.transform_f32(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let rows = vec![vec![1.0, -4.0], vec![3.0, 0.0], vec![5.0, 4.0]];
        let s = Standardizer::fit(&rows).unwrap();
        let z = s.transform_batch(&rows);
        for d in 0..2 {
            let mean: f64 = z.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = z.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_features_pass_through() {
        let rows = vec![vec![7.0], vec![7.0]];
        let s = Standardizer::fit(&rows).unwrap();
        assert_eq!(s.transform(&[7.0]), vec![0.0]);
        assert_eq!(s.transform(&[8.0]), vec![1.0]);
    }

    #[test]
    fn rejects_ragged_or_empty() {
        assert!(Standardizer::fit(&[]).is_none());
        assert!(Standardizer::fit(&[vec![1.0], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn f32_transform_matches_f64() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        let s = Standardizer::fit(&rows).unwrap();
        let x = [1.5, 2.5];
        let a = s.transform(&x);
        let b = s.transform_f32(&x);
        for (va, vb) in a.iter().zip(&b) {
            assert!((*va as f32 - *vb).abs() < 1e-6);
        }
    }
}
