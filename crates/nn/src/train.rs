//! Minibatch Adam training with cross-entropy loss.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::mlp::{softmax, Mlp};
use serde::{Deserialize, Serialize};

/// A labelled classification dataset in network precision.
///
/// # Examples
///
/// ```
/// use mlr_nn::TrainData;
///
/// let data = TrainData::new(vec![vec![0.0], vec![1.0]], vec![0, 1], 2).unwrap();
/// assert_eq!(data.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainData {
    inputs: Vec<Vec<f32>>,
    labels: Vec<usize>,
    n_classes: usize,
}

/// Why a [`TrainData`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataError {
    /// No samples were provided.
    Empty,
    /// `inputs` and `labels` lengths differ.
    LengthMismatch,
    /// Input rows have inconsistent dimensionality.
    Ragged,
    /// A label is `>= n_classes`.
    LabelOutOfRange,
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Empty => write!(f, "dataset is empty"),
            DataError::LengthMismatch => write!(f, "inputs and labels differ in length"),
            DataError::Ragged => write!(f, "input rows differ in dimensionality"),
            DataError::LabelOutOfRange => write!(f, "label exceeds n_classes"),
        }
    }
}

impl std::error::Error for DataError {}

impl TrainData {
    /// Validates and wraps a dataset.
    ///
    /// # Errors
    ///
    /// Returns a [`DataError`] describing the first violated invariant.
    pub fn new(
        inputs: Vec<Vec<f32>>,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Result<Self, DataError> {
        if inputs.is_empty() {
            return Err(DataError::Empty);
        }
        if inputs.len() != labels.len() {
            return Err(DataError::LengthMismatch);
        }
        let dim = inputs[0].len();
        if inputs.iter().any(|x| x.len() != dim) {
            return Err(DataError::Ragged);
        }
        if labels.iter().any(|&y| y >= n_classes) {
            return Err(DataError::LabelOutOfRange);
        }
        Ok(Self {
            inputs,
            labels,
            n_classes,
        })
    }

    /// Converts `f64` feature vectors (the DSP-side precision) into network
    /// precision and validates.
    ///
    /// # Errors
    ///
    /// As for [`TrainData::new`].
    pub fn from_f64(
        inputs: &[Vec<f64>],
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Result<Self, DataError> {
        let converted = inputs
            .iter()
            .map(|x| x.iter().map(|&v| v as f32).collect())
            .collect();
        Self::new(converted, labels, n_classes)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when there are no samples (unreachable after construction).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.inputs[0].len()
    }

    /// Number of classes in the label alphabet.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Borrows sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> (&[f32], usize) {
        (&self.inputs[i], self.labels[i])
    }

    /// Borrows all inputs.
    pub fn inputs(&self) -> &[Vec<f32>] {
        &self.inputs
    }

    /// Borrows all labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

/// Hyper-parameters for [`Mlp::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam step size.
    pub learning_rate: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
    /// Adam first-moment decay.
    pub beta1: f32,
    /// Adam second-moment decay.
    pub beta2: f32,
    /// Shuffling/initialisation seed.
    pub seed: u64,
    /// Stop after this many epochs without validation improvement
    /// (requires a validation set); `None` disables early stopping.
    pub early_stop_patience: Option<usize>,
    /// Optional per-class loss weights (length = number of classes) for
    /// imbalanced data, e.g. rare naturally-leaked states. `None` weights
    /// every class equally.
    pub class_weights: Option<Vec<f32>>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 0.0,
            beta1: 0.9,
            beta2: 0.999,
            seed: 0,
            early_stop_patience: Some(6),
            class_weights: None,
        }
    }
}

/// Inverse-frequency class weights, normalised to mean 1 over observed
/// classes and capped at `cap` (unobserved classes get weight 1).
///
/// # Panics
///
/// Panics if `labels` is empty, a label exceeds `n_classes`, or `cap <= 0`.
///
/// # Examples
///
/// ```
/// use mlr_nn::inverse_frequency_weights;
///
/// let w = inverse_frequency_weights(&[0, 0, 0, 1], 2, 10.0);
/// assert!(w[1] > w[0]);
/// ```
pub fn inverse_frequency_weights(labels: &[usize], n_classes: usize, cap: f32) -> Vec<f32> {
    assert!(!labels.is_empty(), "no labels");
    assert!(cap > 0.0, "cap must be positive");
    let mut counts = vec![0usize; n_classes];
    for &y in labels {
        assert!(y < n_classes, "label out of range");
        counts[y] += 1;
    }
    let observed = counts.iter().filter(|&&c| c > 0).count().max(1);
    let mean_count = labels.len() as f32 / observed as f32;
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                1.0
            } else {
                (mean_count / c as f32).min(cap)
            }
        })
        .collect()
}

/// Per-epoch telemetry returned by [`Mlp::train`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Mean cross-entropy per epoch.
    pub train_losses: Vec<f64>,
    /// Validation accuracy per epoch (empty without a validation set).
    pub val_accuracies: Vec<f64>,
    /// Epoch whose weights were kept (best validation accuracy, or the last
    /// epoch without a validation set).
    pub best_epoch: usize,
}

/// Best-so-far snapshot kept by early stopping: validation score plus a
/// copy of the weights and biases that achieved it.
pub(crate) type Checkpoint = (f64, Vec<Vec<f32>>, Vec<Vec<f32>>);

/// Adam state paralleling the network parameters. Shared with the MSE
/// trainer in [`crate::regression`].
pub(crate) struct Adam {
    pub(crate) m_w: Vec<Vec<f32>>,
    pub(crate) v_w: Vec<Vec<f32>>,
    pub(crate) m_b: Vec<Vec<f32>>,
    pub(crate) v_b: Vec<Vec<f32>>,
    pub(crate) t: i32,
}

impl Adam {
    pub(crate) fn new(mlp: &Mlp) -> Self {
        Self {
            m_w: mlp.weights.iter().map(|w| vec![0.0; w.len()]).collect(),
            v_w: mlp.weights.iter().map(|w| vec![0.0; w.len()]).collect(),
            m_b: mlp.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
            v_b: mlp.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
            t: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step_inplace(
        param: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        bc1: f32,
        bc2: f32,
        weight_decay: f32,
    ) {
        const EPS: f32 = 1e-8;
        for i in 0..param.len() {
            let g = grad[i] + weight_decay * param[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            param[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

impl Mlp {
    /// Trains the network with minibatch Adam on softmax cross-entropy.
    ///
    /// With a validation set, the weights with the best validation accuracy
    /// are restored at the end and `early_stop_patience` can cut training
    /// short; without one, the final weights are kept.
    ///
    /// # Panics
    ///
    /// Panics if the data dimensions do not match the network topology or
    /// `batch_size == 0`.
    pub fn train(
        &mut self,
        data: &TrainData,
        val: Option<&TrainData>,
        config: &TrainConfig,
    ) -> TrainReport {
        assert_eq!(data.input_dim(), self.input_len(), "input width mismatch");
        assert!(
            data.n_classes() <= self.output_len(),
            "more classes than output units"
        );
        assert!(config.batch_size > 0, "batch_size must be positive");

        let mut adam = Adam::new(self);
        let mut grad_w: Vec<Vec<f32>> = self.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut grad_b: Vec<Vec<f32>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut report = TrainReport::default();
        let mut best: Option<Checkpoint> = None;
        let mut stale = 0usize;

        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for batch in order.chunks(config.batch_size) {
                grad_w.iter_mut().for_each(|g| g.fill(0.0));
                grad_b.iter_mut().for_each(|g| g.fill(0.0));
                for &i in batch {
                    let (x, y) = data.sample(i);
                    let w = config
                        .class_weights
                        .as_ref()
                        .map_or(1.0, |cw| cw.get(y).copied().unwrap_or(1.0));
                    epoch_loss += self.backprop(x, y, w, &mut grad_w, &mut grad_b);
                }
                let scale = 1.0 / batch.len() as f32;
                adam.t += 1;
                let bc1 = 1.0 - config.beta1.powi(adam.t);
                let bc2 = 1.0 - config.beta2.powi(adam.t);
                for l in 0..self.weights.len() {
                    grad_w[l].iter_mut().for_each(|g| *g *= scale);
                    grad_b[l].iter_mut().for_each(|g| *g *= scale);
                    Adam::step_inplace(
                        &mut self.weights[l],
                        &grad_w[l],
                        &mut adam.m_w[l],
                        &mut adam.v_w[l],
                        config.learning_rate,
                        config.beta1,
                        config.beta2,
                        bc1,
                        bc2,
                        config.weight_decay,
                    );
                    Adam::step_inplace(
                        &mut self.biases[l],
                        &grad_b[l],
                        &mut adam.m_b[l],
                        &mut adam.v_b[l],
                        config.learning_rate,
                        config.beta1,
                        config.beta2,
                        bc1,
                        bc2,
                        0.0,
                    );
                }
            }
            report.train_losses.push(epoch_loss / data.len() as f64);

            if let Some(val) = val {
                // With class weights the caller cares about balanced
                // accuracy (rare classes matter); select the best epoch on
                // the same criterion.
                let acc = if config.class_weights.is_some() {
                    self.evaluate_balanced(val)
                } else {
                    self.evaluate(val)
                };
                report.val_accuracies.push(acc);
                if best.as_ref().is_none_or(|(b, _, _)| acc > *b) {
                    best = Some((acc, self.weights.clone(), self.biases.clone()));
                    report.best_epoch = epoch;
                    stale = 0;
                } else {
                    stale += 1;
                    if config.early_stop_patience.is_some_and(|p| stale >= p) {
                        break;
                    }
                }
            } else {
                report.best_epoch = epoch;
            }
        }

        if let Some((_, w, b)) = best {
            self.weights = w;
            self.biases = b;
        }
        report
    }

    /// Accuracy of the network on a labelled dataset.
    ///
    /// # Panics
    ///
    /// Panics if the data dimensionality differs from the input width.
    pub fn evaluate(&self, data: &TrainData) -> f64 {
        let mut scratch = crate::ForwardScratch::default();
        let correct = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                self.predict_scratch(x, &mut scratch) == y
            })
            .count();
        correct as f64 / data.len() as f64
    }

    /// Balanced accuracy: per-class recall averaged over the classes present
    /// in `data` — the right selection metric under heavy class imbalance.
    ///
    /// # Panics
    ///
    /// Panics if the data dimensionality differs from the input width.
    pub fn evaluate_balanced(&self, data: &TrainData) -> f64 {
        let k = data.n_classes();
        let mut hits = vec![0usize; k];
        let mut counts = vec![0usize; k];
        let mut scratch = crate::ForwardScratch::default();
        for i in 0..data.len() {
            let (x, y) = data.sample(i);
            counts[y] += 1;
            if self.predict_scratch(x, &mut scratch) == y {
                hits[y] += 1;
            }
        }
        let present: Vec<f64> = (0..k)
            .filter(|&c| counts[c] > 0)
            .map(|c| hits[c] as f64 / counts[c] as f64)
            .collect();
        present.iter().sum::<f64>() / present.len().max(1) as f64
    }

    /// One-sample backprop accumulating gradients; returns the sample's
    /// (weighted) cross-entropy loss.
    fn backprop(
        &self,
        x: &[f32],
        y: usize,
        sample_weight: f32,
        grad_w: &mut [Vec<f32>],
        grad_b: &mut [Vec<f32>],
    ) -> f64 {
        let acts = self.forward_cached(x);
        let n_layers = self.weights.len();
        let logits = &acts[n_layers];
        let probs = softmax(logits);
        let loss = -(probs[y].max(1e-12) as f64).ln() * sample_weight as f64;

        // Output delta: softmax - onehot, scaled by the class weight.
        let mut delta: Vec<f32> = probs;
        delta[y] -= 1.0;
        if sample_weight != 1.0 {
            delta.iter_mut().for_each(|d| *d *= sample_weight);
        }

        for l in (0..n_layers).rev() {
            let a_in = &acts[l];
            let n_in = a_in.len();
            // Accumulate weight/bias gradients.
            for (o, &d) in delta.iter().enumerate() {
                grad_b[l][o] += d;
                if d != 0.0 {
                    let g_row = &mut grad_w[l][o * n_in..(o + 1) * n_in];
                    for (g, &a) in g_row.iter_mut().zip(a_in) {
                        *g += d * a;
                    }
                }
            }
            if l == 0 {
                break;
            }
            // delta_prev = W^T delta, masked by ReLU' (post-activation > 0).
            let mut prev = vec![0.0f32; n_in];
            for (o, &d) in delta.iter().enumerate() {
                if d != 0.0 {
                    let row = &self.weights[l][o * n_in..(o + 1) * n_in];
                    for (p, &w) in prev.iter_mut().zip(row) {
                        *p += d * w;
                    }
                }
            }
            for (p, &a) in prev.iter_mut().zip(a_in) {
                if a <= 0.0 {
                    *p = 0.0;
                }
            }
            delta = prev;
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(n_per: usize, seed: u64) -> TrainData {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        let centers = [[0.0f32, 0.0], [3.0, 0.0], [0.0, 3.0]];
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..n_per {
                inputs.push(vec![
                    center[0] + rng.gen::<f32>() - 0.5,
                    center[1] + rng.gen::<f32>() - 0.5,
                ]);
                labels.push(c);
            }
        }
        TrainData::new(inputs, labels, 3).unwrap()
    }

    #[test]
    fn data_validation() {
        assert_eq!(
            TrainData::new(vec![], vec![], 2).unwrap_err(),
            DataError::Empty
        );
        assert_eq!(
            TrainData::new(vec![vec![0.0]], vec![0, 1], 2).unwrap_err(),
            DataError::LengthMismatch
        );
        assert_eq!(
            TrainData::new(vec![vec![0.0], vec![0.0, 1.0]], vec![0, 1], 2).unwrap_err(),
            DataError::Ragged
        );
        assert_eq!(
            TrainData::new(vec![vec![0.0]], vec![5], 2).unwrap_err(),
            DataError::LabelOutOfRange
        );
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let train = blob_data(60, 1);
        let test = blob_data(30, 2);
        let mut mlp = Mlp::new(&[2, 8, 3], 0);
        let config = TrainConfig {
            epochs: 60,
            learning_rate: 0.01,
            batch_size: 16,
            ..TrainConfig::default()
        };
        mlp.train(&train, None, &config);
        assert!(mlp.evaluate(&test) > 0.97);
    }

    #[test]
    fn loss_decreases() {
        let train = blob_data(40, 3);
        let mut mlp = Mlp::new(&[2, 6, 3], 1);
        let report = mlp.train(
            &train,
            None,
            &TrainConfig {
                epochs: 20,
                learning_rate: 0.01,
                batch_size: 8,
                ..TrainConfig::default()
            },
        );
        let first = report.train_losses.first().copied().unwrap();
        let last = report.train_losses.last().copied().unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let train = blob_data(40, 4);
        let val = blob_data(20, 5);
        let mut mlp = Mlp::new(&[2, 6, 3], 2);
        let report = mlp.train(
            &train,
            Some(&val),
            &TrainConfig {
                epochs: 100,
                learning_rate: 0.02,
                batch_size: 8,
                early_stop_patience: Some(3),
                ..TrainConfig::default()
            },
        );
        assert!(!report.val_accuracies.is_empty());
        let best_acc = report.val_accuracies[report.best_epoch];
        // Restored weights must reproduce the best recorded accuracy.
        assert!((mlp.evaluate(&val) - best_acc).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let train = blob_data(30, 6);
        let config = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        let mut a = Mlp::new(&[2, 4, 3], 9);
        let ra = a.train(&train, None, &config);
        let mut b = Mlp::new(&[2, 4, 3], 9);
        let rb = b.train(&train, None, &config);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index drives in-place weight nudges
    fn gradient_matches_finite_difference() {
        // Numerical check of backprop on a tiny network.
        let mut mlp = Mlp::new(&[2, 3, 2], 11);
        let x = [0.7f32, -0.4];
        let y = 1usize;
        let mut grad_w: Vec<Vec<f32>> = mlp.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut grad_b: Vec<Vec<f32>> = mlp.biases.iter().map(|b| vec![0.0; b.len()]).collect();
        mlp.backprop(&x, y, 1.0, &mut grad_w, &mut grad_b);

        let loss_of = |mlp: &Mlp| {
            let p = mlp.predict_proba(&x);
            -(p[y] as f64).ln()
        };
        let eps = 1e-3f32;
        for l in 0..mlp.weights.len() {
            for i in (0..mlp.weights[l].len()).step_by(3) {
                let orig = mlp.weights[l][i];
                mlp.weights[l][i] = orig + eps;
                let lp = loss_of(&mlp);
                mlp.weights[l][i] = orig - eps;
                let lm = loss_of(&mlp);
                mlp.weights[l][i] = orig;
                let numeric = (lp - lm) / (2.0 * eps as f64);
                let analytic = grad_w[l][i] as f64;
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "layer {l} weight {i}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}
