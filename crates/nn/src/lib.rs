//! Feed-forward neural networks sized for readout discrimination, with
//! cross-entropy/Adam training, classification metrics, and fixed-point
//! quantisation for hardware-resource estimation.
//!
//! All three learned discriminators in the paper are plain multi-layer
//! perceptrons with ReLU hidden activations and a softmax output:
//!
//! * the raw-trace FNN baseline `[1000, 500, 250, 243]` (≈686 k weights);
//! * HERQULES' joint classifier `[30, 60, 120, 243]`;
//! * the proposed per-qubit heads `[45, 22, 11, 3]` (≈1.3 k weights each).
//!
//! Weights and activations are `f32`: it is faster on the host and it is
//! the shape of the arithmetic the FPGA deployment quantises from.
//!
//! # Examples
//!
//! ```
//! use mlr_nn::{Mlp, TrainConfig, TrainData};
//!
//! // Learn XOR — a sanity check that the trainer handles non-linearity.
//! let x = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
//! let y = vec![0, 1, 1, 0];
//! let data = TrainData::new(x, y, 2).unwrap();
//! let mut mlp = Mlp::new(&[2, 8, 2], 42);
//! let config = TrainConfig { epochs: 400, learning_rate: 0.02, batch_size: 4, ..TrainConfig::default() };
//! mlp.train(&data, None, &config);
//! assert_eq!(mlp.predict(&[1.0, 0.0]), 1);
//! assert_eq!(mlp.predict(&[1.0, 1.0]), 0);
//! ```

#![deny(missing_docs)]

mod intmlp;
mod metrics;
mod mlp;
mod quantize;
mod regression;
mod simd;
mod standardize;
mod train;

pub use intmlp::IntMlp;
pub use metrics::{accuracy, auc, geometric_mean, roc_curve, ConfusionMatrix, RocPoint};
pub use mlp::{ForwardScratch, Mlp};
pub use quantize::{FixedPointFormat, QuantizedMlp};
pub use regression::{RegressionData, RegressionReport};
pub use simd::{dot_f32, dot_f32_scalar, fma_active, fma_f32, fma_f32_scalar, simd_active};
#[cfg(target_arch = "x86_64")]
pub use simd::{dot_f32_avx2, fma_f32_avx2};
pub use standardize::Standardizer;
pub use train::{inverse_frequency_weights, DataError, TrainConfig, TrainData, TrainReport};
