//! The multi-layer perceptron: topology, initialisation, inference.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// A dense feed-forward network with ReLU hidden layers and linear output
/// (softmax is applied by the loss / [`Mlp::predict_proba`]).
///
/// Weights for layer `l` are stored row-major as `[out][in]`, biases as
/// `[out]`. See the crate docs for the three paper topologies.
///
/// # Examples
///
/// ```
/// use mlr_nn::Mlp;
///
/// let mlp = Mlp::new(&[45, 22, 11, 3], 0);
/// assert_eq!(mlp.param_count(), 45 * 22 + 22 * 11 + 11 * 3 + 22 + 11 + 3);
/// assert_eq!(mlp.forward(&vec![0.0; 45]).len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    sizes: Vec<usize>,
    /// `weights[l][o * sizes[l] + i]` connects input `i` to output `o`.
    pub(crate) weights: Vec<Vec<f32>>,
    pub(crate) biases: Vec<Vec<f32>>,
}

impl Mlp {
    /// Creates a network with He-initialised weights and zero biases.
    ///
    /// `sizes` lists the layer widths from input to output, e.g.
    /// `[1000, 500, 250, 243]` for the paper's FNN baseline.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(sizes.len() - 1);
        let mut biases = Vec::with_capacity(sizes.len() - 1);
        for l in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
            // He initialisation for ReLU units.
            let std = (2.0 / fan_in as f64).sqrt();
            let dist = Normal::new(0.0, std).expect("positive std");
            weights.push(
                (0..fan_in * fan_out)
                    .map(|_| dist.sample(&mut rng) as f32)
                    .collect(),
            );
            biases.push(vec![0.0f32; fan_out]);
        }
        Self {
            sizes: sizes.to_vec(),
            weights,
            biases,
        }
    }

    /// Layer widths from input to output.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input dimensionality.
    pub fn input_len(&self) -> usize {
        self.sizes[0]
    }

    /// Number of output classes.
    pub fn output_len(&self) -> usize {
        *self.sizes.last().expect("nonempty sizes")
    }

    /// Number of dense layers (`sizes.len() − 1`).
    pub fn n_layers(&self) -> usize {
        self.weights.len()
    }

    /// Layer `l`'s row-major weight matrix (`[out × in]`, flattened as
    /// `w[o * sizes[l] + i]`) — read access for the inference-plan
    /// compiler, which folds affine pre-processing into these weights.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_weights(&self, l: usize) -> &[f32] {
        &self.weights[l]
    }

    /// Layer `l`'s bias vector (`[out]`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_biases(&self, l: usize) -> &[f32] {
        &self.biases[l]
    }

    /// Total number of trainable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weights.iter().map(Vec::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Number of weight parameters only — the figure the paper quotes when
    /// comparing model sizes (686 k for the FNN).
    pub fn weight_count(&self) -> usize {
        self.weights.iter().map(Vec::len).sum()
    }

    /// Dense layer primitive: `out = W x + b`, ReLU if `relu`. Scored by
    /// the workspace's shared explicit-SIMD dot ([`crate::dot_f32`]) — the
    /// same kernel the compiled inference plans run on, so layered
    /// reference paths, training forward passes, and fused plans share one
    /// arithmetic.
    #[inline]
    fn layer_forward(w: &[f32], b: &[f32], x: &[f32], relu: bool, out: &mut Vec<f32>) {
        out.clear();
        let n_in = x.len();
        for (row, &bias) in w.chunks_exact(n_in).zip(b) {
            let acc = bias + crate::dot_f32(row, x);
            out.push(if relu { acc.max(0.0) } else { acc });
        }
    }

    /// Runs the network, returning output logits.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut scratch = ForwardScratch::default();
        self.forward_scratch(x, &mut scratch);
        scratch.take_output()
    }

    /// Runs the network into a caller-held ping-pong scratch, returning the
    /// output logits as a borrow. Identical arithmetic to [`Mlp::forward`],
    /// but a hot loop (batch inference, per-epoch evaluation during
    /// training) reuses the same two buffers for every row instead of
    /// allocating fresh `Vec`s per layer per call.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward_scratch<'s>(&self, x: &[f32], scratch: &'s mut ForwardScratch) -> &'s [f32] {
        assert_eq!(x.len(), self.input_len(), "input length mismatch");
        let n_layers = self.weights.len();
        scratch.cur.clear();
        scratch.cur.extend_from_slice(x);
        for l in 0..n_layers {
            let relu = l + 1 < n_layers;
            Self::layer_forward(
                &self.weights[l],
                &self.biases[l],
                &scratch.cur,
                relu,
                &mut scratch.next,
            );
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        &scratch.cur
    }

    /// Forward pass that also returns every layer's post-activation values
    /// (index 0 is the input itself) — used by backpropagation.
    pub(crate) fn forward_cached(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let n_layers = self.weights.len();
        let mut acts = Vec::with_capacity(n_layers + 1);
        acts.push(x.to_vec());
        for l in 0..n_layers {
            let relu = l + 1 < n_layers;
            let mut out = Vec::new();
            Self::layer_forward(&self.weights[l], &self.biases[l], &acts[l], relu, &mut out);
            acts.push(out);
        }
        acts
    }

    /// Every layer's post-activation values for one input; index 0 is the
    /// input itself, the last entry equals [`Mlp::forward`].
    ///
    /// This exposes hidden representations — the autoencoder baseline reads
    /// its bottleneck code from here.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn layer_outputs(&self, x: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(x.len(), self.input_len(), "input length mismatch");
        self.forward_cached(x)
    }

    /// Softmax class probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        softmax(&self.forward(x))
    }

    /// Hard class prediction (argmax of the logits; ties resolve to the
    /// lowest class index).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn predict(&self, x: &[f32]) -> usize {
        let logits = self.forward(x);
        argmax_f32(&logits)
    }

    /// [`Mlp::predict`] through a caller-held scratch — same decision,
    /// no per-row allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn predict_scratch(&self, x: &[f32], scratch: &mut ForwardScratch) -> usize {
        argmax_f32(self.forward_scratch(x, scratch))
    }

    /// Hard class predictions for a batch of rows, decided exactly as
    /// [`Mlp::predict`] decides each row. Iterating rows under one call
    /// keeps the layer weights cache-resident across the whole batch and
    /// reuses one ping-pong scratch for every row — the network-stage half
    /// of the batched inference paths.
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from the input width.
    pub fn predict_batch(&self, rows: &[Vec<f32>]) -> Vec<usize> {
        let mut scratch = ForwardScratch::default();
        rows.iter()
            .map(|r| self.predict_scratch(r, &mut scratch))
            .collect()
    }

    /// Marginal decoding for joint classifiers over a base-`levels` product
    /// alphabet: sums the softmax mass of every joint class sharing each
    /// digit value and returns the per-digit argmax.
    ///
    /// For a readout model whose `levelsⁿ` outputs enumerate joint basis
    /// states in flat-index order (qubit 0 = most significant digit), this
    /// is the optimal per-qubit decision rule and pools statistical
    /// strength across rare joint classes.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width or the output layer
    /// is not exactly `levels^n_digits`.
    pub fn predict_marginal(&self, x: &[f32], n_digits: usize, levels: usize) -> Vec<usize> {
        let n_out = self.output_len();
        assert_eq!(
            n_out,
            levels.pow(n_digits as u32),
            "output layer is not levels^n_digits"
        );
        let probs = self.predict_proba(x);
        let mut marginals = vec![vec![0.0f32; levels]; n_digits];
        for (class, &p) in probs.iter().enumerate() {
            let mut rem = class;
            for digit in (0..n_digits).rev() {
                marginals[digit][rem % levels] += p;
                rem /= levels;
            }
        }
        marginals.iter().map(|m| argmax_f32(m)).collect()
    }
}

/// Reusable ping-pong buffers for [`Mlp::forward_scratch`]: the forward
/// pass alternates between `cur` and `next` layer by layer, so a network of
/// any depth needs exactly two buffers and a hot loop allocates neither.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    cur: Vec<f32>,
    next: Vec<f32>,
}

impl ForwardScratch {
    /// Moves the most recent forward pass's output logits out of the
    /// scratch (leaving it reusable).
    fn take_output(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.cur)
    }
}

/// Numerically stable softmax.
pub(crate) fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Argmax over f32 values; ties resolve to the lowest index.
pub(crate) fn argmax_f32(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .fold((0usize, f32::NEG_INFINITY), |(bi, bx), (i, &x)| {
            if x > bx {
                (i, x)
            } else {
                (bi, bx)
            }
        })
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topologies_have_expected_weight_counts() {
        // FNN baseline: 685,750 weights ("almost 686k" in the paper).
        let fnn = Mlp::new(&[1000, 500, 250, 243], 0);
        assert_eq!(fnn.weight_count(), 1000 * 500 + 500 * 250 + 250 * 243);
        assert_eq!(fnn.weight_count(), 685_750);
        // HERQULES three-level: ~38k.
        let herq = Mlp::new(&[30, 60, 120, 243], 0);
        assert_eq!(herq.weight_count(), 38_160);
        // Ours, per qubit: 1,265 weights.
        let ours = Mlp::new(&[45, 22, 11, 3], 0);
        assert_eq!(ours.weight_count(), 1_265);
        // Ratios quoted in the paper: ~100x vs FNN, ~10x vs HERQULES for a
        // five-qubit chip.
        let ours_total = ours.weight_count() * 5;
        assert!(fnn.weight_count() / ours_total > 90);
        assert!(herq.weight_count() / ours_total >= 6);
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mlp = Mlp::new(&[4, 8, 3], 7);
        let x = [0.5, -1.0, 2.0, 0.0];
        assert_eq!(mlp.forward(&x).len(), 3);
        assert_eq!(mlp.forward(&x), mlp.forward(&x));
        let other = Mlp::new(&[4, 8, 3], 8);
        assert_ne!(mlp.forward(&x), other.forward(&x));
    }

    #[test]
    fn zero_input_gives_bias_only_output() {
        let mut mlp = Mlp::new(&[2, 2], 0);
        mlp.biases[0] = vec![1.5, -0.5];
        let out = mlp.forward(&[0.0, 0.0]);
        assert_eq!(out, vec![1.5, -0.5]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stable under large logits.
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relu_hidden_linear_output() {
        // One hidden unit with a negative pre-activation must be clamped.
        let mut mlp = Mlp::new(&[1, 1, 1], 0);
        mlp.weights[0] = vec![1.0];
        mlp.biases[0] = vec![0.0];
        mlp.weights[1] = vec![1.0];
        mlp.biases[1] = vec![0.0];
        assert_eq!(mlp.forward(&[-3.0]), vec![0.0]); // ReLU clamps hidden
        assert_eq!(mlp.forward(&[2.0]), vec![2.0]);
    }

    #[test]
    fn cached_forward_matches_forward() {
        let mlp = Mlp::new(&[3, 5, 4], 3);
        let x = [0.1, 0.2, -0.3];
        let acts = mlp.forward_cached(&x);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts[2], mlp.forward(&x));
    }

    #[test]
    fn argmax_tie_breaks_low() {
        assert_eq!(argmax_f32(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax_f32(&[0.0, 2.0, 2.0]), 1);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn forward_checks_input_len() {
        let mlp = Mlp::new(&[3, 2], 0);
        let _ = mlp.forward(&[1.0]);
    }
}
