//! Explicit-SIMD `f32` dot products — the one kernel every fused inference
//! path in the workspace is built on, living here (below `mlr_core`) so the
//! network's own forward passes run on the same arithmetic as the compiled
//! inference plans.
//!
//! # The bit-reproducible tier
//!
//! [`dot_f32`] dispatches at runtime (cached feature detection) between an
//! AVX2 path and a scalar fallback that mirrors the vector code's exact
//! lane and reduction structure: 4 accumulator vectors × 8 lanes, pairwise
//! lane reduction `(a0+a1)+(a2+a3)`, the same fixed horizontal tree, and a
//! shared scalar remainder loop. Both paths use separate multiply-then-add
//! (deliberately **no FMA** — an FMA's unrounded intermediate would make
//! the two paths diverge in the last bit, and the kernel is load-bound so
//! FMA buys no throughput there). The result: scalar and AVX2 agree
//! **bit-for-bit**, which the workspace's property tests pin, and a host
//! without AVX2 serves identical decisions.
//!
//! # The FMA tier
//!
//! [`fma_f32`] is the opt-in higher-throughput tier: the same lane and
//! reduction structure, but every multiply-accumulate is *fused*
//! (`_mm256_fmadd_ps` on the vector path, [`f32::mul_add`] on the scalar
//! mirror — one rounding per step instead of two). Fused rounding means
//! this tier does **not** promise bit-equality with [`dot_f32`]; its
//! contract is tolerance-level agreement (≈1e-5 relative on standardised
//! features), which is why plans only select it through an explicit
//! `PlanPrecision` knob and the default stays bit-reproducible.

#[cfg(target_arch = "x86_64")]
fn avx2_enabled() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

#[cfg(target_arch = "x86_64")]
fn fma_enabled() -> bool {
    use std::sync::OnceLock;
    static FMA: OnceLock<bool> = OnceLock::new();
    // The vector FMA path uses AVX2 shuffles/loads alongside fmadd, so
    // require both (every AVX2-era x86 part ships FMA3, but check anyway).
    *FMA.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

/// Whether this host serves the AVX2 path (`false` means the bit-identical
/// scalar fallback is in use).
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2_enabled()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether this host serves the vector FMA path (`false` means
/// [`fma_f32`] falls back to its [`f32::mul_add`] scalar mirror).
pub fn fma_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        fma_enabled()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Shared tail of both mul-then-add dot paths: fixed-order horizontal
/// reduction of the 8 lane sums, then the (sub-32-element) remainder
/// accumulated serially.
#[inline]
fn finish_dot(lanes: &[f32; 8], ra: &[f32], rb: &[f32]) -> f32 {
    let mut total = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (&x, &y) in ra.iter().zip(rb) {
        total += x * y;
    }
    total
}

/// Shared tail of both FMA dot paths — the same reduction tree, but the
/// remainder keeps the fused-rounding semantics ([`f32::mul_add`]).
#[inline]
fn finish_fma(lanes: &[f32; 8], ra: &[f32], rb: &[f32]) -> f32 {
    let mut total = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (&x, &y) in ra.iter().zip(rb) {
        total = x.mul_add(y, total);
    }
    total
}

/// Scalar dot product mirroring the AVX2 path's lane structure exactly:
/// 32 accumulators laid out as 4 vectors × 8 lanes, reduced pairwise.
/// Bit-identical to [`dot_f32_avx2`] by construction.
///
/// # Panics
///
/// Panics in debug builds if the slices' lengths differ.
pub fn dot_f32_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 32];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for ((acc, &x), &y) in acc.iter_mut().zip(xa).zip(xb) {
            *acc += x * y;
        }
    }
    let mut lanes = [0.0f32; 8];
    for (l, lane) in lanes.iter_mut().enumerate() {
        *lane = (acc[l] + acc[8 + l]) + (acc[16 + l] + acc[24 + l]);
    }
    finish_dot(&lanes, ca.remainder(), cb.remainder())
}

/// Scalar FMA dot product mirroring [`fma_f32_avx2`]'s lane structure with
/// the same fused-rounding semantics: 32 accumulators updated via
/// [`f32::mul_add`] (one rounding per step), reduced pairwise.
///
/// # Panics
///
/// Panics in debug builds if the slices' lengths differ.
pub fn fma_f32_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 32];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for ((acc, &x), &y) in acc.iter_mut().zip(xa).zip(xb) {
            *acc = x.mul_add(y, *acc);
        }
    }
    let mut lanes = [0.0f32; 8];
    for (l, lane) in lanes.iter_mut().enumerate() {
        *lane = (acc[l] + acc[8 + l]) + (acc[16 + l] + acc[24 + l]);
    }
    finish_fma(&lanes, ca.remainder(), cb.remainder())
}

/// # Safety
///
/// Caller must ensure AVX2 is available and `a.len() == b.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_f32_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    let n = a.len();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        let pa = a.as_ptr().add(i);
        let pb = b.as_ptr().add(i);
        acc0 = _mm256_add_ps(
            acc0,
            _mm256_mul_ps(_mm256_loadu_ps(pa), _mm256_loadu_ps(pb)),
        );
        acc1 = _mm256_add_ps(
            acc1,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(8)), _mm256_loadu_ps(pb.add(8))),
        );
        acc2 = _mm256_add_ps(
            acc2,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(16)), _mm256_loadu_ps(pb.add(16))),
        );
        acc3 = _mm256_add_ps(
            acc3,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(24)), _mm256_loadu_ps(pb.add(24))),
        );
        i += 32;
    }
    let s = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), s);
    finish_dot(&lanes, &a[i..], &b[i..])
}

/// # Safety
///
/// Caller must ensure AVX2 + FMA are available and `a.len() == b.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fma_f32_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    let n = a.len();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        let pa = a.as_ptr().add(i);
        let pb = b.as_ptr().add(i);
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa), _mm256_loadu_ps(pb), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(8)), _mm256_loadu_ps(pb.add(8)), acc1);
        acc2 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(16)),
            _mm256_loadu_ps(pb.add(16)),
            acc2,
        );
        acc3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(24)),
            _mm256_loadu_ps(pb.add(24)),
            acc3,
        );
        i += 32;
    }
    let s = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), s);
    finish_fma(&lanes, &a[i..], &b[i..])
}

/// The AVX2 dot product (safe wrapper) — exposed for the scalar-vs-AVX2
/// bit-agreement tests.
///
/// # Panics
///
/// Panics if AVX2 is not available on this host (check [`simd_active`]
/// first) or, in debug builds, if the slices' lengths differ.
#[cfg(target_arch = "x86_64")]
pub fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    assert!(avx2_enabled(), "AVX2 unavailable on this host");
    // SAFETY: availability checked above; equal lengths asserted.
    unsafe { dot_f32_avx2_impl(a, b) }
}

/// The vector FMA dot product (safe wrapper) — exposed for the FMA-tier
/// scalar-vs-vector agreement tests.
///
/// # Panics
///
/// Panics if AVX2 + FMA are not available on this host (check
/// [`fma_active`] first) or, in debug builds, if the slices' lengths
/// differ.
#[cfg(target_arch = "x86_64")]
pub fn fma_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    assert!(fma_enabled(), "AVX2+FMA unavailable on this host");
    // SAFETY: availability checked above; equal lengths asserted.
    unsafe { fma_f32_avx2_impl(a, b) }
}

/// Contiguous `f32` dot product with runtime SIMD dispatch — every score
/// the compiled plans and the network forward passes produce goes through
/// this one function, single-shot and batched alike, which is what makes
/// them bit-identical to each other.
///
/// # Panics
///
/// Panics in debug builds if the slices' lengths differ.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_enabled() {
            // SAFETY: availability checked at runtime.
            return unsafe { dot_f32_avx2_impl(a, b) };
        }
    }
    dot_f32_scalar(a, b)
}

/// Contiguous `f32` dot product on the fused-rounding (FMA) tier, with
/// runtime dispatch between `_mm256_fmadd_ps` and the [`f32::mul_add`]
/// scalar mirror. Not bit-compatible with [`dot_f32`] — see the module
/// docs for the tier contract.
///
/// # Panics
///
/// Panics in debug builds if the slices' lengths differ.
#[inline]
pub fn fma_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if fma_enabled() {
            // SAFETY: availability checked at runtime.
            return unsafe { fma_f32_avx2_impl(a, b) };
        }
    }
    fma_f32_scalar(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        // Deterministic pseudo-random data with mixed signs/magnitudes.
        let mut state = 0x2545_F491u32;
        let mut next = || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 8) as f32 / (1u32 << 24) as f32 - 0.5
        };
        let a = (0..n).map(|_| next() * 3.0).collect();
        let b = (0..n).map(|_| next() * 3.0).collect();
        (a, b)
    }

    #[test]
    fn reproducible_tier_simd_agrees_bitwise_with_scalar() {
        #[cfg(target_arch = "x86_64")]
        if simd_active() {
            for n in [0, 1, 7, 31, 32, 33, 64, 120, 1000] {
                let (a, b) = vecs(n);
                assert_eq!(
                    dot_f32_avx2(&a, &b).to_bits(),
                    dot_f32_scalar(&a, &b).to_bits(),
                    "length {n}"
                );
            }
        }
    }

    #[test]
    fn fma_tier_agrees_with_reproducible_tier_within_tolerance() {
        for n in [1, 31, 32, 33, 120, 1000] {
            let (a, b) = vecs(n);
            let base = dot_f32(&a, &b) as f64;
            let fused = fma_f32(&a, &b) as f64;
            let norm: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as f64 * y as f64).abs())
                .sum();
            assert!(
                (base - fused).abs() <= 1e-5 * (1.0 + norm),
                "length {n}: {base} vs {fused}"
            );
        }
    }
}
