//! LU (partial pivoting) and Cholesky factorisations.

use crate::Matrix;
use serde::{Deserialize, Serialize};

/// LU factorisation with partial pivoting: `P * A = L * U`.
///
/// Used for solving the small linear systems and log-determinants needed by
/// the QDA discriminator.
///
/// # Examples
///
/// ```
/// use mlr_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = a.lu().expect("nonsingular");
/// let x = lu.solve(&[3.0, 5.0]);
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by the determinant.
    sign: f64,
}

impl Lu {
    /// Factorises `a`. Returns `None` if `a` is non-square or singular to
    /// working precision.
    pub fn new(a: &Matrix) -> Option<Self> {
        if a.rows() != a.cols() {
            return None;
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot: pick the largest magnitude in column k at/below k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Some(Self { lu, perm, sign })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    #[allow(clippy::needless_range_loop)] // substitution loops index two vectors
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch");
        // Forward substitution on the permuted right-hand side.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.lu[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        x
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Natural log of `|det A|`; `-inf` never occurs because construction
    /// rejects singular matrices.
    pub fn log_abs_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.lu[(i, i)].abs().ln()).sum()
    }

    /// Inverse of the original matrix, column by column.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }
}

/// Cholesky factorisation `A = L * L^T` of a symmetric positive-definite
/// matrix.
///
/// Preferred over [`Lu`] for covariance matrices: roughly half the work and
/// it doubles as a positive-definiteness check.
///
/// # Examples
///
/// ```
/// use mlr_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = a.cholesky().expect("SPD");
/// assert!((ch.log_det() - (4.0f64 * 3.0 - 4.0).ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Matrix,
}

/// Hand-written so a deserialised factor is at least square — the solve
/// and log-det paths index `l[(i, j)]` for `j <= i < n` and would panic
/// (or read out of shape) on a rectangular payload.
impl Deserialize for Cholesky {
    fn from_json_value(value: &serde::JsonValue) -> Result<Self, serde::DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::DeError::new("Cholesky: expected an object"))?;
        let l = Matrix::from_json_value(serde::obj_get(entries, "l")?)?;
        if l.rows() != l.cols() {
            return Err(serde::DeError::new(format!(
                "Cholesky: factor must be square, got {}x{}",
                l.rows(),
                l.cols()
            )));
        }
        Ok(Self { l })
    }
}

impl Cholesky {
    /// Factorises `a`. Returns `None` if `a` is non-square or not positive
    /// definite to working precision.
    pub fn new(a: &Matrix) -> Option<Self> {
        if a.rows() != a.cols() {
            return None;
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(Self { l })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    #[allow(clippy::needless_range_loop)] // substitution loops index two vectors
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch");
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * y[j];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // L^T x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// `ln det A = 2 * sum(ln L_ii)`.
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }

    /// Squared Mahalanobis distance `d^T A^{-1} d`.
    ///
    /// # Panics
    ///
    /// Panics if `d.len()` differs from the matrix dimension.
    pub fn mahalanobis_sq(&self, d: &[f64]) -> f64 {
        let x = self.solve(d);
        d.iter().zip(&x).map(|(a, b)| a * b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn lu_solves_diagonally_dominant_system() {
        let a = Matrix::from_rows(&[&[10.0, 2.0, 3.0], &[1.0, 12.0, -1.0], &[2.0, -3.0, 9.0]]);
        let b = [1.0, 2.0, 3.0];
        let x = a.lu().unwrap().solve(&b);
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = a.lu().unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.lu().is_none());
        assert!(Matrix::zeros(2, 3).lu().is_none());
    }

    #[test]
    fn lu_inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        assert!((&prod - &Matrix::identity(2)).max_abs() < 1e-12);
    }

    #[test]
    fn lu_det_matches_closed_form() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        assert!((lu.det() - 5.0).abs() < 1e-12);
        assert!((lu.log_abs_det() - 5.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let ch = a.cholesky().unwrap();
        let l = ch.factor();
        let reconstructed = l * &l.transpose();
        assert!((&reconstructed - &a).max_abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn cholesky_solve_and_mahalanobis() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let ch = a.cholesky().unwrap();
        let x = ch.solve(&[8.0, 27.0]);
        assert_eq!(x, vec![2.0, 3.0]);
        // d^T diag(1/4, 1/9) d with d = (2, 3) -> 1 + 1 = 2
        assert!((ch.mahalanobis_sq(&[2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
