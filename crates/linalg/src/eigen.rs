//! Cyclic Jacobi eigendecomposition for symmetric matrices.

use crate::Matrix;

/// Eigendecomposition `A = V * diag(values) * V^T` of a symmetric matrix,
/// computed with cyclic Jacobi rotations.
///
/// Eigenvalues are returned in ascending order; `vectors` stores the
/// corresponding eigenvectors as *columns*. Spectral clustering consumes the
/// smallest eigenvectors of a graph Laplacian, so ascending order is the
/// natural convention here.
///
/// # Examples
///
/// ```
/// use mlr_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]);
/// let eig = a.symmetric_eigen();
/// assert!((eig.values[0] - 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 2.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, ordered to match `values`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Maximum number of full Jacobi sweeps before giving up; in practice the
    /// Laplacians here converge in well under 20 sweeps.
    const MAX_SWEEPS: usize = 64;

    /// Computes the decomposition of `a`.
    ///
    /// Only the lower triangle is read, so slight asymmetry from floating
    /// point accumulation is harmless.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Self {
        assert_eq!(a.rows(), a.cols(), "symmetric eigen needs a square matrix");
        let n = a.rows();
        // Work on a symmetrised copy.
        let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let mut v = Matrix::identity(n);

        let off_diag_norm = |m: &Matrix| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s.sqrt()
        };

        let scale = m.max_abs().max(1e-300);
        let tol = 1e-14 * scale * n as f64;

        for _sweep in 0..Self::MAX_SWEEPS {
            if off_diag_norm(&m) <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n * n) as f64 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Classic Jacobi rotation angle.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply rotation to rows/cols p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        // Extract and sort ascending.
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("NaN eigenvalue"));
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
        Self { values, vectors }
    }

    /// Returns the `k` eigenvectors with the smallest eigenvalues, as rows of
    /// length `n` stacked into a `n x k` matrix (i.e. the spectral embedding
    /// of each node).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the matrix dimension.
    pub fn smallest_embedding(&self, k: usize) -> Matrix {
        let n = self.vectors.rows();
        assert!(k <= n, "requested more eigenvectors than available");
        Matrix::from_fn(n, k, |i, j| self.vectors[(i, j)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(eig: &SymmetricEigen) -> Matrix {
        let v = &eig.vectors;
        let lambda = Matrix::from_diag(&eig.values);
        &(v * &lambda) * &v.transpose()
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let eig = a.symmetric_eigen();
        assert!((&reconstruct(&eig) - &a).max_abs() < 1e-9);
    }

    #[test]
    fn eigen_values_sorted_ascending() {
        let a = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, -3.0]]);
        let eig = a.symmetric_eigen();
        assert!(eig.values.windows(2).all(|w| w[0] <= w[1]));
        assert!((eig.values[0] + 3.0).abs() < 1e-10);
        assert!((eig.values[1] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_fn(5, 5, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let eig = a.symmetric_eigen();
        let vtv = &eig.vectors.transpose() * &eig.vectors;
        assert!((&vtv - &Matrix::identity(5)).max_abs() < 1e-9);
    }

    #[test]
    fn known_eigenvalues_2x2() {
        // [[1,2],[2,1]] has eigenvalues -1 and 3.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let eig = a.symmetric_eigen();
        assert!((eig.values[0] + 1.0).abs() < 1e-10);
        assert!((eig.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn laplacian_null_vector() {
        // Path-graph Laplacian: smallest eigenvalue 0 with constant vector.
        let a = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let eig = a.symmetric_eigen();
        assert!(eig.values[0].abs() < 1e-10);
        let v0 = eig.vectors.col(0);
        let first = v0[0];
        assert!(v0.iter().all(|&x| (x - first).abs() < 1e-8));
    }

    #[test]
    fn smallest_embedding_shape() {
        let a = Matrix::identity(4);
        let eig = a.symmetric_eigen();
        let emb = eig.smallest_embedding(2);
        assert_eq!((emb.rows(), emb.cols()), (4, 2));
    }

    #[test]
    fn eigen_of_identity() {
        let eig = Matrix::identity(3).symmetric_eigen();
        assert!(eig.values.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }
}
