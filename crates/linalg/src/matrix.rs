//! Row-major dense matrix and data-matrix statistics.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{Cholesky, Lu, SymmetricEigen};

/// A dense, row-major `f64` matrix.
///
/// Sized for the workspace's needs: LDA/QDA covariances (a handful of
/// dimensions) and spectral-clustering Laplacians (a few hundred nodes).
///
/// # Examples
///
/// ```
/// use mlr_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(&a * &b, a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Hand-written so deserialisation cannot bypass the shape invariant a
/// constructor would enforce: `data.len() == rows * cols`. A derived
/// impl would accept a truncated or padded payload and index out of
/// bounds (or silently read garbage) at use time.
impl Deserialize for Matrix {
    fn from_json_value(value: &serde::JsonValue) -> Result<Self, serde::DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::DeError::new("Matrix: expected an object"))?;
        let rows = usize::from_json_value(serde::obj_get(entries, "rows")?)?;
        let cols = usize::from_json_value(serde::obj_get(entries, "cols")?)?;
        let data = Vec::<f64>::from_json_value(serde::obj_get(entries, "data")?)?;
        let expected = rows
            .checked_mul(cols)
            .ok_or_else(|| serde::DeError::new("Matrix: rows * cols overflows"))?;
        if data.len() != expected {
            return Err(serde::DeError::new(format!(
                "Matrix: {rows}x{cols} needs {expected} entries, got {}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "size mismatch");
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// Frobenius norm (root of sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Returns `true` if the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// LU factorisation with partial pivoting. See [`Lu`].
    ///
    /// # Errors
    ///
    /// Returns `None` if the matrix is not square or is numerically singular.
    pub fn lu(&self) -> Option<Lu> {
        Lu::new(self)
    }

    /// Cholesky factorisation of a symmetric positive-definite matrix. See
    /// [`Cholesky`].
    ///
    /// # Errors
    ///
    /// Returns `None` if the matrix is not square or not positive definite.
    pub fn cholesky(&self) -> Option<Cholesky> {
        Cholesky::new(self)
    }

    /// Full eigendecomposition of a symmetric matrix via cyclic Jacobi
    /// rotations. See [`SymmetricEigen`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetric_eigen(&self) -> SymmetricEigen {
        SymmetricEigen::new(self)
    }

    /// Inverse via LU; `None` for singular or non-square matrices.
    pub fn inverse(&self) -> Option<Matrix> {
        self.lu().map(|lu| lu.inverse())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in lhs_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Column-wise mean of a data matrix whose rows are observations.
///
/// Returns a zero-length vector for a matrix with no columns.
pub fn mean_vector(data: &Matrix) -> Vec<f64> {
    let n = data.rows().max(1) as f64;
    let mut mu = vec![0.0; data.cols()];
    for i in 0..data.rows() {
        for (m, &v) in mu.iter_mut().zip(data.row(i)) {
            *m += v;
        }
    }
    mu.iter_mut().for_each(|m| *m /= n);
    mu
}

/// Unbiased sample covariance of a data matrix whose rows are observations.
///
/// With fewer than two rows the result is the zero matrix.
pub fn covariance_matrix(data: &Matrix) -> Matrix {
    let d = data.cols();
    let n = data.rows();
    let mut cov = Matrix::zeros(d, d);
    if n < 2 {
        return cov;
    }
    let mu = mean_vector(data);
    for r in 0..n {
        let row = data.row(r);
        for i in 0..d {
            let di = row[i] - mu[i];
            for j in i..d {
                cov[(i, j)] += di * (row[j] - mu[j]);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..d {
        for j in i..d {
            cov[(i, j)] /= denom;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    cov
}

#[cfg(test)]
mod tests_serde {
    use super::*;

    #[test]
    fn json_round_trip_and_shape_validation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let json = serde_json::to_string(&m).unwrap();
        let round: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(round, m);
        // A payload whose claimed shape disagrees with its data length is
        // rejected at parse time, not at first (out-of-bounds) use.
        let bad = json.replace("\"rows\":2", "\"rows\":3");
        assert_ne!(bad, json);
        assert!(serde_json::from_str::<Matrix>(&bad).is_err());
        let bad_chol = format!("{{\"l\":{json}}}").replace("\"cols\":2", "\"cols\":1");
        assert!(serde_json::from_str::<crate::Cholesky>(&bad_chol).is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        let i2 = Matrix::identity(2);
        assert_eq!(&a * &i3, a);
        assert_eq!(&i2 * &a, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 4);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let x = vec![3.0, 4.0];
        assert_eq!(a.mul_vec(&x), vec![-1.0, 6.0 + 2.0]);
    }

    #[test]
    fn covariance_of_known_data() {
        // Two perfectly correlated dimensions.
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 2.0], &[2.0, 4.0]]);
        let cov = covariance_matrix(&data);
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0).abs() < 1e-12);
        assert!(cov.is_symmetric(0.0));
    }

    #[test]
    fn mean_vector_columnwise() {
        let data = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 20.0]]);
        assert_eq!(mean_vector(&data), vec![2.0, 15.0]);
    }

    #[test]
    fn row_col_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert!(!ns.is_symmetric(1e-9));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn from_diag_and_scale() {
        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d.scale(3.0), Matrix::from_diag(&[3.0, 6.0]));
        assert!((d.frobenius_norm() - 5.0f64.sqrt()).abs() < 1e-12);
    }
}
