//! Small dense linear algebra for the `multilevel-readout` workspace.
//!
//! Provides exactly what the discriminators and clustering code need and no
//! more: a row-major [`Matrix`], LU and Cholesky factorisations
//! ([`Lu`], [`Cholesky`]), and a cyclic-Jacobi symmetric eigensolver
//! ([`SymmetricEigen`]). Matrices here are small (classifier covariances,
//! graph Laplacians of a few hundred nodes), so clarity is favoured over
//! blocked/vectorised kernels.
//!
//! # Examples
//!
//! ```
//! use mlr_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let eig = a.symmetric_eigen();
//! assert!(eig.values[0] < eig.values[1]);
//! ```

#![deny(missing_docs)]

mod decomp;
mod eigen;
mod matrix;

pub use decomp::{Cholesky, Lu};
pub use eigen::SymmetricEigen;
pub use matrix::{covariance_matrix, mean_vector, Matrix};
