//! One Pauli sector of a surface code as a decoding problem: the checks,
//! their data-qubit supports, and the representative logical operator.
//!
//! Both decoders ([`GreedyDecoder`](crate::GreedyDecoder) and
//! [`UnionFindDecoder`](crate::UnionFindDecoder)) decode one sector at a
//! time — X errors through the Z checks or Z errors through the X checks —
//! so the sector geometry (check supports, qubit-to-check incidence,
//! syndrome computation, logical-parity test) lives here once instead of
//! being rebuilt per decoder.

use crate::{StabilizerKind, SurfaceCode};

/// The checks of one stabilizer sector and the incidence maps decoders
/// need.
#[derive(Debug, Clone)]
pub(crate) struct Sector {
    /// Indices (into the code's stabilizer list) of the checks in this
    /// sector.
    pub checks: Vec<usize>,
    /// `support[c]` = data qubits of sector check `c`.
    pub support: Vec<Vec<usize>>,
    /// `check_of[q]` = sector checks touching data qubit `q` (1 on the
    /// sector's open boundary, 2 in the bulk — the matching-graph
    /// incidence).
    pub check_of: Vec<Vec<usize>>,
    /// Data qubits of one representative logical operator conjugate to
    /// this sector: odd residual-error overlap with it means a logical
    /// fault.
    pub logical_support: Vec<usize>,
    /// Number of data qubits in the code.
    pub n_data: usize,
}

impl Sector {
    /// Extracts the checks of `kind` from `code`.
    pub fn new(code: &SurfaceCode, kind: StabilizerKind) -> Self {
        let n_data = code.n_data();
        let checks: Vec<usize> = code
            .stabilizers()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind)
            .map(|(i, _)| i)
            .collect();
        let support: Vec<Vec<usize>> = checks
            .iter()
            .map(|&c| code.stabilizers()[c].data.clone())
            .collect();
        let mut check_of = vec![Vec::new(); n_data];
        for (c, sup) in support.iter().enumerate() {
            for &q in sup {
                check_of[q].push(c);
            }
        }

        // Conjugate-logical support for this sector's parity test. A
        // Z-sector residual is an X-type chain, so it is a logical fault
        // iff it anticommutes with the representative logical Z (the top
        // row); dually, X-sector residuals are tested against the logical
        // X (the left column). The parity is gauge invariant because every
        // opposite-sector stabilizer overlaps the support evenly.
        let d = code.distance();
        let logical_support: Vec<usize> = match kind {
            StabilizerKind::Z => (0..d).collect(),                // row 0
            StabilizerKind::X => (0..d).map(|r| r * d).collect(), // column 0
        };

        Self {
            checks,
            support,
            check_of,
            logical_support,
            n_data,
        }
    }

    /// Number of checks in this sector.
    pub fn n_checks(&self) -> usize {
        self.checks.len()
    }

    /// The sector syndrome of an error set: which checks see odd overlap
    /// with the flipped data qubits.
    pub fn syndrome_of(&self, flipped: &[usize]) -> Vec<bool> {
        let mut syn = vec![false; self.n_checks()];
        for &q in flipped {
            assert!(q < self.n_data, "qubit out of range");
            for &c in &self.check_of[q] {
                syn[c] ^= true;
            }
        }
        syn
    }

    /// `true` if `residual` overlaps the logical support an odd number of
    /// times.
    pub fn is_logical_error(&self, residual: &[usize]) -> bool {
        residual
            .iter()
            .filter(|q| self.logical_support.contains(q))
            .count()
            % 2
            == 1
    }
}

/// Symmetric difference of two qubit-index sets (each set may repeat a
/// qubit; an even multiplicity cancels), returned sorted.
///
/// This is error ⊕ correction: the residual a decoder leaves behind.
///
/// # Examples
///
/// ```
/// use mlr_qec::xor_support;
///
/// assert_eq!(xor_support(&[0, 3], &[3, 6]), vec![0, 6]);
/// ```
pub fn xor_support(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut all: Vec<usize> = a.iter().chain(b).copied().collect();
    cancel_pairs(&mut all)
}

/// Sorts `elements` and drops every even-multiplicity entry, returning the
/// qubits that appear an odd number of times.
pub(crate) fn cancel_pairs(elements: &mut [usize]) -> Vec<usize> {
    elements.sort_unstable();
    let mut out = Vec::with_capacity(elements.len());
    let mut i = 0;
    while i < elements.len() {
        let mut j = i;
        while j < elements.len() && elements[j] == elements[i] {
            j += 1;
        }
        if (j - i) % 2 == 1 {
            out.push(elements[i]);
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_qubit_touches_one_or_two_sector_checks() {
        // The matching-graph premise: per sector, each data qubit is an
        // edge between two checks (bulk) or a check and the boundary.
        for d in [3usize, 5, 7] {
            let code = SurfaceCode::rotated(d);
            for kind in [StabilizerKind::Z, StabilizerKind::X] {
                let sector = Sector::new(&code, kind);
                for q in 0..code.n_data() {
                    let n = sector.check_of[q].len();
                    assert!((1..=2).contains(&n), "d={d} {kind:?} qubit {q}: {n}");
                }
            }
        }
    }

    #[test]
    fn xor_support_cancels_pairs() {
        assert_eq!(xor_support(&[], &[]), Vec::<usize>::new());
        assert_eq!(xor_support(&[1, 2], &[2, 1]), Vec::<usize>::new());
        // Multiplicity is counted across both sets: 5 appears twice.
        assert_eq!(xor_support(&[5, 1, 5], &[2]), vec![1, 2]);
    }

    #[test]
    fn logical_support_commutes_with_every_stabilizer() {
        // Gauge invariance of the parity test: the representative logical
        // must overlap every *opposite*-sector stabilizer evenly (a
        // Z-sector residual is only defined up to X stabilizers, so the
        // logical-Z support must commute with all of them, and dually).
        let code = SurfaceCode::rotated(5);
        for (kind, conjugate) in [
            (StabilizerKind::Z, StabilizerKind::X),
            (StabilizerKind::X, StabilizerKind::Z),
        ] {
            let sector = Sector::new(&code, kind);
            let opposite = Sector::new(&code, conjugate);
            assert!(
                opposite
                    .syndrome_of(&sector.logical_support)
                    .iter()
                    .all(|&s| !s),
                "{kind:?} logical overlaps an opposite-sector check oddly"
            );
        }
    }
}
