//! ERASER-style leakage speculation (MICRO '23) with and without
//! multi-level readout — the engine behind Tables I and VI.
//!
//! Each trial simulates `cycles` rounds of stabilizer measurement on a
//! leaky rotated surface code ([`LeakageSimulator`]), applies LRCs to the
//! qubits the speculation rules flag, and then decodes the accumulated
//! end-of-run X-error frame with the configured [`DecoderKind`]. The
//! erasure set handed to
//! [`Decoder::decode_with_erasures`](crate::Decoder::decode_with_erasures)
//! comes from a [`HeraldModel`]: ground truth
//! reproduces PR 3's perfect heralds, while a noisy model lets readout
//! assignment error corrupt the flag set — the readout→QEC loop the
//! Table VI-style sweep measures.
//!
//! # Examples
//!
//! ```
//! use mlr_qec::{ConfusionMatrixHerald, EraserConfig, EraserExperiment, SpeculationMode};
//!
//! let experiment = EraserExperiment::new(EraserConfig {
//!     distance: 3,
//!     cycles: 3,
//!     trials: 20,
//!     ..EraserConfig::default()
//! });
//! let mode = SpeculationMode::EraserM { readout_error: 0.05 };
//!
//! // Perfect heralds (PR 3 behaviour)…
//! let perfect = experiment.run(mode);
//! // …versus a 10 % assignment-error herald channel.
//! let noisy =
//!     experiment.run_with_herald(mode, &ConfusionMatrixHerald::symmetric(0.10));
//! assert_eq!(perfect.herald_false_positive_rate, 0.0);
//! assert!(noisy.herald_false_positive_rate > 0.0);
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    xor_support, DecoderKind, GroundTruthHerald, HeraldModel, LeakageParams, LeakageSimulator,
    StabilizerKind, SurfaceCode,
};

/// Which speculation signals are available.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeculationMode {
    /// Plain ERASER: syndrome-pattern anomalies only (two-level readout).
    Eraser,
    /// ERASER+M: parity qubits are read with three-level readout whose
    /// per-shot error probability is `readout_error` — this is where the
    /// discriminator quality of the main study (Tables IV/V) plugs in.
    EraserM {
        /// Probability that one ancilla's leak/not-leak report is wrong.
        readout_error: f64,
    },
}

/// Configuration of an [`EraserExperiment`].
#[derive(Debug, Clone, PartialEq)]
pub struct EraserConfig {
    /// Surface-code distance (Table I uses 7).
    pub distance: usize,
    /// QEC cycles per trial (Table I uses 10).
    pub cycles: usize,
    /// Independent trials to average over.
    pub trials: usize,
    /// Physical leakage/error rates.
    pub params: LeakageParams,
    /// Master seed.
    pub seed: u64,
    /// The decoder fed the accumulated error frame at the end of each
    /// trial (with leakage heralds as erasures — only the union-find
    /// decoder consumes them).
    pub decoder: DecoderKind,
}

impl Default for EraserConfig {
    fn default() -> Self {
        Self {
            distance: 7,
            cycles: 10,
            trials: 300,
            params: LeakageParams::default(),
            seed: 71,
            decoder: DecoderKind::UnionFind,
        }
    }
}

/// Aggregate outcome of an ERASER run.
#[derive(Debug, Clone, PartialEq)]
pub struct EraserResult {
    /// The paper's speculation accuracy: the balanced mean of episode
    /// recall (leak episodes flagged before they ended) and the per-decision
    /// true-negative rate (non-leaked qubit-cycles left alone). Penalising
    /// false flags matters because unnecessary LRCs inject fresh errors
    /// (Sec. III-B).
    pub speculation_accuracy: f64,
    /// Fraction of leakage episodes (data + ancilla) flagged before they
    /// ended.
    pub episode_recall: f64,
    /// Episode recall restricted to data qubits.
    pub data_recall: f64,
    /// Episode recall restricted to ancilla qubits.
    pub ancilla_recall: f64,
    /// Fraction of non-leaked qubit-cycle decisions correctly left
    /// unflagged.
    pub true_negative_rate: f64,
    /// Mean leakage population (fraction of data qubits leaked) at the end
    /// of the run — Table I's LP column.
    pub leakage_population: f64,
    /// False LRC applications (on non-leaked qubits) per qubit per cycle.
    pub false_flag_rate: f64,
    /// Total leakage episodes observed across trials.
    pub episodes: usize,
    /// Fraction of trials whose end-of-run X-error frame, decoded by the
    /// configured [`DecoderKind`] (with the heralded data qubits treated
    /// as erasures), left a logical error — the end-to-end QEC payoff of
    /// better speculation.
    pub logical_failure_rate: f64,
    /// Fraction of *healthy* end-of-run data qubits the herald wrongly
    /// flagged as leaked (each one erases a qubit that carried no leak).
    /// Zero under a ground-truth herald.
    pub herald_false_positive_rate: f64,
    /// Fraction of *leaked* end-of-run data qubits the herald missed
    /// (each one denies the decoder an erasure it should have had). Zero
    /// under a ground-truth herald.
    pub herald_false_negative_rate: f64,
}

/// Runs repeated-trial leakage speculation on a rotated surface code.
///
/// Speculation rules (one decision per qubit per cycle):
///
/// * **data qubits** — flagged when at least two (and at least half) of
///   their adjacent stabilizers produced *detection events* (syndrome
///   changes) this cycle: a leaked data qubit randomises every adjacent
///   check, so this pattern is its signature;
/// * **ancilla qubits, ERASER** — flagged after their own syndrome produced
///   detection events in two consecutive cycles;
/// * **ancilla qubits, ERASER+M** — flagged directly when the three-level
///   readout reports `L` (subject to the configured readout error); a
///   reported-leaked ancilla also strengthens the case of an adjacent data
///   qubit that shows any syndrome activity (leakage transport evidence).
///
/// Flagged qubits receive an LRC immediately.
#[derive(Debug, Clone)]
pub struct EraserExperiment {
    config: EraserConfig,
}

impl EraserExperiment {
    /// Creates an experiment with the given configuration.
    pub fn new(config: EraserConfig) -> Self {
        Self { config }
    }

    /// Runs the experiment in the given speculation mode with a perfect
    /// (ground-truth) end-of-run erasure herald — PR 3's behaviour, and
    /// the zero-noise endpoint of the herald-quality sweep.
    pub fn run(&self, mode: SpeculationMode) -> EraserResult {
        self.run_with_herald(mode, &GroundTruthHerald)
    }

    /// Runs the experiment with the end-of-run erasure set produced by
    /// `herald` instead of ground truth.
    ///
    /// At the end of every trial, the true leak state of each data qubit
    /// is passed through the [`HeraldModel`]; the *reported* flags become
    /// the erasure set of the final decode, so herald false positives
    /// erase healthy qubits and false negatives deny the decoder erasures
    /// it should have had. The realised error rates of the herald channel
    /// are reported alongside the logical failure rate.
    #[allow(clippy::needless_range_loop)] // qubit index addresses several parallel arrays
    pub fn run_with_herald(&self, mode: SpeculationMode, herald: &dyn HeraldModel) -> EraserResult {
        let code = SurfaceCode::rotated(self.config.distance);
        let n_data = code.n_data();
        let n_anc = code.n_stabilizers();
        // X errors are decoded through the Z checks; leakage heralds
        // become erasures (the greedy decoder's default implementation
        // ignores them).
        let decoder = self.config.decoder.build(&code, StabilizerKind::Z);

        let mut episodes = 0usize;
        let mut detected = 0usize;
        let mut data_episodes = 0usize;
        let mut data_detected = 0usize;
        let mut anc_episodes = 0usize;
        let mut anc_detected = 0usize;
        let mut false_flags = 0usize;
        let mut qubit_cycles = 0usize;
        let mut leaked_decisions = 0usize;
        let mut lp_sum = 0.0;
        let mut logical_failures = 0usize;
        let mut herald_false_positives = 0usize;
        let mut herald_false_negatives = 0usize;
        let mut herald_healthy = 0usize;
        let mut herald_leaked = 0usize;

        for trial in 0..self.config.trials {
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(trial as u64 * 7919));
            let mut sim = LeakageSimulator::new(code.clone(), self.config.params);
            let mut prev_syndromes = vec![false; n_anc];
            // Last two cycles' detection events per ancilla (for the
            // 2-of-3-cycles flicker rule).
            let mut anc_events_1 = vec![false; n_anc];
            let mut anc_events_2 = vec![false; n_anc];
            // Episode state: currently-leaked? was the current episode
            // flagged at least once?
            let mut data_episode_open = vec![false; n_data];
            let mut data_episode_flagged = vec![false; n_data];
            let mut anc_episode_open = vec![false; n_anc];
            let mut anc_episode_flagged = vec![false; n_anc];

            for _cycle in 0..self.config.cycles {
                let readout_error = match mode {
                    SpeculationMode::Eraser => None,
                    SpeculationMode::EraserM { readout_error } => Some(readout_error),
                };
                let rec = sim.run_cycle(&mut rng, readout_error);

                // Open episodes on the post-cycle truth: a leak that appears
                // during cycle t is first observable in cycle t's syndromes,
                // so same-cycle detection must count.
                for q in 0..n_data {
                    if sim.data_leaked(q) && !data_episode_open[q] {
                        data_episode_open[q] = true;
                        data_episode_flagged[q] = false;
                        episodes += 1;
                        data_episodes += 1;
                    }
                }
                for a in 0..n_anc {
                    if sim.ancilla_leaked(a) && !anc_episode_open[a] {
                        anc_episode_open[a] = true;
                        anc_episode_flagged[a] = false;
                        episodes += 1;
                        anc_episodes += 1;
                    }
                }
                let events: Vec<bool> = rec
                    .syndromes
                    .iter()
                    .zip(&prev_syndromes)
                    .map(|(&s, &p)| s != p)
                    .collect();

                // --- Ancilla speculation ---
                let mut anc_flags = vec![false; n_anc];
                for a in 0..n_anc {
                    anc_flags[a] = match mode {
                        SpeculationMode::Eraser => {
                            // A leaked ancilla randomises its own outcome, so
                            // its syndrome flickers: >= 2 detection events in
                            // the last 3 cycles is the anomaly signature.
                            let fired = usize::from(events[a])
                                + usize::from(anc_events_1[a])
                                + usize::from(anc_events_2[a]);
                            fired >= 2
                        }
                        SpeculationMode::EraserM { .. } => rec.ancilla_leak_flags[a],
                    };
                }

                // --- Data speculation ---
                let mut data_flags = vec![false; n_data];
                for q in 0..n_data {
                    let adjacent = code.stabilizers_of(q);
                    let fired = adjacent.iter().filter(|&&a| events[a]).count();
                    let strong = fired >= 2 && 2 * fired >= adjacent.len();
                    let transported_evidence = matches!(mode, SpeculationMode::EraserM { .. })
                        && fired >= 1
                        && adjacent.iter().any(|&a| rec.ancilla_leak_flags[a]);
                    data_flags[q] = strong || transported_evidence;
                }

                // --- Apply LRCs, account accuracy ---
                for q in 0..n_data {
                    qubit_cycles += 1;
                    if sim.data_leaked(q) {
                        leaked_decisions += 1;
                    }
                    if data_flags[q] {
                        if sim.data_leaked(q) {
                            if data_episode_open[q] && !data_episode_flagged[q] {
                                data_episode_flagged[q] = true;
                                detected += 1;
                                data_detected += 1;
                            }
                        } else {
                            false_flags += 1;
                        }
                        sim.apply_lrc_data(q, &mut rng);
                    }
                }
                for a in 0..n_anc {
                    qubit_cycles += 1;
                    if sim.ancilla_leaked(a) {
                        leaked_decisions += 1;
                    }
                    if anc_flags[a] {
                        if sim.ancilla_leaked(a) {
                            if anc_episode_open[a] && !anc_episode_flagged[a] {
                                anc_episode_flagged[a] = true;
                                detected += 1;
                                anc_detected += 1;
                            }
                        } else {
                            false_flags += 1;
                        }
                        sim.apply_lrc_ancilla(a, &mut rng);
                    }
                }

                // Close episodes that ended (LRC or seepage).
                for q in 0..n_data {
                    if data_episode_open[q] && !sim.data_leaked(q) {
                        data_episode_open[q] = false;
                    }
                }
                for a in 0..n_anc {
                    if anc_episode_open[a] && !sim.ancilla_leaked(a) {
                        anc_episode_open[a] = false;
                    }
                }

                prev_syndromes = rec.syndromes;
                anc_events_2 = std::mem::replace(&mut anc_events_1, events);
            }
            lp_sum += sim.leakage_population();

            // Final round: decode the accumulated X-error frame through
            // the Z checks, with the erasure set produced by the herald
            // model from the true leak state (ground truth only when the
            // model is perfect). Residual parity against the logical
            // operator is a logical failure — the metric the readout
            // quality feeding the herald ultimately moves.
            let error = sim.x_error_qubits();
            let truth: Vec<bool> = (0..n_data).map(|q| sim.data_leaked(q)).collect();
            let flags = herald.herald(&truth, &mut rng);
            debug_assert_eq!(flags.len(), n_data, "herald flag count");
            for q in 0..n_data {
                if truth[q] {
                    herald_leaked += 1;
                    herald_false_negatives += usize::from(!flags[q]);
                } else {
                    herald_healthy += 1;
                    herald_false_positives += usize::from(flags[q]);
                }
            }
            let erased: Vec<usize> = (0..n_data).filter(|&q| flags[q]).collect();
            let syndrome = decoder.syndrome_of(&error);
            let correction = decoder.decode_with_erasures(&syndrome, &erased);
            let residual = xor_support(&error, &correction);
            if decoder.is_logical_error(&residual) {
                logical_failures += 1;
            }
        }

        let recall = |det: usize, total: usize| -> f64 {
            if total == 0 {
                1.0
            } else {
                det as f64 / total as f64
            }
        };
        let clean_decisions = qubit_cycles - leaked_decisions;
        let true_negative_rate = if clean_decisions == 0 {
            1.0
        } else {
            1.0 - false_flags as f64 / clean_decisions as f64
        };
        let episode_recall = recall(detected, episodes);
        EraserResult {
            speculation_accuracy: 0.5 * (episode_recall + true_negative_rate),
            episode_recall,
            data_recall: recall(data_detected, data_episodes),
            ancilla_recall: recall(anc_detected, anc_episodes),
            true_negative_rate,
            leakage_population: lp_sum / self.config.trials as f64,
            false_flag_rate: false_flags as f64 / qubit_cycles.max(1) as f64,
            episodes,
            logical_failure_rate: logical_failures as f64 / self.config.trials as f64,
            herald_false_positive_rate: herald_false_positives as f64
                / herald_healthy.max(1) as f64,
            herald_false_negative_rate: herald_false_negatives as f64 / herald_leaked.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> EraserConfig {
        EraserConfig {
            distance: 5,
            cycles: 10,
            trials: 60,
            ..EraserConfig::default()
        }
    }

    #[test]
    fn multi_level_readout_improves_speculation() {
        // Higher leak rate + more trials for statistical power on LP.
        let mut config = quick_config();
        config.trials = 300;
        config.params.leak_per_gate = 2e-3;
        let exp = EraserExperiment::new(config);
        let plain = exp.run(SpeculationMode::Eraser);
        let with_m = exp.run(SpeculationMode::EraserM {
            readout_error: 0.05,
        });
        assert!(
            with_m.episode_recall > plain.episode_recall,
            "ERASER recall {} vs +M {}",
            plain.episode_recall,
            with_m.episode_recall
        );
        assert!(
            with_m.leakage_population < plain.leakage_population,
            "LP {} vs {}",
            plain.leakage_population,
            with_m.leakage_population
        );
    }

    #[test]
    fn better_readout_means_better_speculation() {
        let exp = EraserExperiment::new(quick_config());
        let good = exp.run(SpeculationMode::EraserM {
            readout_error: 0.05,
        });
        let bad = exp.run(SpeculationMode::EraserM {
            readout_error: 0.20,
        });
        assert!(good.speculation_accuracy > bad.speculation_accuracy);
    }

    #[test]
    fn leakage_population_is_suppressed_vs_unmitigated() {
        let config = quick_config();
        let exp = EraserExperiment::new(config.clone());
        let mitigated = exp.run(SpeculationMode::EraserM {
            readout_error: 0.05,
        });
        // Unmitigated baseline: same physics, no LRCs.
        let code = SurfaceCode::rotated(config.distance);
        let mut lp = 0.0;
        for trial in 0..config.trials {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(trial as u64));
            let mut sim = LeakageSimulator::new(code.clone(), config.params);
            for _ in 0..config.cycles {
                let _ = sim.run_cycle(&mut rng, None);
            }
            lp += sim.leakage_population();
        }
        lp /= config.trials as f64;
        assert!(
            mitigated.leakage_population < lp,
            "mitigated {} vs unmitigated {}",
            mitigated.leakage_population,
            lp
        );
    }

    #[test]
    fn logical_failure_rate_is_a_rate_for_both_decoders() {
        let mut config = quick_config();
        // More physical noise so the end-of-run decode has work to do.
        config.params.phys_error_per_cycle = 0.02;
        for kind in [DecoderKind::Greedy, DecoderKind::UnionFind] {
            config.decoder = kind;
            let exp = EraserExperiment::new(config.clone());
            let res = exp.run(SpeculationMode::EraserM {
                readout_error: 0.05,
            });
            assert!(
                (0.0..=1.0).contains(&res.logical_failure_rate),
                "{kind}: {}",
                res.logical_failure_rate
            );
        }
    }

    #[test]
    fn noiseless_run_never_fails_logically() {
        let config = EraserConfig {
            distance: 3,
            cycles: 4,
            trials: 40,
            params: LeakageParams {
                leak_per_gate: 0.0,
                transport_per_gate: 0.0,
                malfunction_flip_prob: 0.0,
                phys_error_per_cycle: 0.0,
                meas_error: 0.0,
                ..LeakageParams::default()
            },
            ..EraserConfig::default()
        };
        let exp = EraserExperiment::new(config);
        let res = exp.run(SpeculationMode::Eraser);
        assert_eq!(res.logical_failure_rate, 0.0);
    }

    #[test]
    fn false_flag_rate_is_small() {
        let exp = EraserExperiment::new(quick_config());
        let res = exp.run(SpeculationMode::EraserM {
            readout_error: 0.05,
        });
        assert!(res.false_flag_rate < 0.08, "rate {}", res.false_flag_rate);
    }
}
