//! Rotated surface-code lattice geometry.

/// The Pauli type a stabilizer measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabilizerKind {
    /// X-type (detects Z errors).
    X,
    /// Z-type (detects X errors).
    Z,
}

/// One weight-2/weight-4 stabilizer of the rotated surface code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stabilizer {
    /// X or Z type.
    pub kind: StabilizerKind,
    /// Indices of the data qubits in this check's support (2 on the
    /// boundary, 4 in the bulk).
    pub data: Vec<usize>,
}

/// A distance-`d` rotated surface code: `d²` data qubits on a `d x d` grid
/// and `d² − 1` stabilizers on the dual checkerboard.
///
/// # Examples
///
/// ```
/// use mlr_qec::SurfaceCode;
///
/// let code = SurfaceCode::rotated(7);
/// assert_eq!(code.n_data(), 49);
/// assert_eq!(code.n_stabilizers(), 48);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceCode {
    d: usize,
    stabilizers: Vec<Stabilizer>,
    /// `neighbors[q]` lists the stabilizer indices touching data qubit `q`.
    neighbors: Vec<Vec<usize>>,
}

impl SurfaceCode {
    /// Builds the rotated surface code of odd distance `d >= 3`.
    ///
    /// Uses the standard construction: data qubits at integer grid points
    /// `(r, c)` with `0 <= r, c < d`; ancilla sites at half-integer plaquette
    /// centres, alternating X/Z in a checkerboard, with weight-2 checks on
    /// alternating boundary edges.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or smaller than 3.
    pub fn rotated(d: usize) -> Self {
        assert!(d >= 3 && d % 2 == 1, "distance must be odd and >= 3");
        let data_index = |r: usize, c: usize| r * d + c;
        let mut stabilizers = Vec::new();

        // Plaquette centres live between grid rows/cols: site (r, c) covers
        // data qubits (r-1..r, c-1..c) intersected with the grid. Site
        // parity decides X vs Z; boundary sites are kept only where the
        // rotated code has its weight-2 checks.
        for r in 0..=d {
            for c in 0..=d {
                let mut support = Vec::new();
                for (dr, dc) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
                    // Data qubit at (r-1+dr, c-1+dc) if inside the grid.
                    let rr = (r + dr).checked_sub(1);
                    let cc = (c + dc).checked_sub(1);
                    if let (Some(rr), Some(cc)) = (rr, cc) {
                        if rr < d && cc < d {
                            support.push(data_index(rr, cc));
                        }
                    }
                }
                if support.len() < 2 {
                    continue; // corners
                }
                let is_z = (r + c) % 2 == 0;
                // Boundary rule for the rotated code: top/bottom rows keep
                // only one colour, left/right columns the other.
                if support.len() == 2 {
                    let on_horizontal_boundary = r == 0 || r == d;
                    let on_vertical_boundary = c == 0 || c == d;
                    if on_horizontal_boundary && is_z {
                        continue;
                    }
                    if on_vertical_boundary && !is_z {
                        continue;
                    }
                }
                stabilizers.push(Stabilizer {
                    kind: if is_z {
                        StabilizerKind::Z
                    } else {
                        StabilizerKind::X
                    },
                    data: support,
                });
            }
        }

        let mut neighbors = vec![Vec::new(); d * d];
        for (s, stab) in stabilizers.iter().enumerate() {
            for &q in &stab.data {
                neighbors[q].push(s);
            }
        }
        Self {
            d,
            stabilizers,
            neighbors,
        }
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.d
    }

    /// Number of data qubits (`d²`).
    pub fn n_data(&self) -> usize {
        self.d * self.d
    }

    /// Number of stabilizers / ancilla qubits (`d² − 1`).
    pub fn n_stabilizers(&self) -> usize {
        self.stabilizers.len()
    }

    /// All stabilizers.
    pub fn stabilizers(&self) -> &[Stabilizer] {
        &self.stabilizers
    }

    /// The stabilizers touching data qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn stabilizers_of(&self, q: usize) -> &[usize] {
        &self.neighbors[q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_rotated_code() {
        for d in [3usize, 5, 7] {
            let code = SurfaceCode::rotated(d);
            assert_eq!(code.n_data(), d * d);
            assert_eq!(code.n_stabilizers(), d * d - 1, "distance {d}");
            let x = code
                .stabilizers()
                .iter()
                .filter(|s| s.kind == StabilizerKind::X)
                .count();
            assert_eq!(x, (d * d - 1) / 2, "balanced X/Z at distance {d}");
        }
    }

    #[test]
    fn stabilizer_weights_are_2_or_4() {
        let code = SurfaceCode::rotated(5);
        for s in code.stabilizers() {
            assert!(s.data.len() == 2 || s.data.len() == 4);
        }
        let weight4 = code
            .stabilizers()
            .iter()
            .filter(|s| s.data.len() == 4)
            .count();
        // Bulk plaquettes: (d-1)^2 of them.
        assert_eq!(weight4, 16);
    }

    #[test]
    fn every_data_qubit_is_checked() {
        let code = SurfaceCode::rotated(7);
        for q in 0..code.n_data() {
            let stabs = code.stabilizers_of(q);
            assert!(
                (2..=4).contains(&stabs.len()),
                "qubit {q} touches {} checks",
                stabs.len()
            );
            // Each qubit must be covered by at least one X and one Z check.
            let kinds: std::collections::HashSet<_> =
                stabs.iter().map(|&s| code.stabilizers()[s].kind).collect();
            assert_eq!(kinds.len(), 2, "qubit {q} missing a check type");
        }
    }

    #[test]
    #[should_panic(expected = "distance must be odd")]
    fn rejects_even_distance() {
        let _ = SurfaceCode::rotated(4);
    }
}
