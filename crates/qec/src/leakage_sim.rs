//! Stochastic leakage dynamics of a surface code under repeated QEC cycles.
//!
//! [`LeakageSimulator`] tracks, per data and ancilla qubit, whether it is
//! leaked to `|2⟩` and whether it carries an X/Z error. One
//! [`LeakageSimulator::run_cycle`] call executes the four CNOT layers
//! (gate-induced leakage, leakage transport, malfunction flips), measures
//! every stabilizer (leaked support randomises the outcome), and applies
//! seepage — producing the syndromes and, in ERASER+M mode, the
//! three-level ancilla readout flags the speculation rules in
//! [`crate::eraser`] consume. The end-of-run truth
//! ([`LeakageSimulator::x_error_qubits`],
//! [`LeakageSimulator::leaked_data_qubits`]) is what a
//! [`HeraldModel`](crate::HeraldModel) turns into the decoder's erasure
//! set.
//!
//! # Examples
//!
//! ```
//! use mlr_qec::{LeakageParams, LeakageSimulator, SurfaceCode};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut sim = LeakageSimulator::new(SurfaceCode::rotated(3), LeakageParams::default());
//! let mut rng = StdRng::seed_from_u64(5);
//! sim.inject_data_leak(4);
//! let record = sim.run_cycle(&mut rng, Some(0.0)); // perfect 3-level readout
//! assert_eq!(record.syndromes.len(), sim.code().n_stabilizers());
//! assert!(sim.leakage_population() > 0.0);
//! // An ideal LRC clears the leak.
//! let params = LeakageParams { lrc_success: 1.0, ..LeakageParams::default() };
//! let mut sim = LeakageSimulator::new(SurfaceCode::rotated(3), params);
//! sim.inject_data_leak(4);
//! sim.apply_lrc_data(4, &mut rng);
//! assert!(!sim.data_leaked(4));
//! ```

use rand::Rng;

use crate::{StabilizerKind, SurfaceCode};

/// Physical rates of the leakage simulator, per QEC cycle unless noted.
///
/// Defaults follow the regimes the paper cites: gate-induced leakage in the
/// `10⁻⁴–10⁻³` band per gate (Sec. III-A), 1.5–2 % leakage transport per
/// CNOT with a leaked partner, and imperfect LRCs that can themselves
/// inject errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageParams {
    /// Probability a data qubit leaks per two-qubit gate (4 gates/cycle).
    pub leak_per_gate: f64,
    /// Probability a leaked qubit transfers leakage to its CNOT partner,
    /// per gate (the paper measures 1.5–2 %).
    pub transport_per_gate: f64,
    /// Probability a leaked control randomises its CNOT partner's parity
    /// contribution (gate malfunction, Sec. III-A).
    pub malfunction_flip_prob: f64,
    /// Intrinsic depolarising/bit-flip error per data qubit per cycle.
    pub phys_error_per_cycle: f64,
    /// Classical measurement flip probability per ancilla readout.
    pub meas_error: f64,
    /// Probability a leaked qubit relaxes back to the computational
    /// subspace on its own during one cycle (seepage).
    pub seepage_per_cycle: f64,
    /// Probability an applied LRC actually removes leakage.
    pub lrc_success: f64,
    /// Probability an LRC applied to a *non-leaked* qubit leaks it — why
    /// indiscriminate LRC application is harmful (Sec. III-B).
    pub lrc_induced_leak: f64,
}

impl Default for LeakageParams {
    fn default() -> Self {
        Self {
            leak_per_gate: 5e-4,
            transport_per_gate: 0.0175,
            malfunction_flip_prob: 0.4,
            phys_error_per_cycle: 3e-3,
            meas_error: 8e-3,
            seepage_per_cycle: 0.04,
            lrc_success: 0.98,
            lrc_induced_leak: 1e-3,
        }
    }
}

/// Per-cycle observation of the code: ancilla syndromes plus (optionally)
/// multi-level ancilla outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleRecord {
    /// Syndrome bit per stabilizer (parity of the adjacent data errors,
    /// corrupted by leakage and measurement noise).
    pub syndromes: Vec<bool>,
    /// Multi-level readout of each ancilla: `true` where the ancilla was
    /// *reported* leaked (only populated in ERASER+M mode; subject to the
    /// configured readout error).
    pub ancilla_leak_flags: Vec<bool>,
}

/// Stochastic simulator of leakage spreading through a rotated surface code
/// under repeated stabilizer-measurement cycles.
///
/// Tracks, per data and ancilla qubit, whether it is leaked and whether it
/// carries an X/Z error; one call to [`LeakageSimulator::run_cycle`]
/// executes the four CNOT layers (with leaked-gate malfunction and
/// transport), measures all stabilizers, and resets ancillas.
#[derive(Debug, Clone)]
pub struct LeakageSimulator {
    code: SurfaceCode,
    params: LeakageParams,
    /// Leak state of data qubits.
    data_leaked: Vec<bool>,
    /// Leak state of ancilla qubits.
    ancilla_leaked: Vec<bool>,
    /// X-error frame on data qubits (as seen by Z checks).
    data_x: Vec<bool>,
    /// Z-error frame on data qubits (as seen by X checks).
    data_z: Vec<bool>,
    prev_syndromes: Vec<bool>,
}

impl LeakageSimulator {
    /// Creates a fresh (error- and leakage-free) simulator.
    pub fn new(code: SurfaceCode, params: LeakageParams) -> Self {
        let n_data = code.n_data();
        let n_anc = code.n_stabilizers();
        Self {
            code,
            params,
            data_leaked: vec![false; n_data],
            ancilla_leaked: vec![false; n_anc],
            data_x: vec![false; n_data],
            data_z: vec![false; n_data],
            prev_syndromes: vec![false; n_anc],
        }
    }

    /// Borrows the lattice.
    pub fn code(&self) -> &SurfaceCode {
        &self.code
    }

    /// Borrows the parameters.
    pub fn params(&self) -> &LeakageParams {
        &self.params
    }

    /// True leak state of data qubit `q` (ground truth for speculation
    /// accuracy).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn data_leaked(&self, q: usize) -> bool {
        self.data_leaked[q]
    }

    /// True leak state of ancilla `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn ancilla_leaked(&self, a: usize) -> bool {
        self.ancilla_leaked[a]
    }

    /// The data qubits currently carrying an X-frame error — the error
    /// set a Z-sector [`Decoder`](crate::Decoder) is asked to undo at the
    /// end of a run.
    pub fn x_error_qubits(&self) -> Vec<usize> {
        (0..self.data_x.len()).filter(|&q| self.data_x[q]).collect()
    }

    /// The data qubits currently leaked — the erasure heralds a perfect
    /// multi-level readout would hand
    /// [`Decoder::decode_with_erasures`](crate::Decoder::decode_with_erasures).
    pub fn leaked_data_qubits(&self) -> Vec<usize> {
        (0..self.data_leaked.len())
            .filter(|&q| self.data_leaked[q])
            .collect()
    }

    /// Fraction of data qubits currently leaked — the paper's "leakage
    /// population".
    pub fn leakage_population(&self) -> f64 {
        let leaked = self.data_leaked.iter().filter(|&&l| l).count();
        leaked as f64 / self.data_leaked.len() as f64
    }

    /// Executes one full QEC cycle and returns the observation record.
    ///
    /// `multi_level_readout_error` is `Some(err)` in ERASER+M mode: ancilla
    /// levels are then read with three-level readout whose per-shot error
    /// probability is `err` (this is where the readout discriminator
    /// quality from the main study enters the QEC picture).
    pub fn run_cycle(
        &mut self,
        rng: &mut impl Rng,
        multi_level_readout_error: Option<f64>,
    ) -> CycleRecord {
        let p = self.params;
        let n_anc = self.code.n_stabilizers();

        // 1. Intrinsic physical errors on data qubits.
        for q in 0..self.code.n_data() {
            if rng.gen::<f64>() < p.phys_error_per_cycle {
                self.data_x[q] ^= true;
            }
            if rng.gen::<f64>() < p.phys_error_per_cycle {
                self.data_z[q] ^= true;
            }
        }

        // 2. Four CNOT layers: gate-induced leakage, transport, malfunction.
        //    Each stabilizer couples to each of its data qubits once.
        let stab_supports: Vec<(usize, Vec<usize>)> = self
            .code
            .stabilizers()
            .iter()
            .enumerate()
            .map(|(a, s)| (a, s.data.clone()))
            .collect();
        for (a, support) in &stab_supports {
            for &q in support {
                // Fresh gate-induced leakage on either partner.
                if !self.data_leaked[q] && rng.gen::<f64>() < p.leak_per_gate {
                    self.data_leaked[q] = true;
                }
                if !self.ancilla_leaked[*a] && rng.gen::<f64>() < p.leak_per_gate {
                    self.ancilla_leaked[*a] = true;
                }
                // Leakage transport between partners.
                if self.data_leaked[q]
                    && !self.ancilla_leaked[*a]
                    && rng.gen::<f64>() < p.transport_per_gate
                {
                    self.ancilla_leaked[*a] = true;
                }
                if self.ancilla_leaked[*a]
                    && !self.data_leaked[q]
                    && rng.gen::<f64>() < p.transport_per_gate
                {
                    self.data_leaked[q] = true;
                }
                // Malfunction: a leaked partner randomises the data qubit's
                // error frame.
                if (self.data_leaked[q] || self.ancilla_leaked[*a])
                    && rng.gen::<f64>() < p.malfunction_flip_prob
                {
                    if rng.gen::<bool>() {
                        self.data_x[q] ^= true;
                    } else {
                        self.data_z[q] ^= true;
                    }
                }
            }
        }

        // 3. Stabilizer measurement.
        let mut syndromes = vec![false; n_anc];
        let mut ancilla_leak_flags = vec![false; n_anc];
        for (a, stab) in self.code.stabilizers().iter().enumerate() {
            let mut parity = false;
            let mut any_leaked_data = false;
            for &q in &stab.data {
                if self.data_leaked[q] {
                    any_leaked_data = true;
                    continue; // a leaked qubit contributes no defined parity
                }
                parity ^= match stab.kind {
                    StabilizerKind::Z => self.data_x[q],
                    StabilizerKind::X => self.data_z[q],
                };
            }
            // Leaked support or leaked ancilla randomises the outcome.
            if any_leaked_data || self.ancilla_leaked[a] {
                parity = rng.gen::<bool>();
            }
            if rng.gen::<f64>() < p.meas_error {
                parity ^= true;
            }
            syndromes[a] = parity;

            // Multi-level ancilla readout (ERASER+M): report the ancilla's
            // level with the given three-level readout error.
            if let Some(err) = multi_level_readout_error {
                let truth = self.ancilla_leaked[a];
                ancilla_leak_flags[a] = if rng.gen::<f64>() < err {
                    !truth
                } else {
                    truth
                };
            }
        }

        // 4. Ancilla reset (does not lift |2>) and seepage.
        for leaked in self.data_leaked.iter_mut().chain(&mut self.ancilla_leaked) {
            if *leaked && rng.gen::<f64>() < p.seepage_per_cycle {
                *leaked = false;
            }
        }

        self.prev_syndromes.clone_from(&syndromes);
        CycleRecord {
            syndromes,
            ancilla_leak_flags,
        }
    }

    /// Applies a Leakage Reduction Circuit to data qubit `q`: clears
    /// leakage with probability `lrc_success`; on a non-leaked qubit it may
    /// *induce* leakage with probability `lrc_induced_leak`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_lrc_data(&mut self, q: usize, rng: &mut impl Rng) {
        if self.data_leaked[q] {
            if rng.gen::<f64>() < self.params.lrc_success {
                self.data_leaked[q] = false;
            }
        } else if rng.gen::<f64>() < self.params.lrc_induced_leak {
            self.data_leaked[q] = true;
        }
    }

    /// Applies an LRC to ancilla `a` (same semantics as
    /// [`LeakageSimulator::apply_lrc_data`]).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn apply_lrc_ancilla(&mut self, a: usize, rng: &mut impl Rng) {
        if self.ancilla_leaked[a] {
            if rng.gen::<f64>() < self.params.lrc_success {
                self.ancilla_leaked[a] = false;
            }
        } else if rng.gen::<f64>() < self.params.lrc_induced_leak {
            self.ancilla_leaked[a] = true;
        }
    }

    /// Force-leaks data qubit `q` (used by injection experiments/tests).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn inject_data_leak(&mut self, q: usize) {
        self.data_leaked[q] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim() -> LeakageSimulator {
        LeakageSimulator::new(SurfaceCode::rotated(5), LeakageParams::default())
    }

    #[test]
    fn clean_code_has_quiet_syndromes() {
        let params = LeakageParams {
            leak_per_gate: 0.0,
            phys_error_per_cycle: 0.0,
            meas_error: 0.0,
            ..LeakageParams::default()
        };
        let mut s = LeakageSimulator::new(SurfaceCode::rotated(5), params);
        let mut rng = StdRng::seed_from_u64(1);
        let rec = s.run_cycle(&mut rng, None);
        assert!(rec.syndromes.iter().all(|&b| !b));
        assert_eq!(s.leakage_population(), 0.0);
    }

    #[test]
    fn leaked_qubit_randomises_adjacent_checks() {
        let params = LeakageParams {
            phys_error_per_cycle: 0.0,
            meas_error: 0.0,
            seepage_per_cycle: 0.0,
            transport_per_gate: 0.0,
            malfunction_flip_prob: 0.0,
            leak_per_gate: 0.0,
            ..LeakageParams::default()
        };
        let code = SurfaceCode::rotated(5);
        let mut s = LeakageSimulator::new(code, params);
        s.inject_data_leak(12); // bulk qubit
        let mut rng = StdRng::seed_from_u64(3);
        let adjacent = s.code().stabilizers_of(12).to_vec();
        let mut flips = 0usize;
        let cycles = 400;
        for _ in 0..cycles {
            let rec = s.run_cycle(&mut rng, None);
            flips += adjacent.iter().filter(|&&a| rec.syndromes[a]).count();
        }
        // Each adjacent check fires ~50% of cycles.
        let rate = flips as f64 / (cycles * adjacent.len()) as f64;
        assert!((rate - 0.5).abs() < 0.06, "rate {rate}");
    }

    #[test]
    fn leakage_grows_without_mitigation() {
        let mut s = sim();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let _ = s.run_cycle(&mut rng, None);
        }
        assert!(s.leakage_population() > 0.0);
    }

    #[test]
    fn lrc_clears_injected_leak() {
        let params = LeakageParams {
            lrc_success: 1.0,
            ..LeakageParams::default()
        };
        let mut s = LeakageSimulator::new(SurfaceCode::rotated(3), params);
        let mut rng = StdRng::seed_from_u64(7);
        s.inject_data_leak(4);
        assert!(s.data_leaked(4));
        s.apply_lrc_data(4, &mut rng);
        assert!(!s.data_leaked(4));
    }

    #[test]
    fn multi_level_readout_reports_ancilla_leakage() {
        let params = LeakageParams {
            leak_per_gate: 0.0,
            transport_per_gate: 1.0, // transport leaks to ancillas fast
            seepage_per_cycle: 0.0,
            ..LeakageParams::default()
        };
        let mut s = LeakageSimulator::new(SurfaceCode::rotated(3), params);
        s.inject_data_leak(4);
        let mut rng = StdRng::seed_from_u64(11);
        let rec = s.run_cycle(&mut rng, Some(0.0)); // perfect 3-level readout
        let flagged = rec.ancilla_leak_flags.iter().filter(|&&f| f).count();
        assert!(flagged > 0, "transported leakage must be visible");
        // Flags match ground truth exactly at zero readout error.
        for (a, &flag) in rec.ancilla_leak_flags.iter().enumerate() {
            assert_eq!(flag, s.ancilla_leaked(a));
        }
    }
}
