//! The leakage-injection CNOT experiments of Sec. III-A.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stochastic two-qubit CNOT channel with leakage effects, matching the
/// behaviour the paper measures on IBM Lagos:
///
/// * a small intrinsic chance of leaking either participant per gate;
/// * with a **leaked control**, the target suffers random bit flips and
///   receives the control's leakage with probability 1.5–2 % per gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnotChannel {
    /// Intrinsic leakage probability per participant per gate.
    pub gate_leak_prob: f64,
    /// Leakage transport probability from a leaked control to the target.
    pub transport_prob: f64,
    /// Probability the target's computational bit randomises when the
    /// control is leaked (gate malfunction).
    pub malfunction_flip_prob: f64,
}

impl Default for CnotChannel {
    fn default() -> Self {
        Self {
            gate_leak_prob: 0.004,
            transport_prob: 0.014,
            malfunction_flip_prob: 0.35,
        }
    }
}

/// One qubit's state in this experiment: a computational bit plus a leak
/// flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Q {
    bit: bool,
    leaked: bool,
}

impl CnotChannel {
    /// Applies the channel to (control, target).
    fn apply(&self, control: &mut Q, target: &mut Q, rng: &mut impl Rng) {
        // Intrinsic gate-induced leakage.
        if !control.leaked && rng.gen::<f64>() < self.gate_leak_prob {
            control.leaked = true;
        }
        if !target.leaked && rng.gen::<f64>() < self.gate_leak_prob {
            target.leaked = true;
        }
        if control.leaked {
            // Malfunction: no clean CNOT happens; the target may flip
            // randomly and may inherit the leakage.
            if !target.leaked && rng.gen::<f64>() < self.transport_prob {
                target.leaked = true;
            }
            if rng.gen::<f64>() < self.malfunction_flip_prob {
                target.bit = rng.gen::<bool>();
            }
        } else if !target.leaked {
            // Ideal CNOT on the computational subspace.
            target.bit ^= control.bit;
        }
    }
}

/// Results of a repeated-CNOT leakage-injection run.
#[derive(Debug, Clone, PartialEq)]
pub struct CnotExperimentResult {
    /// Fraction of shots whose target ended leaked, per CNOT count
    /// (index 0 = after 1 gate).
    pub target_leak_vs_gates: Vec<f64>,
    /// Fraction of shots whose target bit differs from the ideal-CNOT
    /// expectation after one gate (bit-flip evidence).
    pub single_gate_flip_rate: f64,
    /// Fraction of shots where a single gate transported leakage
    /// control→target (the paper measures 1.5–2 %).
    pub single_gate_transfer_rate: f64,
}

/// The Sec. III-A experiment: initialise the control in `|2⟩`, run repeated
/// CNOTs, and measure leakage growth in the target over many shots.
///
/// # Examples
///
/// ```
/// use mlr_qec::RepeatedCnotExperiment;
///
/// let exp = RepeatedCnotExperiment::new(Default::default(), 2_000, 12, 5);
/// let with_leak = exp.run(true);
/// let without = exp.run(false);
/// let ratio = with_leak.target_leak_vs_gates[11] / without.target_leak_vs_gates[11];
/// assert!(ratio > 2.0); // the paper reports ~3x growth
/// ```
#[derive(Debug, Clone)]
pub struct RepeatedCnotExperiment {
    channel: CnotChannel,
    shots: usize,
    n_gates: usize,
    seed: u64,
}

impl RepeatedCnotExperiment {
    /// Creates the experiment (`shots` = 10 000 in the paper, 12 CNOTs).
    pub fn new(channel: CnotChannel, shots: usize, n_gates: usize, seed: u64) -> Self {
        Self {
            channel,
            shots,
            n_gates,
            seed,
        }
    }

    /// Runs the experiment with the control initialised leaked
    /// (`control_leaked = true`) or in `|1⟩` (`false`, the baseline).
    #[allow(clippy::needless_range_loop)] // gate index also addresses leak_counts
    pub fn run(&self, control_leaked: bool) -> CnotExperimentResult {
        let mut leak_counts = vec![0usize; self.n_gates];
        let mut flips = 0usize;
        let mut transfers = 0usize;
        let mut rng = StdRng::seed_from_u64(self.seed);

        for _ in 0..self.shots {
            let mut control = Q {
                bit: true,
                leaked: control_leaked,
            };
            let mut target = Q::default();
            for g in 0..self.n_gates {
                let target_before = target;
                self.channel.apply(&mut control, &mut target, &mut rng);
                if g == 0 {
                    // Single-gate statistics.
                    let ideal_bit = if control_leaked {
                        target_before.bit // leaked control: ideally no-op
                    } else {
                        target_before.bit ^ control.bit
                    };
                    if !target.leaked && target.bit != ideal_bit {
                        flips += 1;
                    }
                    if control_leaked && target.leaked && !target_before.leaked {
                        transfers += 1;
                    }
                }
                if target.leaked {
                    leak_counts[g] += 1;
                }
            }
        }

        let n = self.shots as f64;
        CnotExperimentResult {
            target_leak_vs_gates: leak_counts.iter().map(|&c| c as f64 / n).collect(),
            single_gate_flip_rate: flips as f64 / n,
            single_gate_transfer_rate: transfers as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment() -> RepeatedCnotExperiment {
        RepeatedCnotExperiment::new(CnotChannel::default(), 20_000, 12, 9)
    }

    #[test]
    fn leaked_control_grows_target_leakage_about_3x() {
        let exp = experiment();
        let leaked = exp.run(true);
        let clean = exp.run(false);
        let ratio = leaked.target_leak_vs_gates[11] / clean.target_leak_vs_gates[11].max(1e-9);
        assert!(
            (2.0..5.0).contains(&ratio),
            "growth ratio {ratio} (paper: ~3x)"
        );
    }

    #[test]
    fn single_gate_transfer_in_paper_band() {
        let exp = experiment();
        let res = exp.run(true);
        assert!(
            (0.012..0.022).contains(&res.single_gate_transfer_rate),
            "transfer {} (paper: 1.5-2%)",
            res.single_gate_transfer_rate
        );
    }

    #[test]
    fn leaked_control_causes_random_flips() {
        let exp = experiment();
        let leaked = exp.run(true);
        let clean = exp.run(false);
        assert!(leaked.single_gate_flip_rate > 0.1);
        assert!(clean.single_gate_flip_rate < 0.01);
    }

    #[test]
    fn leakage_is_monotone_in_gate_count() {
        let res = experiment().run(true);
        for w in res.target_leak_vs_gates.windows(2) {
            assert!(w[1] >= w[0] - 0.01);
        }
    }
}
