//! Erasure-herald models: how the end-of-run leakage flags handed to
//! [`Decoder::decode_with_erasures`](crate::Decoder::decode_with_erasures)
//! are *measured*, not just assumed.
//!
//! PR 3 heralded erasures from the simulator's ground-truth leak state,
//! which sidesteps the paper's central argument: the *quality* of the
//! multi-level readout determines how much QEC benefit leakage detection
//! buys (Table VI). A [`HeraldModel`] closes that gap — it maps the true
//! per-qubit leak state to the flag set a real readout chain would report,
//! so false positives erase healthy qubits and false negatives miss leaked
//! ones, and both propagate into the decoder:
//!
//! * [`GroundTruthHerald`] — the PR 3 behaviour, kept as the zero-noise
//!   reference (and proven bit-for-bit identical to a zero-error
//!   confusion channel by the property tests in
//!   `crates/qec/tests/herald_noise.rs`);
//! * [`ConfusionMatrixHerald`] — a calibrated two-outcome channel
//!   parameterized by false-positive / false-negative assignment error,
//!   the knob the Table VI-style sweep scans;
//! * discriminator-backed — `DiscriminatorHerald` in `mlr-core` implements
//!   this trait by replaying verdicts the actual multi-level discriminator
//!   produced on simulated calibration traces (the `mlr-qec` crate stays
//!   dependency-free, so the readout-stack-backed model lives one layer
//!   up).
//!
//! [`herald_sweep`] is the driver behind `mlr qec sweep` and
//! `repro_herald_sweep`: it scans herald assignment error across decoders
//! and distances and reports the resulting logical failure rate.
//!
//! # Examples
//!
//! ```
//! use mlr_qec::{ConfusionMatrixHerald, GroundTruthHerald, HeraldModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let truth = vec![false, true, false, true];
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // Ground truth reports exactly the leaked set…
//! assert_eq!(GroundTruthHerald.herald(&truth, &mut rng), truth);
//! // …and so does a zero-error confusion channel.
//! let perfect = ConfusionMatrixHerald::symmetric(0.0);
//! assert_eq!(perfect.herald(&truth, &mut rng), truth);
//! // A certain-misassignment channel inverts every decision.
//! let inverted = ConfusionMatrixHerald::symmetric(1.0);
//! let flags = inverted.herald(&truth, &mut rng);
//! assert!(flags.iter().zip(&truth).all(|(f, t)| f != t));
//! ```

use rand::rngs::StdRng;
use rand::Rng;

use crate::{
    DecoderKind, EraserConfig, EraserExperiment, EraserResult, LeakageParams, SpeculationMode,
};

/// A model of the end-of-run erasure-herald measurement: given the true
/// leak state of every data qubit, produce the flag set the readout chain
/// *reports* to [`Decoder::decode_with_erasures`](crate::Decoder::decode_with_erasures).
///
/// Implementations must be deterministic given the rng state so sweeps and
/// tests stay seed-reproducible.
pub trait HeraldModel {
    /// Maps the true per-qubit leak state to reported erasure flags.
    ///
    /// `leaked[q]` is the ground-truth leak state of data qubit `q`; the
    /// returned vector has the same length, `true` where the model reports
    /// a leak. Noise is drawn from `rng`.
    fn herald(&self, leaked: &[bool], rng: &mut StdRng) -> Vec<bool>;

    /// Human-readable model name for tables and logs.
    fn name(&self) -> String;
}

/// The perfect herald: reports exactly the true leak state (PR 3's
/// behaviour, kept as the zero-noise endpoint of every sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroundTruthHerald;

impl HeraldModel for GroundTruthHerald {
    fn herald(&self, leaked: &[bool], _rng: &mut StdRng) -> Vec<bool> {
        leaked.to_vec()
    }

    fn name(&self) -> String {
        "ground-truth".to_owned()
    }
}

/// A calibrated binary confusion channel over the leak/not-leak decision.
///
/// Each qubit's report is flipped independently: a healthy qubit is
/// flagged with probability `p_false_positive` (erasing a qubit that
/// carried no leak), a leaked qubit is missed with probability
/// `p_false_negative`. [`ConfusionMatrixHerald::symmetric`] sets both to
/// one assignment-error value — the x-axis of the Table VI-style sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfusionMatrixHerald {
    /// P(report leaked | not leaked).
    pub p_false_positive: f64,
    /// P(report healthy | leaked).
    pub p_false_negative: f64,
}

impl ConfusionMatrixHerald {
    /// Builds the channel from both error arms.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p_false_positive: f64, p_false_negative: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_false_positive),
            "p_false_positive out of range"
        );
        assert!(
            (0.0..=1.0).contains(&p_false_negative),
            "p_false_negative out of range"
        );
        Self {
            p_false_positive,
            p_false_negative,
        }
    }

    /// A symmetric channel: both error arms equal `assignment_error`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment_error` is outside `[0, 1]`.
    pub fn symmetric(assignment_error: f64) -> Self {
        Self::new(assignment_error, assignment_error)
    }
}

impl HeraldModel for ConfusionMatrixHerald {
    fn herald(&self, leaked: &[bool], rng: &mut StdRng) -> Vec<bool> {
        leaked
            .iter()
            .map(|&truth| {
                let p_flip = if truth {
                    self.p_false_negative
                } else {
                    self.p_false_positive
                };
                // A zero-probability arm draws nothing, keeping the rng
                // stream bit-identical to the ground-truth path — the
                // property the zero-noise equivalence tests pin.
                if p_flip > 0.0 && rng.gen::<f64>() < p_flip {
                    !truth
                } else {
                    truth
                }
            })
            .collect()
    }

    fn name(&self) -> String {
        if self.p_false_positive == self.p_false_negative {
            format!("confusion({:.3})", self.p_false_positive)
        } else {
            format!(
                "confusion(fp {:.3}, fn {:.3})",
                self.p_false_positive, self.p_false_negative
            )
        }
    }
}

/// Configuration of [`herald_sweep`]: the grid of distances, decoders, and
/// herald assignment errors to scan, plus the per-point ERASER+M settings.
#[derive(Debug, Clone, PartialEq)]
pub struct HeraldSweepConfig {
    /// Surface-code distances to scan (the acceptance curve uses {3, 5}).
    pub distances: Vec<usize>,
    /// Decoders to scan (greedy ignores the heralds; union-find consumes
    /// them, so the gap between the two curves is the value of erasure
    /// information at that readout quality).
    pub decoders: Vec<DecoderKind>,
    /// Symmetric herald assignment errors to scan; `0.0` reproduces the
    /// ground-truth-herald results bit-for-bit.
    pub herald_errors: Vec<f64>,
    /// QEC cycles per trial.
    pub cycles: usize,
    /// Trials per grid point.
    pub trials: usize,
    /// Physical leakage/error rates shared by every point.
    pub params: LeakageParams,
    /// Three-level ancilla readout error of the ERASER+M speculation loop
    /// (the per-cycle signal; the herald error is the end-of-run signal).
    pub readout_error: f64,
    /// Master seed; every grid point at the same (distance, seed) replays
    /// the same leakage trajectories, so curves differ only through the
    /// herald channel (common-random-numbers coupling).
    pub seed: u64,
}

impl Default for HeraldSweepConfig {
    fn default() -> Self {
        Self {
            distances: vec![3, 5],
            decoders: vec![DecoderKind::Greedy, DecoderKind::UnionFind],
            herald_errors: vec![0.0, 0.02, 0.05, 0.10, 0.20],
            cycles: 10,
            trials: 200,
            params: LeakageParams::default(),
            readout_error: 0.05,
            seed: 71,
        }
    }
}

/// One grid point of a [`herald_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct HeraldSweepPoint {
    /// Code distance of this point.
    pub distance: usize,
    /// Decoder fed the heralded erasures.
    pub decoder: DecoderKind,
    /// Symmetric herald assignment error applied at end-of-run.
    pub herald_error: f64,
    /// Full ERASER+M outcome, including `logical_failure_rate` and the
    /// realised herald false-positive / false-negative rates.
    pub result: EraserResult,
}

/// Scans herald assignment error across decoders and distances, running
/// one ERASER+M experiment per grid point and reporting the logical
/// failure rate — the engine behind `mlr qec sweep` and
/// `repro_herald_sweep`.
///
/// Points sharing a distance share leakage trajectories (same seed), so
/// along the herald-error axis the curves are coupled: the only thing that
/// changes is how faithfully the end-of-run leak state is reported.
///
/// # Examples
///
/// ```
/// use mlr_qec::{herald_sweep, HeraldSweepConfig};
///
/// let config = HeraldSweepConfig {
///     distances: vec![3],
///     herald_errors: vec![0.0, 0.3],
///     cycles: 2,
///     trials: 10,
///     ..HeraldSweepConfig::default()
/// };
/// let points = herald_sweep(&config);
/// // distances × decoders × errors grid points, in scan order.
/// assert_eq!(points.len(), 1 * 2 * 2);
/// assert!(points
///     .iter()
///     .all(|p| (0.0..=1.0).contains(&p.result.logical_failure_rate)));
/// ```
pub fn herald_sweep(config: &HeraldSweepConfig) -> Vec<HeraldSweepPoint> {
    let mut points = Vec::with_capacity(
        config.distances.len() * config.decoders.len() * config.herald_errors.len(),
    );
    for &distance in &config.distances {
        for &decoder in &config.decoders {
            let experiment = EraserExperiment::new(EraserConfig {
                distance,
                cycles: config.cycles,
                trials: config.trials,
                params: config.params,
                seed: config.seed,
                decoder,
            });
            for &herald_error in &config.herald_errors {
                let herald = ConfusionMatrixHerald::symmetric(herald_error);
                let result = experiment.run_with_herald(
                    SpeculationMode::EraserM {
                        readout_error: config.readout_error,
                    },
                    &herald,
                );
                points.push(HeraldSweepPoint {
                    distance,
                    decoder,
                    herald_error,
                    result,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ground_truth_reports_exactly_the_leaked_set() {
        let truth = vec![true, false, true, true, false];
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(GroundTruthHerald.herald(&truth, &mut rng), truth);
    }

    #[test]
    fn zero_error_confusion_is_transparent_and_draws_nothing() {
        let truth = vec![true, false, false, true];
        let herald = ConfusionMatrixHerald::symmetric(0.0);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(herald.herald(&truth, &mut a), truth);
        // The rng stream must be untouched (bit-for-bit PR 3 equivalence).
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn certain_error_inverts_every_decision() {
        let truth = vec![true, false, true];
        let herald = ConfusionMatrixHerald::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let flags = herald.herald(&truth, &mut rng);
        assert!(flags.iter().zip(&truth).all(|(f, t)| *f != *t));
    }

    #[test]
    fn asymmetric_arms_apply_to_the_right_class() {
        // Only false positives: leaked qubits are always reported.
        let fp_only = ConfusionMatrixHerald::new(1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let flags = fp_only.herald(&[true, false], &mut rng);
        assert_eq!(flags, vec![true, true]);
        // Only false negatives: healthy qubits are never flagged.
        let fn_only = ConfusionMatrixHerald::new(0.0, 1.0);
        let flags = fn_only.herald(&[true, false], &mut rng);
        assert_eq!(flags, vec![false, false]);
    }

    #[test]
    #[should_panic(expected = "p_false_positive out of range")]
    fn confusion_rejects_bad_probability() {
        let _ = ConfusionMatrixHerald::new(1.5, 0.0);
    }

    #[test]
    fn sweep_covers_the_full_grid_in_scan_order() {
        let config = HeraldSweepConfig {
            distances: vec![3],
            decoders: vec![DecoderKind::UnionFind],
            herald_errors: vec![0.0, 0.5],
            cycles: 2,
            trials: 5,
            ..HeraldSweepConfig::default()
        };
        let points = herald_sweep(&config);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].herald_error, 0.0);
        assert_eq!(points[1].herald_error, 0.5);
        assert!(points.iter().all(|p| p.distance == 3));
    }

    #[test]
    fn sweep_zero_error_point_matches_ground_truth_run() {
        let config = HeraldSweepConfig {
            distances: vec![3],
            decoders: vec![DecoderKind::UnionFind],
            herald_errors: vec![0.0],
            cycles: 3,
            trials: 20,
            ..HeraldSweepConfig::default()
        };
        let points = herald_sweep(&config);
        let reference = EraserExperiment::new(EraserConfig {
            distance: 3,
            cycles: 3,
            trials: 20,
            params: config.params,
            seed: config.seed,
            decoder: DecoderKind::UnionFind,
        })
        .run(SpeculationMode::EraserM {
            readout_error: config.readout_error,
        });
        assert_eq!(points[0].result, reference);
    }
}
