//! Weighted union-find decoder with first-class erasure support.
//!
//! The decoder follows Delfosse–Nickerson (almost-linear-time decoding of
//! topological codes): defects seed clusters on the matching graph, odd
//! clusters grow outward in half-edge steps (smallest cluster first), and
//! once every cluster is even or touches the open boundary, a peeling pass
//! over the grown spanning forest extracts the correction. Unlike greedy
//! matching, this restores the full `⌊(d−1)/2⌋` fault tolerance of the
//! code at every distance.
//!
//! Erasures are what make this decoder the natural endpoint for the
//! paper's leakage heralds: an erased qubit (e.g. one the multi-level
//! readout reported leaked) is a zero-weight edge, so its endpoints are
//! merged before growth starts and the peeling stage can place corrections
//! there for free — see [`UnionFindDecoder::decode_with_erasures`]. The
//! herald models in [`crate::herald`] are what produce those erasure sets
//! (faithfully or noisily) from the true leak state.
//!
//! # Examples
//!
//! Two X faults on an erased pair that would defeat greedy matching at
//! d = 5 decode cleanly once the erasure is heralded:
//!
//! ```
//! use mlr_qec::{xor_support, Decoder, StabilizerKind, SurfaceCode, UnionFindDecoder};
//!
//! let code = SurfaceCode::rotated(5);
//! let decoder = UnionFindDecoder::new(&code, StabilizerKind::Z);
//! let error = [0usize, 20]; // boundary-column pair (column 0 rows 0 and 4)
//! let syndrome = decoder.syndrome_of(&error);
//! let correction = decoder.decode_with_erasures(&syndrome, &error);
//! let residual = xor_support(&error, &correction);
//! assert!(decoder.syndrome_of(&residual).iter().all(|&s| !s));
//! assert!(!decoder.is_logical_error(&residual));
//! ```

use std::collections::VecDeque;

use crate::sector::Sector;
use crate::{Decoder, StabilizerKind, SurfaceCode};

/// One matching-graph edge: a data qubit linking two sector checks, or a
/// check and a virtual boundary vertex.
#[derive(Debug, Clone, Copy)]
struct Edge {
    u: usize,
    v: usize,
    /// Growth budget in half-edge units (uniform 2 unless weighted).
    weight: u32,
}

/// Weighted union-find decoder for one Pauli sector of a [`SurfaceCode`].
///
/// Decodes X errors through the Z checks (`StabilizerKind::Z`) or Z errors
/// through the X checks, chosen at construction. Every data qubit is one
/// matching-graph edge: between its two sector checks in the bulk, or
/// between its single check and a private virtual boundary vertex on the
/// sector's open boundary.
///
/// # Examples
///
/// ```
/// use mlr_qec::{StabilizerKind, SurfaceCode, UnionFindDecoder};
///
/// let code = SurfaceCode::rotated(3);
/// let decoder = UnionFindDecoder::new(&code, StabilizerKind::Z);
/// // A single X error on qubit 4 (the centre) triggers its Z checks…
/// let syndrome = decoder.syndrome_of(&[4]);
/// // …and the decoder proposes exactly that qubit.
/// assert_eq!(decoder.decode(&syndrome), vec![4]);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    sector: Sector,
    /// Checks first (`0..n_checks`), then one virtual vertex per boundary
    /// data qubit.
    n_vertices: usize,
    /// `edges[q]` is data qubit `q`'s matching-graph edge.
    edges: Vec<Edge>,
    /// Edge ids incident to each vertex.
    incident: Vec<Vec<usize>>,
}

impl UnionFindDecoder {
    /// Builds the decoder for the checks of `sector` on `code` with
    /// uniform edge weights (every data qubit costs two half-edge growth
    /// steps).
    pub fn new(code: &SurfaceCode, sector: StabilizerKind) -> Self {
        Self::with_qubit_weights(code, sector, &vec![2; code.n_data()])
    }

    /// Builds the decoder with a per-qubit growth budget in half-edge
    /// units: a qubit with a higher physical error rate can be given a
    /// smaller weight so clusters grow across it sooner (the weighted
    /// union-find variant). Erasures are *not* baked in here — they are
    /// per-shot inputs to [`UnionFindDecoder::decode_with_erasures`].
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != code.n_data()` or any weight is zero.
    pub fn with_qubit_weights(code: &SurfaceCode, sector: StabilizerKind, weights: &[u32]) -> Self {
        assert_eq!(weights.len(), code.n_data(), "one weight per data qubit");
        assert!(
            weights.iter().all(|&w| w >= 1),
            "zero weights are per-shot erasures, not decoder structure"
        );
        let sector = Sector::new(code, sector);
        let n_checks = sector.n_checks();
        let mut edges = Vec::with_capacity(sector.n_data);
        let mut n_virtual = 0usize;
        for (q, &weight) in weights.iter().enumerate() {
            let touching = &sector.check_of[q];
            let (u, v) = match touching.len() {
                2 => (touching[0], touching[1]),
                1 => {
                    let virt = n_checks + n_virtual;
                    n_virtual += 1;
                    (touching[0], virt)
                }
                n => unreachable!("qubit {q} touches {n} sector checks"),
            };
            edges.push(Edge { u, v, weight });
        }
        let n_vertices = n_checks + n_virtual;
        let mut incident = vec![Vec::new(); n_vertices];
        for (e, edge) in edges.iter().enumerate() {
            incident[edge.u].push(e);
            incident[edge.v].push(e);
        }
        Self {
            sector,
            n_vertices,
            edges,
            incident,
        }
    }

    /// Number of checks in this sector.
    pub fn n_checks(&self) -> usize {
        self.sector.n_checks()
    }

    /// The sector syndrome of an error set: which checks see odd overlap
    /// with the flipped data qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn syndrome_of(&self, flipped: &[usize]) -> Vec<bool> {
        self.sector.syndrome_of(flipped)
    }

    /// `true` if `residual` (error ⊕ correction) implements a logical
    /// operator, i.e. overlaps the logical support an odd number of times.
    pub fn is_logical_error(&self, residual: &[usize]) -> bool {
        self.sector.is_logical_error(residual)
    }

    /// Decodes a sector syndrome into a proposed set of data-qubit flips
    /// (sorted; each qubit at most once).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length differs from
    /// [`UnionFindDecoder::n_checks`].
    pub fn decode(&self, syndrome: &[bool]) -> Vec<usize> {
        self.decode_with_erasures(syndrome, &[])
    }

    /// Decodes with erasure information: `erased_qubits` (e.g. data qubits
    /// the multi-level readout heralded as leaked) become zero-weight
    /// edges, so their endpoints start out merged and the correction can
    /// traverse them at no growth cost. An error confined to the erased
    /// set is always corrected exactly (up to stabilizers) as long as the
    /// erased set does not itself support a logical operator.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length differs from
    /// [`UnionFindDecoder::n_checks`] or an erased qubit index is out of
    /// range.
    pub fn decode_with_erasures(&self, syndrome: &[bool], erased_qubits: &[usize]) -> Vec<usize> {
        assert_eq!(syndrome.len(), self.n_checks(), "syndrome length");
        assert!(
            erased_qubits.iter().all(|&q| q < self.edges.len()),
            "erased qubit out of range"
        );
        if syndrome.iter().all(|&s| !s) {
            // Erasures without defects need no correction.
            return Vec::new();
        }
        let mut state = DecodeState::new(self, syndrome, erased_qubits);
        state.grow();
        state.peel()
    }
}

impl Decoder for UnionFindDecoder {
    fn n_checks(&self) -> usize {
        UnionFindDecoder::n_checks(self)
    }

    fn syndrome_of(&self, flipped: &[usize]) -> Vec<bool> {
        UnionFindDecoder::syndrome_of(self, flipped)
    }

    fn decode(&self, syndrome: &[bool]) -> Vec<usize> {
        UnionFindDecoder::decode(self, syndrome)
    }

    fn decode_with_erasures(&self, syndrome: &[bool], erased_qubits: &[usize]) -> Vec<usize> {
        UnionFindDecoder::decode_with_erasures(self, syndrome, erased_qubits)
    }

    fn is_logical_error(&self, residual: &[usize]) -> bool {
        UnionFindDecoder::is_logical_error(self, residual)
    }
}

/// Per-decode cluster state: a union-find forest over matching-graph
/// vertices plus edge growth counters.
struct DecodeState<'a> {
    dec: &'a UnionFindDecoder,
    /// Effective edge weights for this shot (erasures zeroed).
    weight: Vec<u32>,
    /// Half-edge growth accumulated per edge.
    growth: Vec<u32>,
    /// Fully-grown edges (growth reached weight): the peeling substrate.
    grown: Vec<bool>,
    /// Union-find forest.
    parent: Vec<usize>,
    size: Vec<usize>,
    /// At each root: defect-count parity of the cluster.
    parity: Vec<bool>,
    /// At each root: does the cluster contain a virtual boundary vertex?
    boundary: Vec<bool>,
    /// At each root: candidate frontier edges (compacted lazily).
    frontier: Vec<Vec<usize>>,
    /// Whether `frontier[v]` was seeded from `incident[v]` yet — frontiers
    /// are populated on demand so sparse syndromes never pay for cloning
    /// the whole graph's incidence lists.
    frontier_seeded: Vec<bool>,
    /// Live defect flags (consumed by peeling).
    defect: Vec<bool>,
}

impl<'a> DecodeState<'a> {
    fn new(dec: &'a UnionFindDecoder, syndrome: &[bool], erased_qubits: &[usize]) -> Self {
        let nv = dec.n_vertices;
        let n_checks = dec.n_checks();
        let mut defect = vec![false; nv];
        for (c, &s) in syndrome.iter().enumerate() {
            defect[c] = s;
        }
        // Indices were validated by `decode_with_erasures` before the
        // empty-syndrome early return.
        let mut weight: Vec<u32> = dec.edges.iter().map(|e| e.weight).collect();
        for &q in erased_qubits {
            weight[q] = 0;
        }
        let mut state = Self {
            dec,
            growth: vec![0; dec.edges.len()],
            grown: vec![false; dec.edges.len()],
            parent: (0..nv).collect(),
            size: vec![1; nv],
            parity: defect.clone(),
            boundary: (0..nv).map(|v| v >= n_checks).collect(),
            frontier: vec![Vec::new(); nv],
            frontier_seeded: vec![false; nv],
            defect,
            weight,
        };
        // Erased edges are born fully grown: merge their endpoints before
        // any growth, forming the zero-weight clusters leakage heralds
        // initialise.
        for e in 0..state.dec.edges.len() {
            if state.weight[e] == 0 && !state.grown[e] {
                state.grown[e] = true;
                state.union_edge(e);
            }
        }
        state
    }

    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }

    /// Seeds root `v`'s frontier from its incidence list on first use
    /// (correct only while `v` is still a singleton cluster — multi-vertex
    /// clusters were seeded when they formed).
    fn seed_frontier(&mut self, v: usize) {
        if !self.frontier_seeded[v] {
            self.frontier_seeded[v] = true;
            self.frontier[v].extend_from_slice(&self.dec.incident[v]);
        }
    }

    /// Merges the clusters at the endpoints of (fully-grown) edge `e`.
    fn union_edge(&mut self, e: usize) {
        let (u, v) = (self.dec.edges[e].u, self.dec.edges[e].v);
        let (mut a, mut b) = (self.find(u), self.find(v));
        if a == b {
            return;
        }
        self.seed_frontier(a);
        self.seed_frontier(b);
        if self.size[a] < self.size[b] {
            std::mem::swap(&mut a, &mut b);
        }
        self.parent[b] = a;
        self.size[a] += self.size[b];
        let parity_b = self.parity[b];
        self.parity[a] ^= parity_b;
        self.boundary[a] |= self.boundary[b];
        let mut frontier_b = std::mem::take(&mut self.frontier[b]);
        self.frontier[a].append(&mut frontier_b);
    }

    /// Drops grown and cluster-internal edges from root `r`'s frontier.
    fn compact_frontier(&mut self, r: usize) {
        let list = std::mem::take(&mut self.frontier[r]);
        let mut kept = Vec::with_capacity(list.len());
        for e in list {
            if self.grown[e] {
                continue;
            }
            let (u, v) = (self.dec.edges[e].u, self.dec.edges[e].v);
            if self.find(u) != self.find(v) {
                kept.push(e);
            }
        }
        self.frontier[r] = kept;
    }

    /// Grows odd boundary-free clusters half-edge by half-edge, smallest
    /// frontier first (the Delfosse–Nickerson growth schedule), merging
    /// clusters whenever an edge fills up, until every cluster is even or
    /// touches the boundary.
    fn grow(&mut self) {
        let nv = self.dec.n_vertices;
        // Every active (odd) cluster contains at least one defect, so only
        // defect vertices need scanning; a round stamp dedups roots
        // without clearing a whole-graph bitmap each round.
        let defect_vertices: Vec<usize> = (0..self.dec.n_checks())
            .filter(|&c| self.defect[c])
            .collect();
        let mut seen = vec![0u32; nv];
        let mut round = 0u32;
        let mut active = Vec::new();
        loop {
            round += 1;
            active.clear();
            for &v in &defect_vertices {
                let r = self.find(v);
                if seen[r] != round {
                    seen[r] = round;
                    if self.parity[r] && !self.boundary[r] {
                        active.push(r);
                    }
                }
            }
            if active.is_empty() {
                return;
            }
            for &r in &active {
                self.seed_frontier(r);
                self.compact_frontier(r);
            }
            let r = *active
                .iter()
                .min_by_key(|&&r| (self.frontier[r].len(), r))
                .expect("nonempty active set");
            // Every connected component of the matching graph contains
            // boundary vertices, so an odd cluster always has somewhere
            // left to grow.
            assert!(
                !self.frontier[r].is_empty(),
                "odd cluster with empty frontier"
            );
            let mut filled = Vec::new();
            for i in 0..self.frontier[r].len() {
                let e = self.frontier[r][i];
                self.growth[e] += 1;
                if self.growth[e] >= self.weight[e] && !self.grown[e] {
                    self.grown[e] = true;
                    filled.push(e);
                }
            }
            for e in filled {
                self.union_edge(e);
            }
        }
    }

    /// Extracts the correction by peeling the spanning forest of the grown
    /// region: leaves are processed first, and a leaf carrying a defect
    /// flips its tree edge and hands the defect to its parent. Boundary
    /// vertices are used as forest roots so leftover parity drains into
    /// the open boundary.
    fn peel(&mut self) -> Vec<usize> {
        let nv = self.dec.n_vertices;
        let n_checks = self.dec.n_checks();
        let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nv];
        for (e, edge) in self.dec.edges.iter().enumerate() {
            if self.grown[e] {
                adjacency[edge.u].push((e, edge.v));
                adjacency[edge.v].push((e, edge.u));
            }
        }
        let mut visited = vec![false; nv];
        let mut parent_edge = vec![usize::MAX; nv];
        let mut parent_vertex = vec![usize::MAX; nv];
        let mut order = Vec::with_capacity(nv);
        let mut queue = VecDeque::new();
        // Boundary vertices first so each tree that can reach the open
        // boundary is rooted there.
        for start in (n_checks..nv).chain(0..n_checks) {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &(e, w) in &adjacency[v] {
                    if !visited[w] {
                        visited[w] = true;
                        parent_edge[w] = e;
                        parent_vertex[w] = v;
                        queue.push_back(w);
                    }
                }
            }
        }
        let mut correction = Vec::new();
        for &v in order.iter().rev() {
            if self.defect[v] && parent_edge[v] != usize::MAX {
                correction.push(parent_edge[v]);
                self.defect[v] = false;
                self.defect[parent_vertex[v]] ^= true;
            }
        }
        // All real-check defects must have been annihilated (leftover
        // parity lives only on virtual boundary roots).
        debug_assert!(
            self.defect[..n_checks].iter().all(|&d| !d),
            "peeling left a defect on a check"
        );
        correction.sort_unstable();
        correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sector::xor_support;

    fn corrects(decoder: &UnionFindDecoder, error: &[usize], erased: &[usize]) -> bool {
        let syndrome = decoder.syndrome_of(error);
        let correction = decoder.decode_with_erasures(&syndrome, erased);
        let residual = xor_support(error, &correction);
        assert!(
            decoder.syndrome_of(&residual).iter().all(|&s| !s),
            "correction must annihilate the syndrome"
        );
        !decoder.is_logical_error(&residual)
    }

    #[test]
    fn single_errors_are_always_corrected_both_sectors() {
        for d in [3usize, 5, 7] {
            let code = SurfaceCode::rotated(d);
            for kind in [StabilizerKind::Z, StabilizerKind::X] {
                let decoder = UnionFindDecoder::new(&code, kind);
                for q in 0..code.n_data() {
                    assert!(
                        corrects(&decoder, &[q], &[]),
                        "d={d} {kind:?} qubit {q}: logical fault from single error"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_syndrome_decodes_to_nothing() {
        let code = SurfaceCode::rotated(5);
        let decoder = UnionFindDecoder::new(&code, StabilizerKind::Z);
        assert!(decoder.decode(&vec![false; decoder.n_checks()]).is_empty());
        // Erasures alone (no defects) also need no correction.
        assert!(decoder
            .decode_with_erasures(&vec![false; decoder.n_checks()], &[0, 7, 12])
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "erased qubit out of range")]
    fn out_of_range_erasure_panics_even_with_empty_syndrome() {
        let code = SurfaceCode::rotated(3);
        let decoder = UnionFindDecoder::new(&code, StabilizerKind::Z);
        let _ = decoder.decode_with_erasures(&vec![false; decoder.n_checks()], &[9999]);
    }

    #[test]
    fn erased_single_error_is_corrected_exactly() {
        // An error on a heralded-leaked qubit: the zero-weight edge means
        // the correction is found inside the erased cluster with no
        // growth, so the proposal is the erased qubit itself.
        let code = SurfaceCode::rotated(5);
        let decoder = UnionFindDecoder::new(&code, StabilizerKind::Z);
        for q in 0..code.n_data() {
            let syndrome = decoder.syndrome_of(&[q]);
            let correction = decoder.decode_with_erasures(&syndrome, &[q]);
            assert_eq!(correction, vec![q], "erased qubit {q}");
        }
    }

    #[test]
    fn erased_chain_is_corrected() {
        // A whole erased row segment carrying errors on a few of its
        // qubits: the correction must clear the syndrome without a logical
        // fault (erased set of weight < d cannot hide a logical).
        let code = SurfaceCode::rotated(5);
        let decoder = UnionFindDecoder::new(&code, StabilizerKind::Z);
        let erased = [6, 7, 8, 11]; // L-shaped bulk patch, weight 4 < d
        for errors in [&erased[..1], &erased[..2], &erased[..3], &erased[..]] {
            assert!(
                corrects(&decoder, errors, &erased),
                "erased-only error {errors:?} must be corrected"
            );
        }
    }

    #[test]
    fn uniform_weights_match_default_construction() {
        let code = SurfaceCode::rotated(3);
        let uniform =
            UnionFindDecoder::with_qubit_weights(&code, StabilizerKind::Z, &vec![2; code.n_data()]);
        let default = UnionFindDecoder::new(&code, StabilizerKind::Z);
        for q in 0..code.n_data() {
            let syndrome = default.syndrome_of(&[q]);
            assert_eq!(uniform.decode(&syndrome), default.decode(&syndrome));
        }
    }

    #[test]
    fn weighted_growth_avoids_expensive_qubits() {
        // Make the centre qubit look nearly error-free: the defect pair it
        // creates is then cheaper to route to the boundary than across the
        // heavy edge, so the correction avoids qubit 4 (still clearing the
        // syndrome).
        let code = SurfaceCode::rotated(3);
        let mut weights = vec![2u32; code.n_data()];
        weights[4] = 100;
        let heavy = UnionFindDecoder::with_qubit_weights(&code, StabilizerKind::Z, &weights);
        let syndrome = heavy.syndrome_of(&[4]);
        let correction = heavy.decode(&syndrome);
        assert!(!correction.contains(&4), "correction {correction:?}");
        let residual = xor_support(&[4], &correction);
        assert!(heavy.syndrome_of(&residual).iter().all(|&s| !s));
    }

    #[test]
    #[should_panic(expected = "one weight per data qubit")]
    fn rejects_wrong_weight_count() {
        let code = SurfaceCode::rotated(3);
        let _ = UnionFindDecoder::with_qubit_weights(&code, StabilizerKind::Z, &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "per-shot erasures")]
    fn rejects_zero_structural_weight() {
        let code = SurfaceCode::rotated(3);
        let _ = UnionFindDecoder::with_qubit_weights(&code, StabilizerKind::Z, &[0; 9]);
    }
}
