//! A greedy matching decoder for the rotated surface code, and the
//! logical-error-rate experiment it enables.
//!
//! The paper's motivation chain ends at QEC reliability: leakage corrupts
//! syndromes, syndromes feed a decoder, the decoder's failures are logical
//! errors. This module closes that loop with a deliberately simple,
//! fully-tested decoder: the globally cheapest defect pair (or
//! defect-to-boundary hop) is matched first along the check-adjacency
//! graph, and the matched paths are flipped. Greedy matching is not
//! minimum-weight perfect matching: tied boundary-column configurations
//! can draw a heavier-than-necessary correction, so the decoder tolerates
//! ⌈d/2⌉ faults instead of MWPM's ⌊(d−1)/2⌋ + 1, and its effective
//! distance grows every *other* code-distance step (d = 3 and d = 5 both
//! fail at two faults; d = 7 is the first to survive them). Within that
//! limit it corrects every single fault at any distance and shows the
//! qualitative suppression (logical error rate falling with effective
//! distance at low physical error rate) the experiments here need; an
//! MWPM/union-find upgrade is the natural next step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{StabilizerKind, SurfaceCode};

/// Greedy matching decoder for one Pauli sector of a [`SurfaceCode`].
///
/// Decodes X errors through the Z checks (`StabilizerKind::Z`) or Z errors
/// through the X checks, chosen at construction.
///
/// # Examples
///
/// ```
/// use mlr_qec::{GreedyDecoder, StabilizerKind, SurfaceCode};
///
/// let code = SurfaceCode::rotated(3);
/// let decoder = GreedyDecoder::new(&code, StabilizerKind::Z);
/// // A single X error on qubit 4 (the centre) triggers its Z checks…
/// let syndrome = decoder.syndrome_of(&[4]);
/// // …and the decoder proposes exactly that qubit.
/// assert_eq!(decoder.decode(&syndrome), vec![4]);
/// ```
#[derive(Debug, Clone)]
pub struct GreedyDecoder {
    /// Indices (into the code's stabilizer list) of the checks in this
    /// decoder's sector.
    checks: Vec<usize>,
    /// `check_of[q]` = sector-checks touching data qubit `q`.
    check_of: Vec<Vec<usize>>,
    /// Pairwise hop distances between sector checks (BFS over shared data
    /// qubits); `dist[a][b] = usize::MAX` if disconnected.
    dist: Vec<Vec<usize>>,
    /// `next_hop[a][b]` = the data qubit to flip first when walking from
    /// check `a` toward check `b`.
    next_hop: Vec<Vec<Option<usize>>>,
    /// Distance from each check to the open boundary (a data qubit with
    /// only one sector check), and the qubit realising it.
    boundary_dist: Vec<usize>,
    boundary_qubit: Vec<usize>,
    /// Data qubits of one representative logical operator for this sector:
    /// odd residual-error overlap with it means a logical fault.
    logical_support: Vec<usize>,
    n_data: usize,
}

impl GreedyDecoder {
    /// Builds the decoder for the checks of `sector` on `code`.
    pub fn new(code: &SurfaceCode, sector: StabilizerKind) -> Self {
        let n_data = code.n_data();
        let checks: Vec<usize> = code
            .stabilizers()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == sector)
            .map(|(i, _)| i)
            .collect();
        let index_of = |global: usize| checks.iter().position(|&c| c == global);

        let support: Vec<Vec<usize>> = checks
            .iter()
            .map(|&c| code.stabilizers()[c].data.clone())
            .collect();
        let mut check_of = vec![Vec::new(); n_data];
        for (c, sup) in support.iter().enumerate() {
            for &q in sup {
                check_of[q].push(c);
            }
        }

        // BFS from every sector check over "share a data qubit" edges,
        // remembering the first data qubit of each path.
        let n = checks.len();
        let mut dist = vec![vec![usize::MAX; n]; n];
        let mut next_hop = vec![vec![None; n]; n];
        for start in 0..n {
            dist[start][start] = 0;
            let mut frontier = vec![start];
            while let Some(&_) = frontier.first() {
                let mut next = Vec::new();
                for &c in &frontier {
                    for &q in &support[c] {
                        for &c2 in &check_of[q] {
                            if dist[start][c2] == usize::MAX {
                                dist[start][c2] = dist[start][c] + 1;
                                next_hop[start][c2] = if c == start {
                                    Some(q)
                                } else {
                                    next_hop[start][c]
                                };
                                next.push(c2);
                            }
                        }
                    }
                }
                frontier = next;
            }
        }
        // Paths are symmetric; next_hop[a][b] currently stores the first
        // hop walking from a, which is what decode() needs.
        let _ = index_of;

        // Boundary: data qubits touched by exactly one sector check.
        let mut boundary_dist = vec![usize::MAX; n];
        let mut boundary_qubit = vec![usize::MAX; n];
        for c in 0..n {
            // Direct boundary membership.
            for &q in &support[c] {
                if check_of[q].len() == 1 {
                    boundary_dist[c] = 1;
                    boundary_qubit[c] = q;
                    break;
                }
            }
        }
        // Propagate via pairwise distances: reach a boundary check, then
        // its boundary qubit.
        for c in 0..n {
            for b in 0..n {
                if boundary_dist[b] == 1 && dist[c][b] != usize::MAX {
                    let through = dist[c][b] + 1;
                    if through < boundary_dist[c] {
                        boundary_dist[c] = through;
                        boundary_qubit[c] = boundary_qubit[b];
                    }
                }
            }
        }

        // Conjugate-logical support for this sector's parity test. A
        // Z-sector residual is an X-type chain, so it is a logical fault
        // iff it anticommutes with the representative logical Z (the top
        // row); dually, X-sector residuals are tested against the logical
        // X (the left column). The parity is gauge invariant because every
        // opposite-sector stabilizer overlaps the support evenly.
        let d = code.distance();
        let logical_support: Vec<usize> = match sector {
            StabilizerKind::Z => (0..d).collect(),                // row 0
            StabilizerKind::X => (0..d).map(|r| r * d).collect(), // column 0
        };

        Self {
            checks,
            check_of,
            dist,
            next_hop,
            boundary_dist,
            boundary_qubit,
            logical_support,
            n_data,
        }
    }

    /// Number of checks in this sector.
    pub fn n_checks(&self) -> usize {
        self.checks.len()
    }

    /// The sector syndrome of an error set: which checks see odd overlap
    /// with the flipped data qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn syndrome_of(&self, flipped: &[usize]) -> Vec<bool> {
        let mut syn = vec![false; self.n_checks()];
        for &q in flipped {
            assert!(q < self.n_data, "qubit out of range");
            for &c in &self.check_of[q] {
                syn[c] ^= true;
            }
        }
        syn
    }

    /// Decodes a sector syndrome into a proposed set of data-qubit flips
    /// (sorted, deduplicated; an even number of flips per qubit cancels).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length differs from [`GreedyDecoder::n_checks`].
    pub fn decode(&self, syndrome: &[bool]) -> Vec<usize> {
        assert_eq!(syndrome.len(), self.n_checks(), "syndrome length");
        let mut defects: Vec<usize> = (0..self.n_checks()).filter(|&c| syndrome[c]).collect();
        let mut flips: Vec<usize> = Vec::new();

        // Globally greedy matching: repeatedly commit the cheapest
        // remaining match — either a defect pair or a defect-to-boundary
        // hop — rather than serving defects in index order. Index-order
        // greedy mis-pairs across the lattice often enough that larger
        // codes performed *worse* at realistic error rates; global
        // cheapest-first restores the distance suppression while staying
        // far simpler than minimum-weight perfect matching.
        while !defects.is_empty() {
            let mut best_pair: Option<(usize, usize, usize)> = None; // (dist, a, b)
            for (i, &a) in defects.iter().enumerate() {
                for &b in defects.iter().skip(i + 1) {
                    let d = self.dist[a][b];
                    if best_pair.is_none_or(|(bd, _, _)| d < bd) {
                        best_pair = Some((d, a, b));
                    }
                }
            }
            let best_boundary = defects
                .iter()
                .copied()
                .min_by_key(|&a| self.boundary_dist[a])
                .map(|a| (self.boundary_dist[a], a));
            match (best_pair, best_boundary) {
                (Some((d_pair, a, b)), Some((d_bound, _))) if d_pair <= d_bound => {
                    self.walk(a, b, &mut flips);
                    defects.retain(|&c| c != a && c != b);
                }
                (_, Some((_, a))) => {
                    // Match to the boundary: walk to the nearest boundary
                    // check, then flip its boundary qubit.
                    let target = self.nearest_boundary_check(a);
                    self.walk(a, target, &mut flips);
                    flips.push(self.boundary_qubit[target]);
                    defects.retain(|&c| c != a);
                }
                (Some((_, a, b)), None) => {
                    self.walk(a, b, &mut flips);
                    defects.retain(|&c| c != a && c != b);
                }
                (None, None) => unreachable!("nonempty defect set"),
            }
        }

        // Cancel double flips.
        flips.sort_unstable();
        let mut out = Vec::with_capacity(flips.len());
        let mut i = 0;
        while i < flips.len() {
            let mut j = i;
            while j < flips.len() && flips[j] == flips[i] {
                j += 1;
            }
            if (j - i) % 2 == 1 {
                out.push(flips[i]);
            }
            i = j;
        }
        out
    }

    /// `true` if `residual` (error ⊕ correction) implements a logical
    /// operator, i.e. overlaps the logical support an odd number of times.
    pub fn is_logical_error(&self, residual: &[usize]) -> bool {
        residual
            .iter()
            .filter(|q| self.logical_support.contains(q))
            .count()
            % 2
            == 1
    }

    fn nearest_boundary_check(&self, a: usize) -> usize {
        if self.boundary_dist[a] == 1 {
            return a;
        }
        (0..self.n_checks())
            .filter(|&b| self.boundary_dist[b] == 1 && self.dist[a][b] != usize::MAX)
            .min_by_key(|&b| self.dist[a][b])
            .expect("boundary reachable")
    }

    /// Pushes the data-qubit path from check `a` to check `b` onto `flips`.
    fn walk(&self, mut a: usize, b: usize, flips: &mut Vec<usize>) {
        while a != b {
            let q = self.next_hop[a][b].expect("connected checks");
            flips.push(q);
            // Advance: the neighbour of `a` through `q` that is closer to b.
            let next = self.check_of[q]
                .iter()
                .copied()
                .filter(|&c| c != a)
                .min_by_key(|&c| self.dist[c][b]);
            match next {
                Some(c) if self.dist[c][b] < self.dist[a][b] => a = c,
                // q was a boundary qubit or didn't help; stop to avoid loops.
                _ => break,
            }
        }
    }
}

/// Monte-Carlo logical error rate of the greedy decoder under IID X errors
/// of probability `p` (single noiseless syndrome round).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
///
/// # Examples
///
/// ```
/// use mlr_qec::{logical_error_rate, SurfaceCode};
///
/// let code = SurfaceCode::rotated(3);
/// let ler = logical_error_rate(&code, 0.01, 2_000, 7);
/// assert!(ler < 0.05);
/// ```
pub fn logical_error_rate(code: &SurfaceCode, p: f64, trials: usize, seed: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    assert!(trials > 0, "trials must be positive");
    let decoder = GreedyDecoder::new(code, StabilizerKind::Z);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for _ in 0..trials {
        let error: Vec<usize> = (0..code.n_data())
            .filter(|_| rng.gen::<f64>() < p)
            .collect();
        let syndrome = decoder.syndrome_of(&error);
        let correction = decoder.decode(&syndrome);
        // Residual = error xor correction.
        let mut residual: Vec<usize> = error.iter().chain(&correction).copied().collect();
        residual.sort_unstable();
        let mut xor = Vec::new();
        let mut i = 0;
        while i < residual.len() {
            let mut j = i;
            while j < residual.len() && residual[j] == residual[i] {
                j += 1;
            }
            if (j - i) % 2 == 1 {
                xor.push(residual[i]);
            }
            i = j;
        }
        // The correction must clear the syndrome…
        debug_assert!(decoder.syndrome_of(&xor).iter().all(|&s| !s));
        // …and a logical fault is an odd overlap with the logical operator.
        if decoder.is_logical_error(&xor) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_errors_are_always_corrected() {
        for d in [3usize, 5] {
            let code = SurfaceCode::rotated(d);
            let decoder = GreedyDecoder::new(&code, StabilizerKind::Z);
            for q in 0..code.n_data() {
                let syndrome = decoder.syndrome_of(&[q]);
                let correction = decoder.decode(&syndrome);
                // Correction must clear the syndrome.
                let mut residual = correction.clone();
                residual.push(q);
                residual.sort_unstable();
                let mut xor = Vec::new();
                let mut i = 0;
                while i < residual.len() {
                    let mut j = i;
                    while j < residual.len() && residual[j] == residual[i] {
                        j += 1;
                    }
                    if (j - i) % 2 == 1 {
                        xor.push(residual[i]);
                    }
                    i = j;
                }
                assert!(
                    decoder.syndrome_of(&xor).iter().all(|&s| !s),
                    "d={d} qubit {q}: residual syndrome"
                );
                assert!(
                    !decoder.is_logical_error(&xor),
                    "d={d} qubit {q}: logical fault from single error"
                );
            }
        }
    }

    #[test]
    fn empty_syndrome_decodes_to_nothing() {
        let code = SurfaceCode::rotated(5);
        let decoder = GreedyDecoder::new(&code, StabilizerKind::Z);
        assert!(decoder.decode(&vec![false; decoder.n_checks()]).is_empty());
    }

    #[test]
    fn x_sector_also_corrects_single_errors() {
        let code = SurfaceCode::rotated(3);
        let decoder = GreedyDecoder::new(&code, StabilizerKind::X);
        for q in 0..code.n_data() {
            let syndrome = decoder.syndrome_of(&[q]);
            let correction = decoder.decode(&syndrome);
            let mut all: Vec<usize> = correction.into_iter().chain([q]).collect();
            all.sort_unstable();
            let mut xor = Vec::new();
            let mut i = 0;
            while i < all.len() {
                let mut j = i;
                while j < all.len() && all[j] == all[i] {
                    j += 1;
                }
                if (j - i) % 2 == 1 {
                    xor.push(all[i]);
                }
                i = j;
            }
            assert!(decoder.syndrome_of(&xor).iter().all(|&s| !s), "qubit {q}");
        }
    }

    #[test]
    fn logical_error_rate_falls_with_distance_at_low_p() {
        // Greedy matching tolerates ⌈d/2⌉ faults rather than MWPM's
        // ⌊(d-1)/2⌋+1 (see the module docs), so its effective distance
        // only grows every other code-distance step: d=5 tolerates the
        // same two faults d=3 does, and the first clear suppression
        // appears at d=7. Compare across a full effective-distance step.
        let p = 0.008;
        let ler3 = logical_error_rate(&SurfaceCode::rotated(3), p, 20_000, 11);
        let ler7 = logical_error_rate(&SurfaceCode::rotated(7), p, 20_000, 11);
        assert!(
            ler7 < ler3,
            "distance should suppress errors: d3 {ler3} vs d7 {ler7}"
        );
    }

    #[test]
    fn greedy_effective_distance_steps_every_other_d() {
        // Pin the known greedy limitation so a future MWPM/union-find
        // decoder visibly lifts it: d=3 and d=5 both fail at two faults in
        // the left boundary column, d=7 survives every two-fault pattern
        // there.
        let two_fault_failure = |d: usize| -> bool {
            let code = SurfaceCode::rotated(d);
            let dec = GreedyDecoder::new(&code, StabilizerKind::Z);
            for a in 0..d {
                for b in (a + 1)..d {
                    let flipped = [a * d, b * d]; // column 0 pairs
                    let syn = dec.syndrome_of(&flipped);
                    let fix = dec.decode(&syn);
                    let mut residual: Vec<usize> = flipped.to_vec();
                    for q in fix {
                        if let Some(pos) = residual.iter().position(|&x| x == q) {
                            residual.remove(pos);
                        } else {
                            residual.push(q);
                        }
                    }
                    if dec.is_logical_error(&residual) {
                        return true;
                    }
                }
            }
            false
        };
        assert!(two_fault_failure(3), "d3 must fail at some 2-fault pattern");
        assert!(two_fault_failure(5), "d5 greedy limitation disappeared?");
        assert!(!two_fault_failure(7), "d7 should survive 2 boundary faults");
    }

    #[test]
    fn logical_error_rate_grows_with_p() {
        let code = SurfaceCode::rotated(3);
        let low = logical_error_rate(&code, 0.005, 3_000, 5);
        let high = logical_error_rate(&code, 0.08, 3_000, 5);
        assert!(high > low, "low {low} vs high {high}");
    }

    #[test]
    fn zero_noise_means_zero_logical_errors() {
        let code = SurfaceCode::rotated(3);
        assert_eq!(logical_error_rate(&code, 0.0, 500, 1), 0.0);
    }
}
