//! The [`Decoder`] abstraction, the greedy matching decoder, and the
//! logical-error-rate experiment they enable.
//!
//! The paper's motivation chain ends at QEC reliability: leakage corrupts
//! syndromes, syndromes feed a decoder, the decoder's failures are logical
//! errors. Two decoders implement the shared [`Decoder`] trait:
//!
//! * [`GreedyDecoder`] (this module) — the globally cheapest defect pair
//!   (or defect-to-boundary hop) is matched first along the
//!   check-adjacency graph and the matched paths are flipped. Greedy
//!   matching is not minimum-weight perfect matching: tied
//!   boundary-column configurations can draw a heavier-than-necessary
//!   correction, so its effective distance grows every *other*
//!   code-distance step (d = 3 and d = 5 both fail at two faults; d = 7 is
//!   the first to survive them). It is kept as the simple baseline the
//!   union-find upgrade is measured against.
//! * [`UnionFindDecoder`]
//!   (`crate::union_find`) — weighted union-find with erasure support,
//!   restoring the full `⌊(d−1)/2⌋` fault tolerance at every distance and
//!   consuming the leakage heralds multi-level readout produces.
//!
//! [`DecoderKind`] selects between them wherever a decoder is
//! configuration (the `mlr qec --decoder` flag, [`logical_error_rate`],
//! [`EraserConfig`](crate::EraserConfig)).

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sector::{cancel_pairs, xor_support, Sector};
use crate::{StabilizerKind, SurfaceCode, UnionFindDecoder};

/// A syndrome decoder for one Pauli sector of a surface code.
///
/// Implementations decode X errors through the Z checks or Z errors
/// through the X checks (chosen when the decoder is built), propose
/// data-qubit flips that annihilate a syndrome, and judge residuals
/// against a representative logical operator.
pub trait Decoder {
    /// Number of checks in this decoder's sector.
    fn n_checks(&self) -> usize;

    /// The sector syndrome of an error set: which checks see odd overlap
    /// with the flipped data qubits.
    fn syndrome_of(&self, flipped: &[usize]) -> Vec<bool>;

    /// Decodes a sector syndrome into a proposed set of data-qubit flips
    /// (sorted; each qubit at most once).
    fn decode(&self, syndrome: &[bool]) -> Vec<usize>;

    /// Decodes with erasure information: `erased_qubits` are data qubits
    /// heralded as erased (e.g. reported leaked by multi-level readout).
    ///
    /// The default implementation ignores the heralds and falls back to
    /// [`Decoder::decode`]; erasure-aware decoders override it.
    fn decode_with_erasures(&self, syndrome: &[bool], erased_qubits: &[usize]) -> Vec<usize> {
        let _ = erased_qubits;
        self.decode(syndrome)
    }

    /// `true` if `residual` (error ⊕ correction) implements a logical
    /// operator, i.e. overlaps the logical support an odd number of times.
    fn is_logical_error(&self, residual: &[usize]) -> bool;
}

/// Which [`Decoder`] implementation to build — the decoder choice threaded
/// through [`logical_error_rate`], the ERASER experiments, and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderKind {
    /// Greedy cheapest-first matching ([`GreedyDecoder`]).
    Greedy,
    /// Weighted union-find with erasure support
    /// ([`UnionFindDecoder`]).
    UnionFind,
}

impl DecoderKind {
    /// Builds the selected decoder for `sector` on `code`.
    pub fn build(self, code: &SurfaceCode, sector: StabilizerKind) -> Box<dyn Decoder> {
        match self {
            DecoderKind::Greedy => Box::new(GreedyDecoder::new(code, sector)),
            DecoderKind::UnionFind => Box::new(UnionFindDecoder::new(code, sector)),
        }
    }
}

impl fmt::Display for DecoderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecoderKind::Greedy => write!(f, "greedy"),
            DecoderKind::UnionFind => write!(f, "union-find"),
        }
    }
}

impl FromStr for DecoderKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "greedy" => Ok(DecoderKind::Greedy),
            "union-find" | "union_find" | "uf" => Ok(DecoderKind::UnionFind),
            other => Err(format!(
                "unknown decoder '{other}' (expected greedy or union-find)"
            )),
        }
    }
}

/// Greedy matching decoder for one Pauli sector of a [`SurfaceCode`].
///
/// Decodes X errors through the Z checks (`StabilizerKind::Z`) or Z errors
/// through the X checks, chosen at construction.
///
/// # Examples
///
/// ```
/// use mlr_qec::{GreedyDecoder, StabilizerKind, SurfaceCode};
///
/// let code = SurfaceCode::rotated(3);
/// let decoder = GreedyDecoder::new(&code, StabilizerKind::Z);
/// // A single X error on qubit 4 (the centre) triggers its Z checks…
/// let syndrome = decoder.syndrome_of(&[4]);
/// // …and the decoder proposes exactly that qubit.
/// assert_eq!(decoder.decode(&syndrome), vec![4]);
/// ```
#[derive(Debug, Clone)]
pub struct GreedyDecoder {
    /// Sector geometry: checks, supports, incidence, logical support.
    sector: Sector,
    /// Pairwise hop distances between sector checks (BFS over shared data
    /// qubits); `dist[a][b] = usize::MAX` if disconnected.
    dist: Vec<Vec<usize>>,
    /// `next_hop[a][b]` = the data qubit to flip first when walking from
    /// check `a` toward check `b`.
    next_hop: Vec<Vec<Option<usize>>>,
    /// Distance from each check to the open boundary (a data qubit with
    /// only one sector check), and the qubit realising it.
    boundary_dist: Vec<usize>,
    boundary_qubit: Vec<usize>,
}

impl GreedyDecoder {
    /// Builds the decoder for the checks of `sector` on `code`.
    pub fn new(code: &SurfaceCode, sector: StabilizerKind) -> Self {
        let sector = Sector::new(code, sector);

        // BFS from every sector check over "share a data qubit" edges,
        // remembering the first data qubit of each path.
        let n = sector.n_checks();
        let mut dist = vec![vec![usize::MAX; n]; n];
        let mut next_hop = vec![vec![None; n]; n];
        for start in 0..n {
            dist[start][start] = 0;
            let mut frontier = vec![start];
            while let Some(&_) = frontier.first() {
                let mut next = Vec::new();
                for &c in &frontier {
                    for &q in &sector.support[c] {
                        for &c2 in &sector.check_of[q] {
                            if dist[start][c2] == usize::MAX {
                                dist[start][c2] = dist[start][c] + 1;
                                next_hop[start][c2] = if c == start {
                                    Some(q)
                                } else {
                                    next_hop[start][c]
                                };
                                next.push(c2);
                            }
                        }
                    }
                }
                frontier = next;
            }
        }

        // Boundary: data qubits touched by exactly one sector check.
        let mut boundary_dist = vec![usize::MAX; n];
        let mut boundary_qubit = vec![usize::MAX; n];
        for c in 0..n {
            // Direct boundary membership.
            for &q in &sector.support[c] {
                if sector.check_of[q].len() == 1 {
                    boundary_dist[c] = 1;
                    boundary_qubit[c] = q;
                    break;
                }
            }
        }
        // Propagate via pairwise distances: reach a boundary check, then
        // its boundary qubit.
        for c in 0..n {
            for b in 0..n {
                if boundary_dist[b] == 1 && dist[c][b] != usize::MAX {
                    let through = dist[c][b] + 1;
                    if through < boundary_dist[c] {
                        boundary_dist[c] = through;
                        boundary_qubit[c] = boundary_qubit[b];
                    }
                }
            }
        }

        Self {
            sector,
            dist,
            next_hop,
            boundary_dist,
            boundary_qubit,
        }
    }

    /// Number of checks in this sector.
    pub fn n_checks(&self) -> usize {
        self.sector.n_checks()
    }

    /// The sector syndrome of an error set: which checks see odd overlap
    /// with the flipped data qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn syndrome_of(&self, flipped: &[usize]) -> Vec<bool> {
        self.sector.syndrome_of(flipped)
    }

    /// Decodes a sector syndrome into a proposed set of data-qubit flips
    /// (sorted, deduplicated; an even number of flips per qubit cancels).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length differs from [`GreedyDecoder::n_checks`].
    pub fn decode(&self, syndrome: &[bool]) -> Vec<usize> {
        assert_eq!(syndrome.len(), self.n_checks(), "syndrome length");
        let mut defects: Vec<usize> = (0..self.n_checks()).filter(|&c| syndrome[c]).collect();
        let mut flips: Vec<usize> = Vec::new();

        // Globally greedy matching: repeatedly commit the cheapest
        // remaining match — either a defect pair or a defect-to-boundary
        // hop — rather than serving defects in index order. Index-order
        // greedy mis-pairs across the lattice often enough that larger
        // codes performed *worse* at realistic error rates; global
        // cheapest-first restores the distance suppression while staying
        // far simpler than minimum-weight perfect matching.
        while !defects.is_empty() {
            let mut best_pair: Option<(usize, usize, usize)> = None; // (dist, a, b)
            for (i, &a) in defects.iter().enumerate() {
                for &b in defects.iter().skip(i + 1) {
                    let d = self.dist[a][b];
                    if best_pair.is_none_or(|(bd, _, _)| d < bd) {
                        best_pair = Some((d, a, b));
                    }
                }
            }
            let best_boundary = defects
                .iter()
                .copied()
                .min_by_key(|&a| self.boundary_dist[a])
                .map(|a| (self.boundary_dist[a], a));
            match (best_pair, best_boundary) {
                (Some((d_pair, a, b)), Some((d_bound, _))) if d_pair <= d_bound => {
                    self.walk(a, b, &mut flips);
                    defects.retain(|&c| c != a && c != b);
                }
                (_, Some((_, a))) => {
                    // Match to the boundary: walk to the nearest boundary
                    // check, then flip its boundary qubit.
                    let target = self.nearest_boundary_check(a);
                    self.walk(a, target, &mut flips);
                    flips.push(self.boundary_qubit[target]);
                    defects.retain(|&c| c != a);
                }
                (Some((_, a, b)), None) => {
                    self.walk(a, b, &mut flips);
                    defects.retain(|&c| c != a && c != b);
                }
                (None, None) => unreachable!("nonempty defect set"),
            }
        }

        // Cancel double flips.
        cancel_pairs(&mut flips)
    }

    /// `true` if `residual` (error ⊕ correction) implements a logical
    /// operator, i.e. overlaps the logical support an odd number of times.
    pub fn is_logical_error(&self, residual: &[usize]) -> bool {
        self.sector.is_logical_error(residual)
    }

    fn nearest_boundary_check(&self, a: usize) -> usize {
        if self.boundary_dist[a] == 1 {
            return a;
        }
        (0..self.n_checks())
            .filter(|&b| self.boundary_dist[b] == 1 && self.dist[a][b] != usize::MAX)
            .min_by_key(|&b| self.dist[a][b])
            .expect("boundary reachable")
    }

    /// Pushes the data-qubit path from check `a` to check `b` onto `flips`.
    fn walk(&self, mut a: usize, b: usize, flips: &mut Vec<usize>) {
        while a != b {
            let q = self.next_hop[a][b].expect("connected checks");
            flips.push(q);
            // Advance: the neighbour of `a` through `q` that is closer to b.
            let next = self.sector.check_of[q]
                .iter()
                .copied()
                .filter(|&c| c != a)
                .min_by_key(|&c| self.dist[c][b]);
            match next {
                Some(c) if self.dist[c][b] < self.dist[a][b] => a = c,
                // q was a boundary qubit or didn't help; stop to avoid loops.
                _ => break,
            }
        }
    }
}

impl Decoder for GreedyDecoder {
    fn n_checks(&self) -> usize {
        GreedyDecoder::n_checks(self)
    }

    fn syndrome_of(&self, flipped: &[usize]) -> Vec<bool> {
        GreedyDecoder::syndrome_of(self, flipped)
    }

    fn decode(&self, syndrome: &[bool]) -> Vec<usize> {
        GreedyDecoder::decode(self, syndrome)
    }

    fn is_logical_error(&self, residual: &[usize]) -> bool {
        GreedyDecoder::is_logical_error(self, residual)
    }
}

/// Monte-Carlo logical error rate of the chosen decoder under IID X errors
/// of probability `p` (single noiseless syndrome round).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `trials == 0`.
///
/// # Examples
///
/// ```
/// use mlr_qec::{logical_error_rate, DecoderKind, SurfaceCode};
///
/// let code = SurfaceCode::rotated(3);
/// let ler = logical_error_rate(&code, DecoderKind::UnionFind, 0.01, 2_000, 7);
/// assert!(ler < 0.05);
/// ```
pub fn logical_error_rate(
    code: &SurfaceCode,
    decoder: DecoderKind,
    p: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    assert!(trials > 0, "trials must be positive");
    let decoder = decoder.build(code, StabilizerKind::Z);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for _ in 0..trials {
        let error: Vec<usize> = (0..code.n_data())
            .filter(|_| rng.gen::<f64>() < p)
            .collect();
        let syndrome = decoder.syndrome_of(&error);
        let correction = decoder.decode(&syndrome);
        let residual = xor_support(&error, &correction);
        // The correction must clear the syndrome…
        debug_assert!(decoder.syndrome_of(&residual).iter().all(|&s| !s));
        // …and a logical fault is an odd overlap with the logical operator.
        if decoder.is_logical_error(&residual) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_errors_are_always_corrected() {
        for d in [3usize, 5] {
            let code = SurfaceCode::rotated(d);
            let decoder = GreedyDecoder::new(&code, StabilizerKind::Z);
            for q in 0..code.n_data() {
                let syndrome = decoder.syndrome_of(&[q]);
                let correction = decoder.decode(&syndrome);
                let residual = xor_support(&correction, &[q]);
                assert!(
                    decoder.syndrome_of(&residual).iter().all(|&s| !s),
                    "d={d} qubit {q}: residual syndrome"
                );
                assert!(
                    !decoder.is_logical_error(&residual),
                    "d={d} qubit {q}: logical fault from single error"
                );
            }
        }
    }

    #[test]
    fn empty_syndrome_decodes_to_nothing() {
        let code = SurfaceCode::rotated(5);
        let decoder = GreedyDecoder::new(&code, StabilizerKind::Z);
        assert!(decoder.decode(&vec![false; decoder.n_checks()]).is_empty());
    }

    #[test]
    fn x_sector_also_corrects_single_errors() {
        let code = SurfaceCode::rotated(3);
        let decoder = GreedyDecoder::new(&code, StabilizerKind::X);
        for q in 0..code.n_data() {
            let syndrome = decoder.syndrome_of(&[q]);
            let correction = decoder.decode(&syndrome);
            let residual = xor_support(&correction, &[q]);
            assert!(
                decoder.syndrome_of(&residual).iter().all(|&s| !s),
                "qubit {q}"
            );
        }
    }

    #[test]
    fn logical_error_rate_falls_with_distance_at_low_p() {
        // Greedy matching tolerates ⌈d/2⌉ faults rather than MWPM's
        // ⌊(d-1)/2⌋+1 (see the module docs), so its effective distance
        // only grows every other code-distance step: d=5 tolerates the
        // same two faults d=3 does, and the first clear suppression
        // appears at d=7. Compare across a full effective-distance step.
        // (The union-find decoder's per-distance suppression is pinned in
        // `tests/fault_coverage.rs`.)
        let p = 0.008;
        let kind = DecoderKind::Greedy;
        let ler3 = logical_error_rate(&SurfaceCode::rotated(3), kind, p, 20_000, 11);
        let ler7 = logical_error_rate(&SurfaceCode::rotated(7), kind, p, 20_000, 11);
        assert!(
            ler7 < ler3,
            "distance should suppress errors: d3 {ler3} vs d7 {ler7}"
        );
    }

    #[test]
    fn greedy_effective_distance_steps_every_other_d() {
        // Pin the known greedy limitation the union-find decoder lifts:
        // d=3 and d=5 both fail at two faults in the left boundary column,
        // d=7 survives every two-fault pattern there. The companion test
        // `union_find_corrects_the_boundary_column_faults_greedy_misses`
        // (tests/fault_coverage.rs) asserts union-find handles the same
        // d=5 patterns.
        let two_fault_failure = |d: usize| -> bool {
            let code = SurfaceCode::rotated(d);
            let dec = GreedyDecoder::new(&code, StabilizerKind::Z);
            for a in 0..d {
                for b in (a + 1)..d {
                    let flipped = [a * d, b * d]; // column 0 pairs
                    let syn = dec.syndrome_of(&flipped);
                    let fix = dec.decode(&syn);
                    let residual = xor_support(&flipped, &fix);
                    if dec.is_logical_error(&residual) {
                        return true;
                    }
                }
            }
            false
        };
        assert!(two_fault_failure(3), "d3 must fail at some 2-fault pattern");
        assert!(two_fault_failure(5), "d5 greedy limitation disappeared?");
        assert!(!two_fault_failure(7), "d7 should survive 2 boundary faults");
    }

    #[test]
    fn logical_error_rate_grows_with_p() {
        let code = SurfaceCode::rotated(3);
        for kind in [DecoderKind::Greedy, DecoderKind::UnionFind] {
            let low = logical_error_rate(&code, kind, 0.005, 3_000, 5);
            let high = logical_error_rate(&code, kind, 0.08, 3_000, 5);
            assert!(high > low, "{kind}: low {low} vs high {high}");
        }
    }

    #[test]
    fn zero_noise_means_zero_logical_errors() {
        let code = SurfaceCode::rotated(3);
        for kind in [DecoderKind::Greedy, DecoderKind::UnionFind] {
            assert_eq!(logical_error_rate(&code, kind, 0.0, 500, 1), 0.0);
        }
    }

    #[test]
    fn decoder_kind_parses_and_displays() {
        assert_eq!("greedy".parse::<DecoderKind>(), Ok(DecoderKind::Greedy));
        for alias in ["union-find", "union_find", "uf"] {
            assert_eq!(alias.parse::<DecoderKind>(), Ok(DecoderKind::UnionFind));
        }
        assert!("mwpm".parse::<DecoderKind>().is_err());
        assert_eq!(DecoderKind::Greedy.to_string(), "greedy");
        assert_eq!(DecoderKind::UnionFind.to_string(), "union-find");
    }

    #[test]
    fn trait_objects_decode_through_both_kinds() {
        let code = SurfaceCode::rotated(3);
        for kind in [DecoderKind::Greedy, DecoderKind::UnionFind] {
            let dec: Box<dyn Decoder> = kind.build(&code, StabilizerKind::Z);
            let syndrome = dec.syndrome_of(&[4]);
            assert_eq!(dec.decode(&syndrome), vec![4], "{kind}");
            // The default-or-overridden erasure entry point is callable on
            // every kind; greedy ignores the herald, union-find uses it.
            let fixed = dec.decode_with_erasures(&syndrome, &[4]);
            let residual = xor_support(&fixed, &[4]);
            assert!(dec.syndrome_of(&residual).iter().all(|&s| !s), "{kind}");
        }
    }
}
