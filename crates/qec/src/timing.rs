//! QEC cycle timing (Sec. VII-B): how a faster readout shortens the
//! surface-code cycle.

/// Timing model of one surface-code QEC cycle, following the Surface-17
/// schedule of Versluis et al. (Phys. Rev. Applied 8, 034021): a layer of
/// basis-change single-qubit gates, four two-qubit interaction steps, the
/// closing basis change, then ancilla measurement.
///
/// # Examples
///
/// ```
/// use mlr_qec::QecCycleTiming;
///
/// let t = QecCycleTiming::versluis_surface17(1000.0);
/// assert_eq!(t.cycle_ns(), 1200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QecCycleTiming {
    /// Single-qubit gate duration, nanoseconds.
    pub single_qubit_gate_ns: f64,
    /// Two-qubit (CZ) gate duration, nanoseconds.
    pub two_qubit_gate_ns: f64,
    /// Number of two-qubit interaction steps per cycle (4 for the surface
    /// code).
    pub n_interaction_steps: usize,
    /// Number of single-qubit gate layers per cycle (2: opening and closing
    /// basis changes).
    pub n_single_qubit_layers: usize,
    /// Ancilla readout duration, nanoseconds — the knob the paper's 20 %
    /// faster readout turns.
    pub measurement_ns: f64,
}

impl QecCycleTiming {
    /// The Surface-17 schedule with 20 ns single-qubit gates, 40 ns CZs,
    /// four interaction steps, and the given measurement time.
    pub fn versluis_surface17(measurement_ns: f64) -> Self {
        Self {
            single_qubit_gate_ns: 20.0,
            two_qubit_gate_ns: 40.0,
            n_interaction_steps: 4,
            n_single_qubit_layers: 2,
            measurement_ns,
        }
    }

    /// Total cycle duration in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        self.n_single_qubit_layers as f64 * self.single_qubit_gate_ns
            + self.n_interaction_steps as f64 * self.two_qubit_gate_ns
            + self.measurement_ns
    }

    /// Fraction of the cycle spent in measurement.
    pub fn measurement_fraction(&self) -> f64 {
        self.measurement_ns / self.cycle_ns()
    }

    /// Relative cycle-time reduction achieved by `faster` over `self`.
    pub fn relative_reduction(&self, faster: &QecCycleTiming) -> f64 {
        (self.cycle_ns() - faster.cycle_ns()) / self.cycle_ns()
    }

    /// Total runtime of `cycles` QEC rounds, nanoseconds.
    pub fn total_ns(&self, cycles: usize) -> f64 {
        self.cycle_ns() * cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sec7b_reduction_is_about_17_percent() {
        // 1 us readout -> 800 ns readout (the paper's 200 ns saving).
        let base = QecCycleTiming::versluis_surface17(1000.0);
        let fast = QecCycleTiming::versluis_surface17(800.0);
        let r = base.relative_reduction(&fast);
        assert!((r - 1.0 / 6.0).abs() < 1e-9, "reduction {r}"); // 16.7%
    }

    #[test]
    fn measurement_dominates_the_cycle() {
        let t = QecCycleTiming::versluis_surface17(1000.0);
        assert!(t.measurement_fraction() > 0.8);
    }

    #[test]
    fn total_scales_linearly() {
        let t = QecCycleTiming::versluis_surface17(800.0);
        assert_eq!(t.total_ns(10), 10.0 * t.cycle_ns());
    }

    #[test]
    fn zero_reduction_for_identical_timing() {
        let t = QecCycleTiming::versluis_surface17(900.0);
        assert_eq!(t.relative_reduction(&t), 0.0);
    }
}
