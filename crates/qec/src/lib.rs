//! Surface-code simulation with leakage, leakage speculation (ERASER /
//! ERASER+M), and QEC cycle timing — the quantum-error-correction substrate
//! behind the paper's Tables I and VI and Secs. III and VII-B.
//!
//! The paper motivates multi-level readout through its effect on **leakage
//! mitigation** in QEC:
//!
//! * Sec. III-A injects leakage on IBM hardware and observes CNOT
//!   malfunction (random target flips, 1.5–2 % leakage transport per gate,
//!   ~3× leakage growth over 12 CNOTs) — reproduced by
//!   [`RepeatedCnotExperiment`];
//! * Table I / Table VI run ERASER (MICRO '23) with and without multi-level
//!   readout on a distance-7 rotated surface code for 10 cycles —
//!   reproduced by [`EraserExperiment`] on [`SurfaceCode`] +
//!   [`LeakageSimulator`];
//! * Sec. VII-B converts the 200 ns readout saving into a ~17 % QEC cycle
//!   time reduction for Surface-17 — reproduced by [`QecCycleTiming`].
//!
//! # Examples
//!
//! ```
//! use mlr_qec::QecCycleTiming;
//!
//! let baseline = QecCycleTiming::versluis_surface17(1000.0);
//! let fast = QecCycleTiming::versluis_surface17(800.0);
//! let reduction = baseline.relative_reduction(&fast);
//! assert!((reduction - 0.167).abs() < 0.01); // ~17 % (Sec. VII-B)
//! ```

#![deny(missing_docs)]

mod cnot_exp;
mod decoder;
mod eraser;
mod lattice;
mod leakage_sim;
mod sector;
mod timing;
mod union_find;

pub use cnot_exp::{CnotChannel, CnotExperimentResult, RepeatedCnotExperiment};
pub use decoder::{logical_error_rate, Decoder, DecoderKind, GreedyDecoder};
pub use eraser::{EraserConfig, EraserExperiment, EraserResult, SpeculationMode};
pub use lattice::{Stabilizer, StabilizerKind, SurfaceCode};
pub use leakage_sim::{LeakageParams, LeakageSimulator};
pub use sector::xor_support;
pub use timing::QecCycleTiming;
pub use union_find::UnionFindDecoder;
