//! Surface-code simulation with leakage, leakage speculation (ERASER /
//! ERASER+M), erasure-herald models, syndrome decoding, and QEC cycle
//! timing — the quantum-error-correction substrate behind the paper's
//! Tables I and VI and Secs. III and VII-B.
//!
//! # The readout→QEC loop
//!
//! The paper motivates multi-level readout through its effect on **leakage
//! mitigation** in QEC, and this crate closes that loop end-to-end:
//!
//! 1. [`LeakageSimulator`] (module [`leakage_sim`]) evolves a rotated
//!    [`SurfaceCode`] through repeated stabilizer cycles while leakage
//!    spreads, malfunctions CNOTs, and corrupts syndromes;
//! 2. [`EraserExperiment`] (module [`eraser`]) runs ERASER / ERASER+M
//!    speculation over those cycles, applying LRCs to flagged qubits;
//! 3. a [`HeraldModel`] (module [`herald`]) converts the end-of-run leak
//!    state into the *reported* erasure flags — ground truth, a calibrated
//!    confusion channel, or (one crate up, in `mlr-core`) the actual
//!    multi-level discriminator;
//! 4. a [`Decoder`] (modules [`decoder`] and [`union_find`]) consumes the
//!    syndrome plus those imperfect erasures and either corrects the frame
//!    or commits a logical error — the
//!    [`logical_failure_rate`](EraserResult::logical_failure_rate) that
//!    readout quality ultimately moves, swept by [`herald_sweep`].
//!
//! # Paper anchors
//!
//! * Sec. III-A injects leakage on IBM hardware and observes CNOT
//!   malfunction (random target flips, 1.5–2 % leakage transport per gate,
//!   ~3× leakage growth over 12 CNOTs) — reproduced by
//!   [`RepeatedCnotExperiment`];
//! * Table I / Table VI run ERASER (MICRO '23) with and without multi-level
//!   readout on a distance-7 rotated surface code for 10 cycles —
//!   reproduced by [`EraserExperiment`] on [`SurfaceCode`] +
//!   [`LeakageSimulator`], with Table VI's discriminator-quality axis
//!   scanned by [`herald_sweep`];
//! * Sec. VII-B converts the 200 ns readout saving into a ~17 % QEC cycle
//!   time reduction for Surface-17 — reproduced by [`QecCycleTiming`].
//!
//! # Examples
//!
//! ```
//! use mlr_qec::QecCycleTiming;
//!
//! let baseline = QecCycleTiming::versluis_surface17(1000.0);
//! let fast = QecCycleTiming::versluis_surface17(800.0);
//! let reduction = baseline.relative_reduction(&fast);
//! assert!((reduction - 0.167).abs() < 0.01); // ~17 % (Sec. VII-B)
//! ```

#![deny(missing_docs)]

mod cnot_exp;
pub mod decoder;
pub mod eraser;
pub mod herald;
mod lattice;
pub mod leakage_sim;
mod sector;
mod timing;
pub mod union_find;

pub use cnot_exp::{CnotChannel, CnotExperimentResult, RepeatedCnotExperiment};
pub use decoder::{logical_error_rate, Decoder, DecoderKind, GreedyDecoder};
pub use eraser::{EraserConfig, EraserExperiment, EraserResult, SpeculationMode};
pub use herald::{
    herald_sweep, ConfusionMatrixHerald, GroundTruthHerald, HeraldModel, HeraldSweepConfig,
    HeraldSweepPoint,
};
pub use lattice::{Stabilizer, StabilizerKind, SurfaceCode};
pub use leakage_sim::{LeakageParams, LeakageSimulator};
pub use sector::xor_support;
pub use timing::QecCycleTiming;
pub use union_find::UnionFindDecoder;
