//! Fault-coverage guarantees of the union-find decoder.
//!
//! The headline property: a distance-`d` code must correct **every** error
//! of weight up to `t = ⌊(d−1)/2⌋`. For d = 3 and d = 5 the whole fault
//! set is enumerated (both stabilizer sectors); d = 7 and d = 9 are
//! sampled randomly. A companion test retires the pinned greedy
//! limitation (`greedy_effective_distance_steps_every_other_d` in
//! `src/decoder.rs`): the two-boundary-column faults greedy mismatches at
//! d = 5 are all handled by union-find, and the Monte-Carlo suppression
//! curve is strictly monotone d = 3 → 5 → 7 — the every-distance scaling
//! greedy could not show.

use proptest::prelude::*;

use mlr_qec::{
    logical_error_rate, xor_support, DecoderKind, StabilizerKind, SurfaceCode, UnionFindDecoder,
};

/// Decodes `error` and returns `true` when the correction both annihilates
/// the syndrome and leaves no logical operator behind.
fn corrected(decoder: &UnionFindDecoder, error: &[usize]) -> bool {
    let syndrome = decoder.syndrome_of(error);
    let correction = decoder.decode(&syndrome);
    let residual = xor_support(error, &correction);
    assert!(
        decoder.syndrome_of(&residual).iter().all(|&s| !s),
        "correction must annihilate the syndrome of {error:?}"
    );
    !decoder.is_logical_error(&residual)
}

/// Calls `visit` on every subset of `0..n` with `1..=max_weight` elements.
fn for_each_pattern(n: usize, max_weight: usize, visit: &mut impl FnMut(&[usize])) {
    fn recurse(
        n: usize,
        max_weight: usize,
        start: usize,
        pattern: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]),
    ) {
        if !pattern.is_empty() {
            visit(pattern);
        }
        if pattern.len() == max_weight {
            return;
        }
        for q in start..n {
            pattern.push(q);
            recurse(n, max_weight, q + 1, pattern, visit);
            pattern.pop();
        }
    }
    recurse(n, max_weight, 0, &mut Vec::new(), visit);
}

#[test]
fn union_find_corrects_every_fault_pattern_up_to_half_distance() {
    // The archetype headline: exhaustive weight ≤ ⌊(d−1)/2⌋ coverage at
    // d = 3 (9 single faults) and d = 5 (25 + 300 patterns), both sectors.
    for d in [3usize, 5] {
        let code = SurfaceCode::rotated(d);
        let t = (d - 1) / 2;
        for kind in [StabilizerKind::Z, StabilizerKind::X] {
            let decoder = UnionFindDecoder::new(&code, kind);
            let mut checked = 0usize;
            for_each_pattern(code.n_data(), t, &mut |pattern| {
                checked += 1;
                assert!(
                    corrected(&decoder, pattern),
                    "d={d} {kind:?}: weight-{} fault {pattern:?} decoded to a logical error",
                    pattern.len()
                );
            });
            // C(n,1) + … + C(n,t): the enumeration really was exhaustive.
            let expected: usize = (1..=t)
                .map(|w| (0..w).fold(1usize, |acc, i| acc * (code.n_data() - i) / (i + 1)))
                .sum();
            assert_eq!(checked, expected, "d={d} {kind:?} pattern count");
        }
    }
}

#[test]
fn union_find_corrects_the_boundary_column_faults_greedy_misses() {
    // `greedy_effective_distance_steps_every_other_d` pins that greedy
    // mismatches two-fault column-0 patterns at d = 5 (and d = 7 is its
    // first surviving distance). Union-find restores the full effective
    // distance: every two-boundary-column fault is within t = 2 at d = 5.
    for d in [5usize, 7] {
        let code = SurfaceCode::rotated(d);
        let decoder = UnionFindDecoder::new(&code, StabilizerKind::Z);
        for a in 0..d {
            for b in (a + 1)..d {
                let flipped = [a * d, b * d]; // column 0 pairs
                assert!(
                    corrected(&decoder, &flipped),
                    "d={d}: column faults {flipped:?} decoded to a logical error"
                );
            }
        }
    }
}

#[test]
fn union_find_suppression_is_monotone_at_every_distance_step() {
    // Monte-Carlo distance scaling at p = 0.5 % IID X noise: the logical
    // error rate falls strictly at *each* distance step d = 3 → 5 → 7 —
    // the curve greedy could not show (its effective distance is flat
    // d = 3 → 5). Seeded and deterministic (the in-tree RNG stream is
    // platform-independent).
    let p = 0.005;
    let trials = 120_000;
    let kind = DecoderKind::UnionFind;
    let ler3 = logical_error_rate(&SurfaceCode::rotated(3), kind, p, trials, 17);
    let ler5 = logical_error_rate(&SurfaceCode::rotated(5), kind, p, trials, 17);
    let ler7 = logical_error_rate(&SurfaceCode::rotated(7), kind, p, trials, 17);
    assert!(
        ler3 > ler5 && ler5 > ler7,
        "suppression must be strictly monotone: d3 {ler3} > d5 {ler5} > d7 {ler7}"
    );
}

proptest! {
    /// Random weight ≤ t faults at d = 7 and d = 9 (too many to
    /// enumerate): every sampled pattern must decode without a logical
    /// error in both sectors.
    #[test]
    fn random_bounded_weight_faults_are_corrected_d7_d9(
        raw7 in prop::collection::vec(0usize..49, 1..4),
        raw9 in prop::collection::vec(0usize..81, 1..5),
        sector_bit in any::<bool>(),
    ) {
        let kind = if sector_bit { StabilizerKind::Z } else { StabilizerKind::X };
        for (d, raw) in [(7usize, &raw7), (9usize, &raw9)] {
            let code = SurfaceCode::rotated(d);
            let decoder = UnionFindDecoder::new(&code, kind);
            // Deduplicate: repeated indices would cancel to a lighter
            // pattern, which is fine but double-counts nothing.
            let mut pattern = raw.clone();
            pattern.sort_unstable();
            pattern.dedup();
            prop_assert!(
                corrected(&decoder, &pattern),
                "d={} {:?}: fault {:?} decoded to a logical error", d, kind, pattern
            );
        }
    }
}
