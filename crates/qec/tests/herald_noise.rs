//! Herald-noise pins: the readout→QEC loop must degrade monotonically
//! with herald assignment error, and a zero-error herald channel must
//! reproduce the PR 3 ground-truth results bit-for-bit.

use proptest::prelude::*;

use mlr_qec::{
    herald_sweep, ConfusionMatrixHerald, DecoderKind, EraserConfig, EraserExperiment,
    GroundTruthHerald, HeraldSweepConfig, LeakageParams, SpeculationMode,
};

/// Leakage/noise regime with enough physical error that end-of-run decodes
/// have real work to do (default rates leave most small-distance trials
/// failure-free, which would make monotonicity vacuous).
fn noisy_params() -> LeakageParams {
    LeakageParams {
        leak_per_gate: 2e-3,
        phys_error_per_cycle: 0.015,
        ..LeakageParams::default()
    }
}

#[test]
fn logical_failure_is_monotone_in_herald_error_per_decoder() {
    // The seeded sweep couples every herald-error point to the same
    // leakage trajectories (common random numbers): along the error axis
    // only the herald channel changes, so the failure curve must be
    // non-decreasing for each (distance, decoder) — greedy's exactly flat
    // (it ignores erasures), union-find's rising (false positives erode
    // its effective distance, false negatives starve it of erasures).
    let config = HeraldSweepConfig {
        distances: vec![3, 5],
        decoders: vec![DecoderKind::Greedy, DecoderKind::UnionFind],
        herald_errors: vec![0.0, 0.15, 0.45],
        cycles: 6,
        trials: 240,
        params: noisy_params(),
        readout_error: 0.05,
        seed: 20260728,
    };
    let points = herald_sweep(&config);
    for chunk in points.chunks(config.herald_errors.len()) {
        for pair in chunk.windows(2) {
            assert!(
                pair[1].result.logical_failure_rate >= pair[0].result.logical_failure_rate,
                "d={} {}: logical failure fell from {} (err {}) to {} (err {})",
                pair[0].distance,
                pair[0].decoder,
                pair[0].result.logical_failure_rate,
                pair[0].herald_error,
                pair[1].result.logical_failure_rate,
                pair[1].herald_error,
            );
        }
    }
    // The noise must actually bite somewhere, or the assertion is vacuous:
    // union-find at the noisiest herald must fail strictly more often than
    // at the perfect herald for at least one distance.
    let strict_rise = config.distances.iter().any(|&d| {
        let uf: Vec<_> = points
            .iter()
            .filter(|p| p.distance == d && p.decoder == DecoderKind::UnionFind)
            .collect();
        uf.last().unwrap().result.logical_failure_rate
            > uf.first().unwrap().result.logical_failure_rate
    });
    assert!(strict_rise, "herald noise never moved the union-find curve");
}

#[test]
fn greedy_curve_is_exactly_flat() {
    // Greedy's `decode_with_erasures` discards the herald, and the herald
    // draws happen after all decode-relevant randomness in a trial, so its
    // logical failure rate is *identical* (not just close) at every herald
    // error.
    let experiment = EraserExperiment::new(EraserConfig {
        distance: 3,
        cycles: 5,
        trials: 80,
        params: noisy_params(),
        seed: 11,
        decoder: DecoderKind::Greedy,
    });
    let mode = SpeculationMode::EraserM {
        readout_error: 0.05,
    };
    let baseline = experiment.run(mode);
    for err in [0.1, 0.5, 1.0] {
        let noisy = experiment.run_with_herald(mode, &ConfusionMatrixHerald::symmetric(err));
        assert_eq!(
            noisy.logical_failure_rate, baseline.logical_failure_rate,
            "greedy logical failure moved at herald error {err}"
        );
    }
}

#[test]
fn herald_error_rates_track_the_configured_channel() {
    let experiment = EraserExperiment::new(EraserConfig {
        distance: 5,
        cycles: 8,
        trials: 150,
        params: noisy_params(),
        seed: 3,
        decoder: DecoderKind::UnionFind,
    });
    let mode = SpeculationMode::EraserM {
        readout_error: 0.05,
    };
    let res = experiment.run_with_herald(mode, &ConfusionMatrixHerald::new(0.25, 0.0));
    // ~25 % of healthy qubits flagged, no leaked qubit ever missed.
    assert!(
        (res.herald_false_positive_rate - 0.25).abs() < 0.05,
        "fp rate {}",
        res.herald_false_positive_rate
    );
    assert_eq!(res.herald_false_negative_rate, 0.0);
    // Ground truth reports perfect rates on the same trajectories.
    let perfect = experiment.run(mode);
    assert_eq!(perfect.herald_false_positive_rate, 0.0);
    assert_eq!(perfect.herald_false_negative_rate, 0.0);
}

proptest! {
    /// A zero-error [`ConfusionMatrixHerald`] must reproduce PR 3's
    /// ground-truth-herald results **bit-for-bit** — every field of
    /// [`mlr_qec::EraserResult`], across random small configurations,
    /// decoders, and both speculation modes.
    #[test]
    fn zero_error_herald_matches_ground_truth_bit_for_bit(
        seed in 0u64..1_000_000,
        distance_step in 0usize..2,
        cycles in 2usize..6,
        trials in 5usize..30,
        uf in any::<bool>(),
        eraser_m in any::<bool>(),
    ) {
        let experiment = EraserExperiment::new(EraserConfig {
            distance: 3 + 2 * distance_step,
            cycles,
            trials,
            seed,
            decoder: if uf { DecoderKind::UnionFind } else { DecoderKind::Greedy },
            ..EraserConfig::default()
        });
        let mode = if eraser_m {
            SpeculationMode::EraserM { readout_error: 0.05 }
        } else {
            SpeculationMode::Eraser
        };
        let truth = experiment.run_with_herald(mode, &GroundTruthHerald);
        let zero = experiment.run_with_herald(mode, &ConfusionMatrixHerald::symmetric(0.0));
        prop_assert_eq!(&truth, &zero);
        // And `run` itself is the ground-truth path.
        prop_assert_eq!(&truth, &experiment.run(mode));
    }
}
