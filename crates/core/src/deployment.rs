//! The fixed-point deployment of a trained discriminator.
//!
//! [`OursDiscriminator::predict_features_quantized`] estimates the accuracy
//! cost of quantisation but rebuilds a quantised head on every call — fine
//! for a spot check, wasteful in a sweep. [`DeployedDiscriminator`]
//! quantises once, holds the per-qubit heads as [`IntMlp`] integer
//! datapaths (bit-identical to the float quantisation model, see
//! `mlr-nn::intmlp`), and serves predictions at full speed. This is the
//! software twin of the bitstream an hls4ml flow would generate from the
//! same weights.

use mlr_nn::{FixedPointFormat, IntMlp, Standardizer};
use mlr_num::Complex;
use serde::{Deserialize, Serialize};

use crate::{Discriminator, FeatureExtractor, OursConfig, OursDiscriminator};

/// Configuration of the quantised-deployment family (`OURS-INT` in the
/// registry): how to train the float model and which fixed-point word
/// format to freeze its heads into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployedConfig {
    /// Training configuration of the underlying float model.
    pub base: OursConfig,
    /// Head word format after quantisation.
    pub format: FixedPointFormat,
}

impl Default for DeployedConfig {
    fn default() -> Self {
        Self {
            base: OursConfig::default(),
            format: FixedPointFormat::HLS4ML_DEFAULT,
        }
    }
}

/// A trained pipeline frozen into fixed-point heads.
///
/// The analog front end (demodulation + matched-filter dot products) stays
/// in host precision — on the FPGA those run in wide DSP48 arithmetic whose
/// rounding is negligible next to the heads' narrow weights, which is where
/// the paper's precision analysis applies.
///
/// # Examples
///
/// ```no_run
/// use mlr_core::{DeployedDiscriminator, Discriminator, OursConfig, OursDiscriminator};
/// use mlr_nn::FixedPointFormat;
/// use mlr_sim::{ChipConfig, TraceDataset};
///
/// let chip = ChipConfig::five_qubit_paper();
/// let dataset = TraceDataset::generate(&chip, 3, 50, 7);
/// let split = dataset.paper_split(7);
/// let ours = OursDiscriminator::fit(&dataset, &split, &OursConfig::default());
/// let deployed = DeployedDiscriminator::new(&ours, FixedPointFormat::HLS4ML_DEFAULT);
/// let decision = deployed.predict_shot(dataset.raw(0));
/// println!("integer decision: {decision:?}");
/// ```
#[derive(Debug, Clone)]
pub struct DeployedDiscriminator {
    extractor: FeatureExtractor,
    standardizer: Standardizer,
    heads: Vec<IntMlp>,
    format: FixedPointFormat,
    levels: usize,
    /// Compiled single-pass plan. Integer heads quantise their own input,
    /// so here the standardizer folds *backward* into the kernel bank.
    plan: crate::CompiledPlan,
}

impl DeployedDiscriminator {
    /// Quantises every head of a trained discriminator to `format`.
    ///
    /// # Panics
    ///
    /// Panics if `format` is wider than 24 bits (see
    /// [`IntMlp::from_mlp`]).
    pub fn new(source: &OursDiscriminator, format: FixedPointFormat) -> Self {
        let heads: Vec<IntMlp> = source
            .heads
            .iter()
            .map(|h| IntMlp::from_mlp(h, format))
            .collect();
        let plan = crate::plan::compile(crate::plan::int_graph(
            &source.extractor,
            &source.standardizer,
            &heads,
        ));
        Self {
            extractor: source.extractor.clone(),
            standardizer: source.standardizer.clone(),
            heads,
            format,
            levels: source.levels,
            plan,
        }
    }

    /// Borrows the compiled single-pass inference plan serving
    /// [`Discriminator::predict_shot`] / [`Discriminator::predict_batch`].
    pub fn plan(&self) -> &crate::CompiledPlan {
        &self.plan
    }

    /// Batch inference through the original layered stages (extract,
    /// standardise, integer heads) — the reference the plan-vs-layered
    /// property tests compare against.
    ///
    /// # Panics
    ///
    /// Panics if any trace's length differs from the readout window.
    pub fn predict_batch_layered(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.predict_features_batch(&self.extractor.extract_batch_traces(shots))
    }

    /// Per-head dequantised outputs of one trace through the layered
    /// reference stages — what [`crate::CompiledPlan::logits_shot`] is
    /// checked against.
    ///
    /// # Panics
    ///
    /// Panics if the trace's length differs from the readout window.
    pub fn logits_layered(&self, raw: &[Complex]) -> Vec<Vec<f32>> {
        let x = self
            .standardizer
            .transform_f32(&self.extractor.extract_fused(raw));
        self.heads.iter().map(|h| h.forward(&x)).collect()
    }

    /// The deployed word format.
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// Borrows qubit `q`'s integer head.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn head(&self, q: usize) -> &IntMlp {
        &self.heads[q]
    }

    /// Level-alphabet size.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Classifies a pre-extracted (raw, unstandardised) merged feature
    /// vector through the integer heads.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the extractor's dimension.
    pub fn predict_features(&self, features: &[f64]) -> Vec<usize> {
        let x = self.standardizer.transform_f32(features);
        self.heads.iter().map(|h| h.predict(&x)).collect()
    }

    /// Classifies a batch of pre-extracted feature vectors: standardise
    /// once, then run each integer head over the whole batch. Decisions
    /// are identical to mapping
    /// [`DeployedDiscriminator::predict_features`].
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the extractor's dimension.
    pub fn predict_features_batch(&self, features: &[Vec<f64>]) -> Vec<Vec<usize>> {
        let xs = self.standardizer.transform_batch_f32(features);
        let per_head: Vec<Vec<usize>> = self
            .heads
            .iter()
            .map(|h| xs.iter().map(|x| h.predict(x)).collect())
            .collect();
        crate::batch::transpose_decisions(&per_head, xs.len())
    }
}

impl Discriminator for DeployedDiscriminator {
    /// Single-shot inference through the compiled plan: kernel scoring and
    /// standardisation fused into one pass (the affine is folded backward
    /// into the kernel memory), then the integer heads. Bit-identical to
    /// one shot of [`Discriminator::predict_batch`].
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        self.plan.predict_shot(raw)
    }

    /// Native batch path through the compiled plan: demodulation-free
    /// tiled kernel scoring with standardisation pre-folded, then integer
    /// head classification per shot.
    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.plan.predict_batch(shots)
    }

    fn name(&self) -> &str {
        "OURS-INT"
    }

    fn n_qubits(&self) -> usize {
        self.heads.len()
    }

    fn weight_count(&self) -> usize {
        // Same weights as the source model, now stored as integers.
        self.heads
            .iter()
            .map(|h| h.sizes().windows(2).map(|w| w[0] * w[1]).sum::<usize>())
            .sum()
    }
}

/// The serialisable body of a [`DeployedDiscriminator`] inside the
/// registry's `SavedModel` v2 envelope: the fitted banks plus the heads
/// already frozen to integers, so a reload serves bit-identically without
/// requantising.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SavedDeployed {
    banks: Vec<crate::QubitMfBank>,
    standardizer: Standardizer,
    heads: Vec<IntMlp>,
    format: FixedPointFormat,
    levels: usize,
}

impl DeployedDiscriminator {
    pub(crate) fn to_saved(&self) -> SavedDeployed {
        SavedDeployed {
            banks: (0..self.extractor.n_qubits())
                .map(|q| self.extractor.bank(q).clone())
                .collect(),
            standardizer: self.standardizer.clone(),
            heads: self.heads.clone(),
            format: self.format,
            levels: self.levels,
        }
    }

    pub(crate) fn from_saved(
        saved: SavedDeployed,
        chip: mlr_sim::ChipConfig,
        joint_neighbors: usize,
    ) -> Result<Self, crate::ModelIoError> {
        let n = chip.n_qubits();
        if saved.banks.len() != n || saved.heads.len() != n {
            return Err(crate::ModelIoError::Invalid(format!(
                "{} banks / {} heads for {} qubits",
                saved.banks.len(),
                saved.heads.len(),
                n
            )));
        }
        let feature_dim: usize = saved.banks.iter().map(crate::QubitMfBank::n_filters).sum();
        if saved.standardizer.dim() != feature_dim {
            return Err(crate::ModelIoError::Invalid(format!(
                "standardizer dim {} != feature dim {feature_dim}",
                saved.standardizer.dim()
            )));
        }
        for (q, head) in saved.heads.iter().enumerate() {
            let sizes = head.sizes();
            if sizes.first() != Some(&feature_dim) || sizes.last() != Some(&saved.levels) {
                return Err(crate::ModelIoError::Invalid(format!(
                    "integer head {q} shape {sizes:?} != [{feature_dim}, .., {}]",
                    saved.levels
                )));
            }
        }
        let extractor = FeatureExtractor::from_parts_joint(chip, saved.banks, joint_neighbors);
        let plan = crate::plan::compile(crate::plan::int_graph(
            &extractor,
            &saved.standardizer,
            &saved.heads,
        ));
        Ok(Self {
            extractor,
            standardizer: saved.standardizer,
            heads: saved.heads,
            format: saved.format,
            levels: saved.levels,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, OursConfig};
    use mlr_nn::TrainConfig;
    use mlr_sim::{ChipConfig, TraceDataset};

    fn fitted() -> (TraceDataset, mlr_sim::DatasetSplit, OursDiscriminator) {
        let mut c = ChipConfig::uniform(2);
        c.n_samples = 200;
        let ds = TraceDataset::generate(&c, 3, 30, 19);
        let split = ds.split(0.6, 0.1, 19);
        let config = OursConfig {
            train: TrainConfig {
                epochs: 20,
                ..OursConfig::default().train
            },
            ..OursConfig::default()
        };
        let ours = OursDiscriminator::fit(&ds, &split, &config);
        (ds, split, ours)
    }

    #[test]
    fn matches_per_call_quantisation_exactly() {
        let (ds, split, ours) = fitted();
        let fmt = FixedPointFormat::HLS4ML_DEFAULT;
        let deployed = DeployedDiscriminator::new(&ours, fmt);
        for &i in split.test.iter().take(60) {
            let feats = ours.extractor().extract(ds.raw(i));
            assert_eq!(
                deployed.predict_features(&feats),
                ours.predict_features_quantized(&feats, fmt),
                "shot {i}"
            );
        }
    }

    #[test]
    fn sixteen_bit_deployment_keeps_accuracy() {
        let (ds, split, ours) = fitted();
        let deployed = DeployedDiscriminator::new(&ours, FixedPointFormat::HLS4ML_DEFAULT);
        let f_float = evaluate(&ours, &ds, &split.test).geometric_mean_fidelity();
        let f_int = evaluate(&deployed, &ds, &split.test).geometric_mean_fidelity();
        assert!(
            (f_float - f_int).abs() < 0.02,
            "float {f_float:.4} vs int {f_int:.4}"
        );
    }

    #[test]
    fn coarse_words_degrade_more() {
        let (ds, split, ours) = fitted();
        let f16 = evaluate(
            &DeployedDiscriminator::new(&ours, FixedPointFormat::new(16, 6)),
            &ds,
            &split.test,
        )
        .geometric_mean_fidelity();
        let f6 = evaluate(
            &DeployedDiscriminator::new(&ours, FixedPointFormat::new(6, 3)),
            &ds,
            &split.test,
        )
        .geometric_mean_fidelity();
        assert!(f16 >= f6 - 1e-9, "16-bit {f16:.4} vs 6-bit {f6:.4}");
    }

    #[test]
    fn metadata_mirrors_source() {
        let (_, _, ours) = fitted();
        let deployed = DeployedDiscriminator::new(&ours, FixedPointFormat::HLS4ML_DEFAULT);
        assert_eq!(deployed.n_qubits(), 2);
        assert_eq!(deployed.levels(), 3);
        assert_eq!(deployed.weight_count(), ours.weight_count());
        assert_eq!(deployed.name(), "OURS-INT");
        assert_eq!(deployed.head(0).sizes(), ours.head(0).sizes());
    }
}
