//! Algebraic folding passes over an [`OpGraph`] — the compiler's middle
//! end. Each pass is a plain rewrite in `f64`:
//!
//! * **Affine → Dense** (forward fold): `W(x∘s + t) + b = (W∘s)x + (Wt + b)`
//!   — the standardizer disappears into every branch's first layer. This
//!   is the profitable direction for MLP heads: the affine's O(P) work is
//!   absorbed into multiplies the first layer performs anyway.
//! * **Affine → MfBank** (backward fold): `(Kx + c)∘s + t = (s∘K)x + (c∘s + t)`
//!   — when the output stage cannot absorb floats (integer heads quantise
//!   their input), the standardizer folds *backward* into the kernel
//!   memory instead, so extraction and standardisation become one pass.
//! * **Linear-head collapse**: a single linear (no-ReLU) dense per branch
//!   composes with the bank into new kernel rows `W·K` — the whole
//!   pipeline becomes one matrix against the raw trace. Guarded by
//!   profitability: only done when the heads' total output count is
//!   smaller than the bank, otherwise the "collapse" would *add* raw-trace
//!   dots (the paper-scale OURS heads share 45 kernels across 5 × 22 first
//!   layer rows, so collapsing them would more than double the work).

use super::graph::{Branch, DenseOp, MfBankOp, Op, OpGraph, OutputStage};

/// Which folding passes fired on a graph — returned by [`fuse`] so tests
/// and diagnostics can assert the expected shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseReport {
    /// The standardizer folded forward into the first dense layers.
    pub affine_into_dense: bool,
    /// The standardizer folded backward into the matched-filter bank.
    pub affine_into_bank: bool,
    /// Linear heads collapsed into the bank rows.
    pub heads_into_bank: bool,
}

/// Runs every folding pass to fixpoint order (forward fold first, backward
/// fold for whatever affine remains, then the linear collapse).
pub fn fuse(graph: &mut OpGraph) -> FuseReport {
    let affine_into_dense = fold_affine_into_dense(graph);
    let affine_into_bank = fold_affine_into_bank(graph);
    let heads_into_bank = collapse_linear_heads(graph);
    FuseReport {
        affine_into_dense,
        affine_into_bank,
        heads_into_bank,
    }
}

/// Folds a trailing trunk [`Op::Affine`] into the first dense layer of
/// every output branch (or the joint chain). Each branch must start with a
/// dense layer; a branch reading a `take` slice of the feature vector
/// folds the matching slice of the affine (the autoencoder's per-qubit
/// feature blocks). Integer heads never qualify (they quantise their
/// input, so the affine must stay).
///
/// Returns whether the pass fired.
pub fn fold_affine_into_dense(graph: &mut OpGraph) -> bool {
    let Some(Op::Affine(affine_ref)) = graph.trunk.last() else {
        return false;
    };
    let width = affine_ref.scale.len();
    let absorbable = match &graph.output {
        OutputStage::PerQubit { branches } => branches
            .iter()
            .all(|b| !b.layers.is_empty() && b.take.as_ref().is_none_or(|r| r.end <= width)),
        OutputStage::Joint { layers, .. } | OutputStage::JointMarginal { layers, .. } => {
            !layers.is_empty()
        }
        OutputStage::PerQubitInt { .. } => false,
    };
    if !absorbable {
        return false;
    }
    let Some(Op::Affine(affine)) = graph.trunk.pop() else {
        unreachable!("checked above");
    };
    let fold_first = |dense: &mut DenseOp, scale: &[f64], shift: &[f64]| {
        assert_eq!(dense.n_in, scale.len(), "affine/dense width mismatch");
        // Bias first — it needs the original weights: b' = b + W·shift.
        for (o, bias) in dense.b.iter_mut().enumerate() {
            let row = &dense.w[o * dense.n_in..(o + 1) * dense.n_in];
            *bias += row.iter().zip(shift).map(|(&w, &t)| w * t).sum::<f64>();
        }
        // Then the weights: W' = W ∘ scale (column-wise).
        for row in dense.w.chunks_exact_mut(dense.n_in) {
            for (w, &s) in row.iter_mut().zip(scale) {
                *w *= s;
            }
        }
    };
    match &mut graph.output {
        OutputStage::PerQubit { branches } => {
            for branch in branches {
                let range = branch.take.clone().unwrap_or(0..width);
                fold_first(
                    &mut branch.layers[0],
                    &affine.scale[range.clone()],
                    &affine.shift[range],
                );
            }
        }
        OutputStage::Joint { layers, .. } | OutputStage::JointMarginal { layers, .. } => {
            fold_first(&mut layers[0], &affine.scale, &affine.shift)
        }
        OutputStage::PerQubitInt { .. } => unreachable!("checked above"),
    }
    true
}

/// Folds a trailing trunk [`Op::Affine`] backward into the
/// [`Op::MfBank`] immediately before it: rows scale elementwise, the shift
/// becomes a per-row bias. Fires when the forward fold could not (integer
/// output stages).
///
/// Returns whether the pass fired.
pub fn fold_affine_into_bank(graph: &mut OpGraph) -> bool {
    let n = graph.trunk.len();
    if n < 2 {
        return false;
    }
    let (Some(Op::MfBank(bank)), Some(Op::Affine(_))) =
        (graph.trunk.get(n - 2), graph.trunk.get(n - 1))
    else {
        return false;
    };
    if bank.relu {
        return false; // the affine sits after the activation; can't cross it
    }
    let Some(Op::Affine(affine)) = graph.trunk.pop() else {
        unreachable!("checked above");
    };
    let Some(Op::MfBank(bank)) = graph.trunk.last_mut() else {
        unreachable!("checked above");
    };
    assert_eq!(bank.rows.len(), affine.scale.len(), "affine/bank mismatch");
    for (row, &s) in bank.rows.iter_mut().zip(&affine.scale) {
        for w in row.iter_mut() {
            *w *= s;
        }
    }
    for ((bias, &s), &t) in bank.bias.iter_mut().zip(&affine.scale).zip(&affine.shift) {
        *bias = *bias * s + t;
    }
    true
}

/// Collapses purely linear per-qubit heads into the matched-filter bank:
/// each branch's single no-ReLU dense composes with the bank (`W·K` rows,
/// `W·c + b` bias) and the branch degenerates to an argmax over its slice
/// of the new, smaller bank.
///
/// Guarded by profitability — fires only when the heads' combined output
/// width is strictly smaller than the bank (otherwise composing would add
/// raw-trace dot products rather than remove them), which is why the
/// paper's MLP-headed OURS keeps its shared 45-kernel bank.
///
/// Returns whether the pass fired.
pub fn collapse_linear_heads(graph: &mut OpGraph) -> bool {
    let Some(Op::MfBank(bank)) = graph.trunk.last() else {
        return false;
    };
    if bank.relu {
        return false; // linear composition cannot cross the activation
    }
    let OutputStage::PerQubit { branches } = &graph.output else {
        return false;
    };
    let all_linear = branches
        .iter()
        .all(|b| b.take.is_none() && b.layers.len() == 1 && !b.layers[0].relu);
    if !all_linear {
        return false;
    }
    let Some(Op::MfBank(bank)) = graph.trunk.last() else {
        unreachable!("checked above");
    };
    let total_out: usize = branches.iter().map(|b| b.layers[0].n_out).sum();
    if total_out >= bank.rows.len() {
        return false; // collapsing would add work, not remove it
    }

    let sample_w = bank.rows.first().map_or(0, Vec::len);
    let mut new_rows: Vec<Vec<f64>> = Vec::with_capacity(total_out);
    let mut new_bias: Vec<f64> = Vec::with_capacity(total_out);
    let mut new_branches: Vec<Branch> = Vec::with_capacity(branches.len());
    let mut start = 0usize;
    for branch in branches {
        let dense = &branch.layers[0];
        assert_eq!(dense.n_in, bank.rows.len(), "head/bank width mismatch");
        for o in 0..dense.n_out {
            let wrow = &dense.w[o * dense.n_in..(o + 1) * dense.n_in];
            let mut row = vec![0.0f64; sample_w];
            let mut bias = dense.b[o];
            for ((krow, &kb), &w) in bank.rows.iter().zip(&bank.bias).zip(wrow) {
                for (dst, &k) in row.iter_mut().zip(krow) {
                    *dst += w * k;
                }
                bias += w * kb;
            }
            new_rows.push(row);
            new_bias.push(bias);
        }
        new_branches.push(Branch {
            take: Some(start..start + dense.n_out),
            layers: Vec::new(),
        });
        start += dense.n_out;
    }

    let Some(Op::MfBank(bank)) = graph.trunk.last_mut() else {
        unreachable!("checked above");
    };
    *bank = MfBankOp {
        rows: new_rows,
        bias: new_bias,
        relu: false,
    };
    graph.output = OutputStage::PerQubit {
        branches: new_branches,
    };
    true
}
