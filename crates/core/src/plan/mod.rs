//! Single-pass fused inference plans.
//!
//! A discriminator's per-shot pipeline — flatten IQ, matched-filter bank,
//! standardise, head, argmax — is layered code: each stage materialises
//! its output before the next starts. This module is a small compiler that
//! removes those seams. The pipeline is first described as an op graph
//! ([`OpGraph`]), algebraic folding passes then absorb the standardizer
//! into neighbouring weights ([`fuse`]), and the result lowers to `f32`
//! tiled kernels scored by an explicit-SIMD dot product
//! ([`CompiledPlan`]):
//!
//! ```text
//!   build             fuse                        lower
//! FlattenIq         FlattenIq                  CompiledPlan
//! MfBank      ──►   MfBank  (∘ 1/σ, −μ/σ)  ──►   rows: contiguous f32
//! Affine            heads  (W∘s, b + W·t)        dot_f32 | fma_f32
//! heads                                          tiles of 16 shots
//! ```
//!
//! Plans are **derived data**: every constructor (fit, load, quantise)
//! compiles one, nothing is serialised, and the saved-model envelope is
//! untouched. The layered per-stage paths survive on each discriminator
//! (`predict_batch_layered`) as the bit-exactness reference the property
//! tests compare against.
//!
//! Eight of the ten registry families compile a plan: OURS, OURS-NO-EMF,
//! OURS-INT, and HERQULES through the shared extractor trunk; the FNN
//! through `fnn_graph` (its first hidden layer *is* the bank, scored
//! against the raw trace); OURS-STREAM through one prefix-windowed plan
//! per checkpoint (`prefix_per_qubit_graph`); LDA and the autoencoder
//! through family-local builders in their own modules. The two that
//! cannot: QDA's decision is a per-class quadratic form (Mahalanobis
//! distance under per-class covariances) — not a fixed linear bank — and
//! the HMM decodes each trace *sequentially* through time-dependent
//! emissions, so neither reduces to dot-products against static kernels.
//!
//! Joint crosstalk-aware kernels (`joint_neighbors > 0` on the OURS
//! families) need no compiler support: widening a kernel row with a
//! neighbour tone's reference phasor only changes the row's *values*, and
//! the lowering pass already computes each row's nonzero span from the
//! data, so joint rows flow through the same banded-row executor.

mod exec;
mod fuse;
mod graph;

pub use exec::{CompiledPlan, PlanPrecision};
pub use fuse::{
    collapse_linear_heads, fold_affine_into_bank, fold_affine_into_dense, fuse, FuseReport,
};
pub use graph::{AffineOp, Branch, DenseOp, MfBankOp, Op, OpGraph, OutputStage};
// The SIMD dot kernels live in `mlr_nn` (so the network's own forward
// passes share them) and are re-exported here, where the plan executor's
// callers and the property tests have always found them.
pub use mlr_nn::{dot_f32, dot_f32_scalar, fma_active, fma_f32, fma_f32_scalar, simd_active};
#[cfg(target_arch = "x86_64")]
pub use mlr_nn::{dot_f32_avx2, fma_f32_avx2};

use crate::features::FeatureExtractor;
use mlr_nn::{IntMlp, Mlp, Standardizer};

/// Compiles a graph: runs the folding passes, then lowers to the `f32`
/// tiled executor.
///
/// # Panics
///
/// Panics if the fused trunk is not `[FlattenIq, MfBank]` or
/// `[FlattenIq, MfBank, Affine]` — the shapes the family builders in this
/// module produce.
pub fn compile(mut graph: OpGraph) -> CompiledPlan {
    let report = fuse(&mut graph);
    CompiledPlan::lower(&graph, report)
}

/// Trunk over explicit kernel rows: flatten `n_samples`, score the rows,
/// standardise. [`trunk`] is the full-window special case; the streaming
/// builder passes prefix-truncated rows with per-checkpoint standardizers.
fn trunk_from_rows(rows: Vec<Vec<f64>>, n_samples: usize, standardizer: &Standardizer) -> Vec<Op> {
    let bias = vec![0.0; rows.len()];
    let scale: Vec<f64> = standardizer.stds().iter().map(|&s| 1.0 / s).collect();
    let shift: Vec<f64> = standardizer
        .means()
        .iter()
        .zip(standardizer.stds())
        .map(|(&m, &s)| -m / s)
        .collect();
    vec![
        Op::FlattenIq { n_samples },
        Op::MfBank(MfBankOp {
            rows,
            bias,
            relu: false,
        }),
        Op::Affine(AffineOp { scale, shift }),
    ]
}

/// The shared trunk every extractor-based family starts from: flatten the
/// window, score the extractor's fused kernels, standardise.
fn trunk(extractor: &FeatureExtractor, standardizer: &Standardizer) -> Vec<Op> {
    trunk_from_rows(
        extractor.fused_rows(),
        extractor.window_samples(),
        standardizer,
    )
}

/// Builds the OURS-family graph: shared trunk, one float MLP branch per
/// qubit over the full feature vector.
pub(crate) fn per_qubit_graph(
    extractor: &FeatureExtractor,
    standardizer: &Standardizer,
    heads: &[Mlp],
) -> OpGraph {
    OpGraph {
        trunk: trunk(extractor, standardizer),
        output: OutputStage::PerQubit {
            branches: heads
                .iter()
                .map(|mlp| Branch {
                    take: None,
                    layers: DenseOp::chain_from_mlp(mlp),
                })
                .collect(),
        },
    }
}

/// Builds one streaming checkpoint's graph: the extractor's full-window
/// fused kernel rows truncated to the checkpoint's sample prefix (a
/// streamed partial score *is* the full dot product over the first
/// `2 × n_samples` interleaved weights), that checkpoint's own
/// standardizer re-folded over them, and its per-qubit heads.
///
/// # Panics
///
/// Panics (downstream) if any row is shorter than the prefix.
pub(crate) fn prefix_per_qubit_graph(
    extractor: &FeatureExtractor,
    n_samples: usize,
    standardizer: &Standardizer,
    heads: &[Mlp],
) -> OpGraph {
    let rows: Vec<Vec<f64>> = extractor
        .fused_rows()
        .into_iter()
        .map(|mut row| {
            row.truncate(2 * n_samples);
            row
        })
        .collect();
    OpGraph {
        trunk: trunk_from_rows(rows, n_samples, standardizer),
        output: OutputStage::PerQubit {
            branches: heads
                .iter()
                .map(|mlp| Branch {
                    take: None,
                    layers: DenseOp::chain_from_mlp(mlp),
                })
                .collect(),
        },
    }
}

/// Builds the HERQULES graph: shared trunk, one joint MLP over all qubits
/// whose argmax decodes into per-qubit levels.
pub(crate) fn joint_graph(
    extractor: &FeatureExtractor,
    standardizer: &Standardizer,
    mlp: &Mlp,
    n_qubits: usize,
    levels: usize,
) -> OpGraph {
    OpGraph {
        trunk: trunk(extractor, standardizer),
        output: OutputStage::Joint {
            layers: DenseOp::chain_from_mlp(mlp),
            n_qubits,
            levels,
        },
    }
}

/// Builds the deployed (OURS-INT) graph: shared trunk, quantised per-qubit
/// heads. The heads quantise their own input, so the standardizer folds
/// *backward* into the kernel bank rather than forward into weights.
pub(crate) fn int_graph(
    extractor: &FeatureExtractor,
    standardizer: &Standardizer,
    heads: &[IntMlp],
) -> OpGraph {
    OpGraph {
        trunk: trunk(extractor, standardizer),
        output: OutputStage::PerQubitInt {
            heads: heads.to_vec(),
        },
    }
}

/// Builds the FNN graph. The FNN has no matched-filter bank — its input is
/// the raw trace's `iq_features` layout (`[I₀…I_{n−1}, Q₀…Q_{n−1}]`) run
/// through a standardizer and an MLP. The builder makes its first hidden
/// layer the bank: each hidden unit's weight row is permuted from the
/// block layout onto the plan's interleaved `[re, im, …]` columns with the
/// standardizer pre-folded in (`w/σ` weights, `b − Σ w·μ/σ` bias), and the
/// layer's ReLU rides on the bank (`relu: true`). The remaining layers
/// form a [`OutputStage::JointMarginal`] chain — `Mlp::predict_marginal`'s
/// decision rule, fused.
///
/// # Panics
///
/// Panics if the standardizer/MLP widths don't match `2 × n_samples`.
pub(crate) fn fnn_graph(
    standardizer: &Standardizer,
    mlp: &Mlp,
    n_samples: usize,
    n_qubits: usize,
    levels: usize,
) -> OpGraph {
    let width = 2 * n_samples;
    assert_eq!(mlp.sizes()[0], width, "FNN input width != 2 × window");
    assert_eq!(standardizer.means().len(), width, "standardizer width");
    assert!(mlp.n_layers() >= 2, "FNN needs hidden layers");
    let scale: Vec<f64> = standardizer.stds().iter().map(|&s| 1.0 / s).collect();
    let shift: Vec<f64> = standardizer
        .means()
        .iter()
        .zip(standardizer.stds())
        .map(|(&m, &s)| -m / s)
        .collect();

    let h0 = mlp.sizes()[1];
    let w0 = mlp.layer_weights(0);
    let b0 = mlp.layer_biases(0);
    let mut rows = Vec::with_capacity(h0);
    let mut bias = Vec::with_capacity(h0);
    for o in 0..h0 {
        let wrow = &w0[o * width..(o + 1) * width];
        let mut row = vec![0.0f64; width];
        let mut b = f64::from(b0[o]);
        for (j, &w) in wrow.iter().enumerate() {
            let w = f64::from(w);
            // iq_features column j (I-block then Q-block) ↔ interleaved
            // flat column: I_t at 2t, Q_t at 2t + 1.
            let col = if j < n_samples {
                2 * j
            } else {
                2 * (j - n_samples) + 1
            };
            row[col] = w * scale[j];
            b += w * shift[j];
        }
        rows.push(row);
        bias.push(b);
    }

    OpGraph {
        trunk: vec![
            Op::FlattenIq { n_samples },
            Op::MfBank(MfBankOp {
                rows,
                bias,
                relu: true,
            }),
        ],
        output: OutputStage::JointMarginal {
            layers: (1..mlp.n_layers())
                .map(|l| DenseOp::from_mlp_layer(mlp, l))
                .collect(),
            n_qubits,
            levels,
        },
    }
}
