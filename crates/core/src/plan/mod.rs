//! Single-pass fused inference plans.
//!
//! A discriminator's per-shot pipeline — flatten IQ, matched-filter bank,
//! standardise, head, argmax — is layered code: each stage materialises
//! its output before the next starts. This module is a small compiler that
//! removes those seams. The pipeline is first described as an op graph
//! ([`OpGraph`]), algebraic folding passes then absorb the standardizer
//! into neighbouring weights ([`fuse`]), and the result lowers to `f32`
//! tiled kernels scored by an explicit-SIMD dot product
//! ([`CompiledPlan`]):
//!
//! ```text
//!   build             fuse                        lower
//! FlattenIq         FlattenIq                  CompiledPlan
//! MfBank      ──►   MfBank  (∘ 1/σ, −μ/σ)  ──►   rows: contiguous f32
//! Affine            heads  (W∘s, b + W·t)        dot_f32 (AVX2 | scalar)
//! heads                                          tiles of 16 shots
//! ```
//!
//! Plans are **derived data**: every constructor (fit, load, quantise)
//! compiles one, nothing is serialised, and the saved-model envelope is
//! untouched. The layered per-stage paths survive on each discriminator
//! (`predict_batch_layered`) as the bit-exactness reference the property
//! tests compare against.

mod exec;
mod fuse;
mod graph;

#[cfg(target_arch = "x86_64")]
pub use exec::dot_f32_avx2;
pub use exec::{dot_f32, dot_f32_scalar, simd_active, CompiledPlan};
pub use fuse::{
    collapse_linear_heads, fold_affine_into_bank, fold_affine_into_dense, fuse, FuseReport,
};
pub use graph::{AffineOp, Branch, DenseOp, MfBankOp, Op, OpGraph, OutputStage};

use crate::features::FeatureExtractor;
use mlr_nn::{IntMlp, Mlp, Standardizer};

/// Compiles a graph: runs the folding passes, then lowers to the `f32`
/// tiled executor.
///
/// # Panics
///
/// Panics if the fused trunk is not `[FlattenIq, MfBank]` or
/// `[FlattenIq, MfBank, Affine]` — the shapes the family builders in this
/// module produce.
pub fn compile(mut graph: OpGraph) -> CompiledPlan {
    let report = fuse(&mut graph);
    CompiledPlan::lower(&graph, report)
}

/// The shared trunk every family starts from: flatten the window, score
/// the extractor's fused kernels, standardise.
fn trunk(extractor: &FeatureExtractor, standardizer: &Standardizer) -> Vec<Op> {
    let rows = extractor.fused_rows();
    let bias = vec![0.0; rows.len()];
    let scale: Vec<f64> = standardizer.stds().iter().map(|&s| 1.0 / s).collect();
    let shift: Vec<f64> = standardizer
        .means()
        .iter()
        .zip(standardizer.stds())
        .map(|(&m, &s)| -m / s)
        .collect();
    vec![
        Op::FlattenIq {
            n_samples: extractor.window_samples(),
        },
        Op::MfBank(MfBankOp { rows, bias }),
        Op::Affine(AffineOp { scale, shift }),
    ]
}

/// Builds the OURS-family graph: shared trunk, one float MLP branch per
/// qubit over the full feature vector.
pub(crate) fn per_qubit_graph(
    extractor: &FeatureExtractor,
    standardizer: &Standardizer,
    heads: &[Mlp],
) -> OpGraph {
    OpGraph {
        trunk: trunk(extractor, standardizer),
        output: OutputStage::PerQubit {
            branches: heads
                .iter()
                .map(|mlp| Branch {
                    take: None,
                    layers: DenseOp::chain_from_mlp(mlp),
                })
                .collect(),
        },
    }
}

/// Builds the HERQULES graph: shared trunk, one joint MLP over all qubits
/// whose argmax decodes into per-qubit levels.
pub(crate) fn joint_graph(
    extractor: &FeatureExtractor,
    standardizer: &Standardizer,
    mlp: &Mlp,
    n_qubits: usize,
    levels: usize,
) -> OpGraph {
    OpGraph {
        trunk: trunk(extractor, standardizer),
        output: OutputStage::Joint {
            layers: DenseOp::chain_from_mlp(mlp),
            n_qubits,
            levels,
        },
    }
}

/// Builds the deployed (OURS-INT) graph: shared trunk, quantised per-qubit
/// heads. The heads quantise their own input, so the standardizer folds
/// *backward* into the kernel bank rather than forward into weights.
pub(crate) fn int_graph(
    extractor: &FeatureExtractor,
    standardizer: &Standardizer,
    heads: &[IntMlp],
) -> OpGraph {
    OpGraph {
        trunk: trunk(extractor, standardizer),
        output: OutputStage::PerQubitInt {
            heads: heads.to_vec(),
        },
    }
}
