//! The compiler's back end: lowering a fused [`OpGraph`] to `f32` tiled
//! kernels scored by the workspace's explicit-SIMD dot product
//! (`mlr_nn::dot_f32` — shared with the network forward passes, re-exported
//! from [`crate::plan`]).
//!
//! # Precision tiers
//!
//! Every plan scores its kernels through one of two dot tiers, selected by
//! [`PlanPrecision`]:
//!
//! * [`PlanPrecision::Reproducible`] (default) — `dot_f32`, the PR 6
//!   contract: AVX2 and its scalar mirror agree **bit-for-bit** (separate
//!   multiply-then-add, fixed reduction tree), so every host serves
//!   identical decisions.
//! * [`PlanPrecision::Fma`] — `fma_f32`, fused multiply-add on both the
//!   vector path (`_mm256_fmadd_ps`) and the scalar mirror
//!   (`f32::mul_add`). One rounding per step instead of two: slightly
//!   *more* accurate and faster on FMA hosts, but not bit-compatible with
//!   the reproducible tier, which is why it is opt-in.
//!
//! # Fused argmax
//!
//! The final dense layer of every argmax-decided head is executed by
//! [`DenseF32::forward_argmax`]: a running (max, index) pair per output row
//! instead of a materialised logit vector, with the strictly-greater tie
//! rule (ties→lowest) shared with `Mlp::predict`. Confidence callers keep
//! the materialising paths ([`CompiledPlan::logits_shot`],
//! [`CompiledPlan::decide_proba`]).

use mlr_nn::IntMlp;
use mlr_num::Complex;

use super::graph::{DenseOp, Op, OpGraph, OutputStage};

/// Shots per execution tile: kernel rows stay cache-resident across a
/// tile, and each tile reuses one flattened-trace scratch buffer.
const PLAN_TILE: usize = 16;

/// Which dot-product tier a compiled plan scores with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanPrecision {
    /// Bit-reproducible multiply-then-add (`dot_f32`): AVX2 and scalar
    /// agree bit-for-bit across hosts. The default.
    #[default]
    Reproducible,
    /// Fused multiply-add (`fma_f32`): faster on FMA hosts and one
    /// rounding per step, but not bit-compatible with the reproducible
    /// tier. Opt-in via [`CompiledPlan::set_precision`].
    Fma,
}

/// The dot function a precision tier dispatches to.
type DotFn = fn(&[f32], &[f32]) -> f32;

impl PlanPrecision {
    fn dot(self) -> DotFn {
        match self {
            PlanPrecision::Reproducible => mlr_nn::dot_f32,
            PlanPrecision::Fma => mlr_nn::fma_f32,
        }
    }
}

// ------------------------------------------------------------- lowering

/// A dense layer lowered to `f32`.
#[derive(Debug, Clone)]
struct DenseF32 {
    n_in: usize,
    n_out: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    relu: bool,
}

impl DenseF32 {
    fn lower(d: &DenseOp) -> Self {
        Self {
            n_in: d.n_in,
            n_out: d.n_out,
            w: d.w.iter().map(|&x| x as f32).collect(),
            b: d.b.iter().map(|&x| x as f32).collect(),
            relu: d.relu,
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>, dot: DotFn) {
        debug_assert_eq!(x.len(), self.n_in);
        out.clear();
        out.reserve(self.n_out);
        for (row, &bias) in self.w.chunks_exact(self.n_in).zip(&self.b) {
            let acc = bias + dot(row, x);
            out.push(if self.relu { acc.max(0.0) } else { acc });
        }
    }

    /// Fused final-layer argmax: tracks a running (best value, index) pair
    /// instead of materialising the logits. Strictly-greater comparison, so
    /// ties resolve to the lowest index — the same rule as `Mlp::predict`
    /// and [`argmax`]. Each row's score is computed exactly as
    /// [`DenseF32::forward`] computes it, so the winner is identical.
    fn forward_argmax(&self, x: &[f32], dot: DotFn) -> usize {
        debug_assert_eq!(x.len(), self.n_in);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (o, (row, &bias)) in self.w.chunks_exact(self.n_in).zip(&self.b).enumerate() {
            let acc = bias + dot(row, x);
            let v = if self.relu { acc.max(0.0) } else { acc };
            if v > best_v {
                best = o;
                best_v = v;
            }
        }
        best
    }
}

/// The lowered output stage.
#[derive(Debug, Clone)]
enum CompiledOutput {
    PerQubit {
        branches: Vec<CompiledBranch>,
    },
    Joint {
        layers: Vec<DenseF32>,
        n_qubits: usize,
        levels: usize,
    },
    JointMarginal {
        layers: Vec<DenseF32>,
        n_qubits: usize,
        levels: usize,
    },
    PerQubitInt {
        heads: Vec<IntMlp>,
    },
}

#[derive(Debug, Clone)]
struct CompiledBranch {
    start: usize,
    len: usize,
    layers: Vec<DenseF32>,
}

impl CompiledBranch {
    /// Runs the branch's hidden layers into `cur` and returns the input to
    /// the final layer along with that layer, or `None` for an empty chain
    /// (the features are already the logits).
    fn run_hidden<'a>(
        &'a self,
        input: &'a [f32],
        cur: &'a mut Vec<f32>,
        next: &mut Vec<f32>,
        dot: DotFn,
    ) -> Option<(&'a [f32], &'a DenseF32)> {
        let (last, hidden) = self.layers.split_last()?;
        match hidden.split_first() {
            None => Some((input, last)),
            Some((first, rest)) => {
                first.forward(input, cur, dot);
                for layer in rest {
                    layer.forward(cur, next, dot);
                    std::mem::swap(cur, next);
                }
                Some((cur, last))
            }
        }
    }
}

/// Argmax with the network's tie rule (strictly-greater, so ties go to the
/// lowest index) — must match `mlr_nn`'s own argmax for plan decisions to
/// equal layered decisions away from exact ties.
fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax in `f32` — the plan-side mirror of
/// `mlr_nn`'s (crate-private) softmax, needed by the marginal decoder and
/// the streaming confidence path.
fn softmax_f32(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// `Mlp::predict_marginal`'s decision rule on plan logits: softmax over
/// the joint classes, per-digit marginal mass (qubit 0 = most significant
/// digit), argmax per digit with ties→lowest. Accumulation order matches
/// the network's own implementation exactly.
fn decide_marginal(logits: &[f32], n_qubits: usize, levels: usize) -> Vec<usize> {
    let probs = softmax_f32(logits);
    let mut marginals = vec![vec![0.0f32; levels]; n_qubits];
    for (class, &p) in probs.iter().enumerate() {
        let mut rem = class;
        for digit in (0..n_qubits).rev() {
            marginals[digit][rem % levels] += p;
            rem /= levels;
        }
    }
    marginals.iter().map(|m| argmax(m)).collect()
}

/// A fused single-pass inference plan: the whole per-shot pipeline —
/// flatten, matched-filter bank, (folded) standardisation, heads, argmax —
/// lowered to `f32` tiled kernels scored by the selected
/// [`PlanPrecision`] tier's dot product.
///
/// Compiled once at fit/load time ([`crate::plan::compile`]); the layered
/// per-stage paths survive on each discriminator as the bit-exactness
/// reference (`predict_batch_layered`).
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    n_samples: usize,
    /// `2 × n_samples` — the flattened-trace width and kernel row stride.
    stride: usize,
    n_rows: usize,
    /// All kernel rows contiguous, row `r` at `rows[r*stride..][..stride]`.
    rows: Vec<f32>,
    /// Per-row nonzero span `(start, end)` within the stride. Matched
    /// filters are dense (the full stride); banded rows — a boxcar
    /// decimation chunk (AE), a checkpoint prefix (OURS-STREAM) — only
    /// touch a window, and scoring skips the structural zeros outside it.
    /// Trimming drops exact-zero terms only (regrouping the reduction
    /// lanes by at most one ulp); spans come from the f64 rows, so the
    /// result stays deterministic and machine-independent.
    row_spans: Vec<(usize, usize)>,
    row_bias: Vec<f32>,
    /// ReLU after the bank rows — set when a hidden dense layer was folded
    /// into the bank (the FNN's first layer).
    bank_relu: bool,
    /// Residual standardisation, only when no folding pass could absorb it
    /// (never the case for the shipped families — kept for generality).
    affine: Option<(Vec<f32>, Vec<f32>)>,
    output: CompiledOutput,
    fuse: super::fuse::FuseReport,
    precision: PlanPrecision,
}

impl CompiledPlan {
    /// Lowers a fused graph. The trunk must be `[FlattenIq, MfBank]` or
    /// `[FlattenIq, MfBank, Affine]` (what [`super::fuse::fuse`] leaves).
    ///
    /// # Panics
    ///
    /// Panics on any other trunk shape or on inconsistent dimensions.
    pub(super) fn lower(graph: &OpGraph, fuse: super::fuse::FuseReport) -> Self {
        let mut ops = graph.trunk.iter();
        let Some(&Op::FlattenIq { n_samples }) = ops.next() else {
            panic!("plan trunk must start with FlattenIq");
        };
        let Some(Op::MfBank(bank)) = ops.next() else {
            panic!("plan trunk must score an MfBank");
        };
        let affine = match ops.next() {
            None => None,
            Some(Op::Affine(a)) => Some((
                a.scale.iter().map(|&x| x as f32).collect::<Vec<f32>>(),
                a.shift.iter().map(|&x| x as f32).collect::<Vec<f32>>(),
            )),
            Some(other) => panic!("unexpected trunk op after MfBank: {other:?}"),
        };
        assert!(ops.next().is_none(), "trunk too deep after fusing");
        assert!(
            !(bank.relu && affine.is_some()),
            "residual affine after a ReLU bank is not lowerable"
        );

        let stride = 2 * n_samples;
        let n_rows = bank.rows.len();
        let mut rows = Vec::with_capacity(n_rows * stride);
        let mut row_spans = Vec::with_capacity(n_rows);
        for row in &bank.rows {
            assert_eq!(row.len(), stride, "kernel row length != 2 × window");
            rows.extend(row.iter().map(|&x| x as f32));
            // Nonzero span in the f64 source (an all-zero row gets the
            // empty span: its score is the bias alone).
            let start = row.iter().position(|&x| x != 0.0).unwrap_or(0);
            let end = row.iter().rposition(|&x| x != 0.0).map_or(start, |e| e + 1);
            row_spans.push((start, end));
        }
        let row_bias: Vec<f32> = bank.bias.iter().map(|&x| x as f32).collect();
        assert_eq!(row_bias.len(), n_rows, "bank bias length != row count");

        let output = match &graph.output {
            OutputStage::PerQubit { branches } => CompiledOutput::PerQubit {
                branches: branches
                    .iter()
                    .map(|br| {
                        let range = br.take.clone().unwrap_or(0..n_rows);
                        CompiledBranch {
                            start: range.start,
                            len: range.end - range.start,
                            layers: br.layers.iter().map(DenseF32::lower).collect(),
                        }
                    })
                    .collect(),
            },
            OutputStage::Joint {
                layers,
                n_qubits,
                levels,
            } => CompiledOutput::Joint {
                layers: layers.iter().map(DenseF32::lower).collect(),
                n_qubits: *n_qubits,
                levels: *levels,
            },
            OutputStage::JointMarginal {
                layers,
                n_qubits,
                levels,
            } => CompiledOutput::JointMarginal {
                layers: layers.iter().map(DenseF32::lower).collect(),
                n_qubits: *n_qubits,
                levels: *levels,
            },
            OutputStage::PerQubitInt { heads } => CompiledOutput::PerQubitInt {
                heads: heads.clone(),
            },
        };

        Self {
            n_samples,
            stride,
            n_rows,
            rows,
            row_spans,
            row_bias,
            bank_relu: bank.relu,
            affine,
            output,
            fuse,
            precision: PlanPrecision::default(),
        }
    }

    /// Readout-window length the plan expects (samples per trace).
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Kernel rows scored against each shot — after folding, this can be
    /// smaller than the model's feature dimension (collapsed linear heads).
    pub fn n_kernel_rows(&self) -> usize {
        self.n_rows
    }

    /// Which folding passes fired when this plan was compiled.
    pub fn fuse_report(&self) -> super::fuse::FuseReport {
        self.fuse
    }

    /// The dot-product tier this plan scores with.
    pub fn precision(&self) -> PlanPrecision {
        self.precision
    }

    /// Selects the dot-product tier. The default
    /// ([`PlanPrecision::Reproducible`]) keeps PR 6's bit-reproducibility
    /// contract; [`PlanPrecision::Fma`] trades it for fused-rounding
    /// throughput. Decisions agree between tiers except on near-exact logit
    /// ties.
    pub fn set_precision(&mut self, precision: PlanPrecision) {
        self.precision = precision;
    }

    /// Flattens a tile of traces into `flat` (interleaved `f32` IQ) and
    /// scores every kernel row, filter-major so rows stay cache-hot.
    /// `feats` is laid out shot-major: shot `s`'s features at
    /// `feats[s*n_rows..][..n_rows]`.
    fn features_into(&self, tile: &[&[Complex]], flat: &mut Vec<f32>, feats: &mut Vec<f32>) {
        let dot = self.precision.dot();
        let stride = self.stride;
        flat.clear();
        flat.resize(tile.len() * stride, 0.0);
        for (dst, raw) in flat.chunks_exact_mut(stride).zip(tile) {
            assert_eq!(raw.len(), self.n_samples, "trace length != readout window");
            for (pair, z) in dst.chunks_exact_mut(2).zip(raw.iter()) {
                pair[0] = z.re as f32;
                pair[1] = z.im as f32;
            }
        }
        feats.clear();
        feats.resize(tile.len() * self.n_rows, 0.0);
        for (r, ((row, &bias), &(s0, s1))) in self
            .rows
            .chunks_exact(stride)
            .zip(&self.row_bias)
            .zip(&self.row_spans)
            .enumerate()
        {
            // Banded rows (boxcar chunks, checkpoint prefixes) score only
            // their nonzero window.
            let krow = &row[s0..s1];
            for (s, flat_s) in flat.chunks_exact(stride).enumerate() {
                let score = dot(&flat_s[s0..s1], krow) + bias;
                feats[s * self.n_rows + r] = if self.bank_relu {
                    score.max(0.0)
                } else {
                    score
                };
            }
        }
        if let Some((scale, shift)) = &self.affine {
            for f in feats.chunks_exact_mut(self.n_rows) {
                for ((v, &sc), &sh) in f.iter_mut().zip(scale).zip(shift) {
                    *v = *v * sc + sh;
                }
            }
        }
    }

    /// Post-trunk feature vectors (kernel scores after folding, bank
    /// activation, and any residual affine) for a batch of traces — the
    /// compiled trunk alone, exposed so fit-time callers can reuse the
    /// fused extraction without the decision stage.
    ///
    /// # Panics
    ///
    /// Panics if any trace's length differs from the readout window.
    pub fn features_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<f32>> {
        let tiles: Vec<&[&[Complex]]> = shots.chunks(PLAN_TILE).collect();
        let per_tile = crate::par_map(&tiles, |tile| {
            let (mut flat, mut feats) = (Vec::new(), Vec::new());
            self.features_into(tile, &mut flat, &mut feats);
            feats
                .chunks_exact(self.n_rows)
                .map(<[f32]>::to_vec)
                .collect::<Vec<_>>()
        });
        per_tile.into_iter().flatten().collect()
    }

    /// Decides one shot's per-qubit levels from its feature vector. Every
    /// argmax-decided head runs its final dense layer through the fused
    /// running-max kernel ([`DenseF32::forward_argmax`]) — logits are never
    /// materialised on this path.
    fn decide(&self, f: &[f32]) -> Vec<usize> {
        let dot = self.precision.dot();
        match &self.output {
            CompiledOutput::PerQubit { branches } => {
                let mut out = Vec::with_capacity(branches.len());
                let mut cur = Vec::new();
                let mut next = Vec::new();
                for br in branches {
                    let input = &f[br.start..br.start + br.len];
                    match br.run_hidden(input, &mut cur, &mut next, dot) {
                        None => out.push(argmax(input)),
                        Some((x, last)) => out.push(last.forward_argmax(x, dot)),
                    }
                }
                out
            }
            CompiledOutput::Joint {
                layers,
                n_qubits,
                levels,
            } => {
                let (last, hidden) = layers.split_last().expect("nonempty joint chain");
                let joint = if hidden.is_empty() {
                    last.forward_argmax(f, dot)
                } else {
                    let h = forward_chain(hidden, f, dot);
                    last.forward_argmax(&h, dot)
                };
                decode_joint(joint, *n_qubits, *levels)
            }
            CompiledOutput::JointMarginal {
                layers,
                n_qubits,
                levels,
            } => {
                // Marginal decoding needs the full softmax — no argmax
                // fusion possible here.
                let logits = forward_chain(layers, f, dot);
                decide_marginal(&logits, *n_qubits, *levels)
            }
            CompiledOutput::PerQubitInt { heads } => heads.iter().map(|h| h.predict(f)).collect(),
        }
    }

    /// Per-qubit `(level, confidence)` decisions from one feature vector:
    /// each argmax head's softmax winner and its probability — the fused
    /// form of the streaming checkpoints' confidence rule. Falls back to
    /// probability 1.0 for heads with no probabilistic reading (collapsed
    /// linear branches, integer heads).
    fn decide_proba(&self, f: &[f32]) -> Vec<(usize, f64)> {
        let dot = self.precision.dot();
        match &self.output {
            CompiledOutput::PerQubit { branches } => {
                let mut out = Vec::with_capacity(branches.len());
                let mut cur = Vec::new();
                let mut next = Vec::new();
                for br in branches {
                    let input = &f[br.start..br.start + br.len];
                    let logits: &[f32] = match br.run_hidden(input, &mut cur, &mut next, dot) {
                        None => input,
                        Some((x, last)) => {
                            last.forward(x, &mut next, dot);
                            std::mem::swap(&mut cur, &mut next);
                            &cur
                        }
                    };
                    let probs = softmax_f32(logits);
                    let (mut best, mut best_p) = (0usize, f64::NEG_INFINITY);
                    for (i, &p) in probs.iter().enumerate() {
                        if (p as f64) > best_p {
                            best = i;
                            best_p = p as f64;
                        }
                    }
                    out.push((best, best_p));
                }
                out
            }
            _ => self.decide(f).into_iter().map(|l| (l, 1.0)).collect(),
        }
    }

    /// Fused per-qubit `(level, confidence)` decisions for one raw trace —
    /// the streaming checkpoints' verdict, end-to-end on the compiled
    /// datapath.
    ///
    /// # Panics
    ///
    /// Panics if the trace's length differs from the readout window.
    pub fn predict_shot_proba(&self, raw: &[Complex]) -> Vec<(usize, f64)> {
        let (mut flat, mut feats) = (Vec::new(), Vec::new());
        self.features_into(&[raw], &mut flat, &mut feats);
        self.decide_proba(&feats)
    }

    /// Raw decision scores for one trace, per head: the logits each branch
    /// argmaxes (for integer heads, the dequantised outputs). The
    /// plan-vs-layered equivalence property compares these against the
    /// layered reference within 1e-4 relative.
    ///
    /// # Panics
    ///
    /// Panics if the trace's length differs from the readout window.
    pub fn logits_shot(&self, raw: &[Complex]) -> Vec<Vec<f32>> {
        let dot = self.precision.dot();
        let (mut flat, mut feats) = (Vec::new(), Vec::new());
        self.features_into(&[raw], &mut flat, &mut feats);
        match &self.output {
            CompiledOutput::PerQubit { branches } => branches
                .iter()
                .map(|br| {
                    let input = &feats[br.start..br.start + br.len];
                    if br.layers.is_empty() {
                        input.to_vec()
                    } else {
                        forward_chain(&br.layers, input, dot)
                    }
                })
                .collect(),
            CompiledOutput::Joint { layers, .. } | CompiledOutput::JointMarginal { layers, .. } => {
                vec![forward_chain(layers, &feats, dot)]
            }
            CompiledOutput::PerQubitInt { heads } => {
                heads.iter().map(|h| h.forward(&feats)).collect()
            }
        }
    }

    /// Classifies one raw trace through the fused single-pass datapath.
    /// Identical arithmetic to one shot of [`CompiledPlan::predict_batch`]
    /// — the per-(shot, kernel) dots are independent of tiling — so batch
    /// and per-shot decisions are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if the trace's length differs from the readout window.
    pub fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        let (mut flat, mut feats) = (Vec::new(), Vec::new());
        self.features_into(&[raw], &mut flat, &mut feats);
        self.decide(&feats)
    }

    /// Classifies a batch of raw traces: 16-shot tiles fanned over worker
    /// threads (`MLR_THREADS` honoured via [`crate::par_map`]), one
    /// flattened-trace scratch per tile, kernel rows read once per tile.
    ///
    /// # Panics
    ///
    /// Panics if any trace's length differs from the readout window.
    pub fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        let tiles: Vec<&[&[Complex]]> = shots.chunks(PLAN_TILE).collect();
        let per_tile = crate::par_map(&tiles, |tile| {
            let (mut flat, mut feats) = (Vec::new(), Vec::new());
            self.features_into(tile, &mut flat, &mut feats);
            feats
                .chunks_exact(self.n_rows)
                .map(|f| self.decide(f))
                .collect::<Vec<_>>()
        });
        per_tile.into_iter().flatten().collect()
    }
}

/// Runs a dense chain on `x`, returning the final layer's outputs.
fn forward_chain(layers: &[DenseF32], x: &[f32], dot: DotFn) -> Vec<f32> {
    let (first, rest) = layers.split_first().expect("nonempty chain");
    let mut cur = Vec::new();
    let mut next = Vec::new();
    first.forward(x, &mut cur, dot);
    for layer in rest {
        layer.forward(&cur, &mut next, dot);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Splits a joint class index into per-qubit digits, most significant
/// digit first — the same convention as `BasisState::from_flat_index`.
fn decode_joint(joint: usize, n_qubits: usize, levels: usize) -> Vec<usize> {
    let mut digits = vec![0usize; n_qubits];
    let mut rem = joint;
    for d in digits.iter_mut().rev() {
        *d = rem % levels;
        rem /= levels;
    }
    digits
}
