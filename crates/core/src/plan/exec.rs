//! The compiler's back end: lowering a fused [`OpGraph`] to `f32` tiled
//! kernels, and the explicit-SIMD dot product they are scored by.
//!
//! # SIMD contract
//!
//! [`dot_f32`] dispatches at runtime (cached feature detection) between an
//! AVX2 path and a scalar fallback that mirrors the vector code's exact
//! lane and reduction structure: 4 accumulator vectors × 8 lanes, pairwise
//! lane reduction `(a0+a1)+(a2+a3)`, the same fixed horizontal tree, and a
//! shared scalar remainder loop. Both paths use separate multiply-then-add
//! (deliberately **no FMA** — an FMA's unrounded intermediate would make
//! the two paths diverge in the last bit, and the kernel is load-bound so
//! FMA buys no throughput here). The result: scalar and AVX2 agree
//! **bit-for-bit**, which the workspace's property tests pin, and a host
//! without AVX2 serves identical decisions.

use mlr_nn::IntMlp;
use mlr_num::Complex;

use super::graph::{DenseOp, Op, OpGraph, OutputStage};

/// Shots per execution tile: kernel rows stay cache-resident across a
/// tile, and each tile reuses one flattened-trace scratch buffer.
const PLAN_TILE: usize = 16;

// ------------------------------------------------------------------ SIMD

#[cfg(target_arch = "x86_64")]
fn avx2_enabled() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

/// Whether this host serves the AVX2 path (`false` means the bit-identical
/// scalar fallback is in use).
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2_enabled()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Shared tail of both dot paths: fixed-order horizontal reduction of the
/// 8 lane sums, then the (sub-32-element) remainder accumulated serially.
#[inline]
fn finish_dot(lanes: &[f32; 8], ra: &[f32], rb: &[f32]) -> f32 {
    let mut total = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (&x, &y) in ra.iter().zip(rb) {
        total += x * y;
    }
    total
}

/// Scalar dot product mirroring the AVX2 path's lane structure exactly:
/// 32 accumulators laid out as 4 vectors × 8 lanes, reduced pairwise.
/// Bit-identical to [`dot_f32_avx2`] by construction.
///
/// # Panics
///
/// Panics in debug builds if the slices' lengths differ.
pub fn dot_f32_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 32];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for ((acc, &x), &y) in acc.iter_mut().zip(xa).zip(xb) {
            *acc += x * y;
        }
    }
    let mut lanes = [0.0f32; 8];
    for (l, lane) in lanes.iter_mut().enumerate() {
        *lane = (acc[l] + acc[8 + l]) + (acc[16 + l] + acc[24 + l]);
    }
    finish_dot(&lanes, ca.remainder(), cb.remainder())
}

/// # Safety
///
/// Caller must ensure AVX2 is available and `a.len() == b.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_f32_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    let n = a.len();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        let pa = a.as_ptr().add(i);
        let pb = b.as_ptr().add(i);
        acc0 = _mm256_add_ps(
            acc0,
            _mm256_mul_ps(_mm256_loadu_ps(pa), _mm256_loadu_ps(pb)),
        );
        acc1 = _mm256_add_ps(
            acc1,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(8)), _mm256_loadu_ps(pb.add(8))),
        );
        acc2 = _mm256_add_ps(
            acc2,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(16)), _mm256_loadu_ps(pb.add(16))),
        );
        acc3 = _mm256_add_ps(
            acc3,
            _mm256_mul_ps(_mm256_loadu_ps(pa.add(24)), _mm256_loadu_ps(pb.add(24))),
        );
        i += 32;
    }
    let s = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), s);
    finish_dot(&lanes, &a[i..], &b[i..])
}

/// The AVX2 dot product (safe wrapper) — exposed for the scalar-vs-AVX2
/// bit-agreement tests.
///
/// # Panics
///
/// Panics if AVX2 is not available on this host (check [`simd_active`]
/// first) or, in debug builds, if the slices' lengths differ.
#[cfg(target_arch = "x86_64")]
pub fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    assert!(avx2_enabled(), "AVX2 unavailable on this host");
    // SAFETY: availability checked above; equal lengths asserted.
    unsafe { dot_f32_avx2_impl(a, b) }
}

/// Contiguous `f32` dot product with runtime SIMD dispatch — every score
/// the compiled plan produces goes through this one function, single-shot
/// and batched alike, which is what makes the two bit-identical.
///
/// # Panics
///
/// Panics in debug builds if the slices' lengths differ.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_enabled() {
            // SAFETY: availability checked at runtime.
            return unsafe { dot_f32_avx2_impl(a, b) };
        }
    }
    dot_f32_scalar(a, b)
}

// ------------------------------------------------------------- lowering

/// A dense layer lowered to `f32`.
#[derive(Debug, Clone)]
struct DenseF32 {
    n_in: usize,
    n_out: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    relu: bool,
}

impl DenseF32 {
    fn lower(d: &DenseOp) -> Self {
        Self {
            n_in: d.n_in,
            n_out: d.n_out,
            w: d.w.iter().map(|&x| x as f32).collect(),
            b: d.b.iter().map(|&x| x as f32).collect(),
            relu: d.relu,
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.n_in);
        out.clear();
        out.reserve(self.n_out);
        for (row, &bias) in self.w.chunks_exact(self.n_in).zip(&self.b) {
            let acc = bias + dot_f32(row, x);
            out.push(if self.relu { acc.max(0.0) } else { acc });
        }
    }
}

/// The lowered output stage.
#[derive(Debug, Clone)]
enum CompiledOutput {
    PerQubit {
        branches: Vec<CompiledBranch>,
    },
    Joint {
        layers: Vec<DenseF32>,
        n_qubits: usize,
        levels: usize,
    },
    PerQubitInt {
        heads: Vec<IntMlp>,
    },
}

#[derive(Debug, Clone)]
struct CompiledBranch {
    start: usize,
    len: usize,
    layers: Vec<DenseF32>,
}

/// Argmax with the network's tie rule (strictly-greater, so ties go to the
/// lowest index) — must match `mlr_nn`'s own argmax for plan decisions to
/// equal layered decisions away from exact ties.
fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// A fused single-pass inference plan: the whole per-shot pipeline —
/// flatten, matched-filter bank, (folded) standardisation, heads, argmax —
/// lowered to `f32` tiled kernels scored by [`dot_f32`].
///
/// Compiled once at fit/load time ([`crate::plan::compile`]); the layered
/// per-stage paths survive on each discriminator as the bit-exactness
/// reference (`predict_batch_layered`).
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    n_samples: usize,
    /// `2 × n_samples` — the flattened-trace width and kernel row stride.
    stride: usize,
    n_rows: usize,
    /// All kernel rows contiguous, row `r` at `rows[r*stride..][..stride]`.
    rows: Vec<f32>,
    row_bias: Vec<f32>,
    /// Residual standardisation, only when no folding pass could absorb it
    /// (never the case for the shipped families — kept for generality).
    affine: Option<(Vec<f32>, Vec<f32>)>,
    output: CompiledOutput,
    fuse: super::fuse::FuseReport,
}

impl CompiledPlan {
    /// Lowers a fused graph. The trunk must be `[FlattenIq, MfBank]` or
    /// `[FlattenIq, MfBank, Affine]` (what [`super::fuse::fuse`] leaves).
    ///
    /// # Panics
    ///
    /// Panics on any other trunk shape or on inconsistent dimensions.
    pub(super) fn lower(graph: &OpGraph, fuse: super::fuse::FuseReport) -> Self {
        let mut ops = graph.trunk.iter();
        let Some(&Op::FlattenIq { n_samples }) = ops.next() else {
            panic!("plan trunk must start with FlattenIq");
        };
        let Some(Op::MfBank(bank)) = ops.next() else {
            panic!("plan trunk must score an MfBank");
        };
        let affine = match ops.next() {
            None => None,
            Some(Op::Affine(a)) => Some((
                a.scale.iter().map(|&x| x as f32).collect::<Vec<f32>>(),
                a.shift.iter().map(|&x| x as f32).collect::<Vec<f32>>(),
            )),
            Some(other) => panic!("unexpected trunk op after MfBank: {other:?}"),
        };
        assert!(ops.next().is_none(), "trunk too deep after fusing");

        let stride = 2 * n_samples;
        let n_rows = bank.rows.len();
        let mut rows = Vec::with_capacity(n_rows * stride);
        for row in &bank.rows {
            assert_eq!(row.len(), stride, "kernel row length != 2 × window");
            rows.extend(row.iter().map(|&x| x as f32));
        }
        let row_bias: Vec<f32> = bank.bias.iter().map(|&x| x as f32).collect();
        assert_eq!(row_bias.len(), n_rows, "bank bias length != row count");

        let output = match &graph.output {
            OutputStage::PerQubit { branches } => CompiledOutput::PerQubit {
                branches: branches
                    .iter()
                    .map(|br| {
                        let range = br.take.clone().unwrap_or(0..n_rows);
                        CompiledBranch {
                            start: range.start,
                            len: range.end - range.start,
                            layers: br.layers.iter().map(DenseF32::lower).collect(),
                        }
                    })
                    .collect(),
            },
            OutputStage::Joint {
                layers,
                n_qubits,
                levels,
            } => CompiledOutput::Joint {
                layers: layers.iter().map(DenseF32::lower).collect(),
                n_qubits: *n_qubits,
                levels: *levels,
            },
            OutputStage::PerQubitInt { heads } => CompiledOutput::PerQubitInt {
                heads: heads.clone(),
            },
        };

        Self {
            n_samples,
            stride,
            n_rows,
            rows,
            row_bias,
            affine,
            output,
            fuse,
        }
    }

    /// Readout-window length the plan expects (samples per trace).
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Kernel rows scored against each shot — after folding, this can be
    /// smaller than the model's feature dimension (collapsed linear heads).
    pub fn n_kernel_rows(&self) -> usize {
        self.n_rows
    }

    /// Which folding passes fired when this plan was compiled.
    pub fn fuse_report(&self) -> super::fuse::FuseReport {
        self.fuse
    }

    /// Flattens a tile of traces into `flat` (interleaved `f32` IQ) and
    /// scores every kernel row, filter-major so rows stay cache-hot.
    /// `feats` is laid out shot-major: shot `s`'s features at
    /// `feats[s*n_rows..][..n_rows]`.
    fn features_into(&self, tile: &[&[Complex]], flat: &mut Vec<f32>, feats: &mut Vec<f32>) {
        let stride = self.stride;
        flat.clear();
        flat.resize(tile.len() * stride, 0.0);
        for (dst, raw) in flat.chunks_exact_mut(stride).zip(tile) {
            assert_eq!(raw.len(), self.n_samples, "trace length != readout window");
            for (pair, z) in dst.chunks_exact_mut(2).zip(raw.iter()) {
                pair[0] = z.re as f32;
                pair[1] = z.im as f32;
            }
        }
        feats.clear();
        feats.resize(tile.len() * self.n_rows, 0.0);
        for (r, (row, &bias)) in self
            .rows
            .chunks_exact(stride)
            .zip(&self.row_bias)
            .enumerate()
        {
            for (s, flat_s) in flat.chunks_exact(stride).enumerate() {
                feats[s * self.n_rows + r] = dot_f32(flat_s, row) + bias;
            }
        }
        if let Some((scale, shift)) = &self.affine {
            for f in feats.chunks_exact_mut(self.n_rows) {
                for ((v, &sc), &sh) in f.iter_mut().zip(scale).zip(shift) {
                    *v = *v * sc + sh;
                }
            }
        }
    }

    /// Decides one shot's per-qubit levels from its feature vector.
    fn decide(&self, f: &[f32]) -> Vec<usize> {
        match &self.output {
            CompiledOutput::PerQubit { branches } => {
                let mut out = Vec::with_capacity(branches.len());
                let mut cur = Vec::new();
                let mut next = Vec::new();
                for br in branches {
                    let input = &f[br.start..br.start + br.len];
                    match br.layers.split_first() {
                        None => out.push(argmax(input)),
                        Some((first, rest)) => {
                            first.forward(input, &mut cur);
                            for layer in rest {
                                layer.forward(&cur, &mut next);
                                std::mem::swap(&mut cur, &mut next);
                            }
                            out.push(argmax(&cur));
                        }
                    }
                }
                out
            }
            CompiledOutput::Joint {
                layers,
                n_qubits,
                levels,
            } => {
                let logits = forward_chain(layers, f);
                decode_joint(argmax(&logits), *n_qubits, *levels)
            }
            CompiledOutput::PerQubitInt { heads } => heads.iter().map(|h| h.predict(f)).collect(),
        }
    }

    /// Raw decision scores for one trace, per head: the logits each branch
    /// argmaxes (for integer heads, the dequantised outputs). The
    /// plan-vs-layered equivalence property compares these against the
    /// layered reference within 1e-4 relative.
    ///
    /// # Panics
    ///
    /// Panics if the trace's length differs from the readout window.
    pub fn logits_shot(&self, raw: &[Complex]) -> Vec<Vec<f32>> {
        let (mut flat, mut feats) = (Vec::new(), Vec::new());
        self.features_into(&[raw], &mut flat, &mut feats);
        match &self.output {
            CompiledOutput::PerQubit { branches } => branches
                .iter()
                .map(|br| {
                    let input = &feats[br.start..br.start + br.len];
                    if br.layers.is_empty() {
                        input.to_vec()
                    } else {
                        forward_chain(&br.layers, input)
                    }
                })
                .collect(),
            CompiledOutput::Joint { layers, .. } => vec![forward_chain(layers, &feats)],
            CompiledOutput::PerQubitInt { heads } => {
                heads.iter().map(|h| h.forward(&feats)).collect()
            }
        }
    }

    /// Classifies one raw trace through the fused single-pass datapath.
    /// Identical arithmetic to one shot of [`CompiledPlan::predict_batch`]
    /// — the per-(shot, kernel) dots are independent of tiling — so batch
    /// and per-shot decisions are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if the trace's length differs from the readout window.
    pub fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        let (mut flat, mut feats) = (Vec::new(), Vec::new());
        self.features_into(&[raw], &mut flat, &mut feats);
        self.decide(&feats)
    }

    /// Classifies a batch of raw traces: 16-shot tiles fanned over worker
    /// threads (`MLR_THREADS` honoured via [`crate::par_map`]), one
    /// flattened-trace scratch per tile, kernel rows read once per tile.
    ///
    /// # Panics
    ///
    /// Panics if any trace's length differs from the readout window.
    pub fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        let tiles: Vec<&[&[Complex]]> = shots.chunks(PLAN_TILE).collect();
        let per_tile = crate::par_map(&tiles, |tile| {
            let (mut flat, mut feats) = (Vec::new(), Vec::new());
            self.features_into(tile, &mut flat, &mut feats);
            feats
                .chunks_exact(self.n_rows)
                .map(|f| self.decide(f))
                .collect::<Vec<_>>()
        });
        per_tile.into_iter().flatten().collect()
    }
}

/// Runs a dense chain on `x`, returning the final layer's outputs.
fn forward_chain(layers: &[DenseF32], x: &[f32]) -> Vec<f32> {
    let (first, rest) = layers.split_first().expect("nonempty chain");
    let mut cur = Vec::new();
    let mut next = Vec::new();
    first.forward(x, &mut cur);
    for layer in rest {
        layer.forward(&cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Splits a joint class index into per-qubit digits, most significant
/// digit first — the same convention as `BasisState::from_flat_index`.
fn decode_joint(joint: usize, n_qubits: usize, levels: usize) -> Vec<usize> {
    let mut digits = vec![0usize; n_qubits];
    let mut rem = joint;
    for d in digits.iter_mut().rev() {
        *d = rem % levels;
        rem /= levels;
    }
    digits
}
