//! The op graph: a declarative description of one discriminator's per-shot
//! inference pipeline, built from the fitted model's pieces and consumed by
//! the folding passes ([`crate::plan::fuse`]) and the lowering step
//! ([`crate::plan::CompiledPlan`]).
//!
//! A graph is a straight **trunk** (ops every head shares) feeding one
//! **output stage** (the family-specific decision structure):
//!
//! ```text
//! FlattenIq → MfBank → Affine → ┬ Branch 0: Dense…Dense → argmax
//!                               ├ Branch 1: …
//!                               └ …
//! ```
//!
//! All weights are carried in `f64` so the folding algebra happens at the
//! precision the model was fitted in; the executor casts once at lowering.

use mlr_nn::{IntMlp, Mlp};

/// Elementwise affine `y_i = x_i · scale_i + shift_i` — the graph form of
/// the standardizer, with `scale = 1/σ` and `shift = −μ/σ`.
#[derive(Debug, Clone)]
pub struct AffineOp {
    /// Per-feature multiplier.
    pub scale: Vec<f64>,
    /// Per-feature offset, applied after scaling.
    pub shift: Vec<f64>,
}

/// Dense layer `y = W·x + b`, optionally followed by ReLU.
#[derive(Debug, Clone)]
pub struct DenseOp {
    /// Input width.
    pub n_in: usize,
    /// Output width.
    pub n_out: usize,
    /// Row-major weights, `w[o * n_in + i]`.
    pub w: Vec<f64>,
    /// Biases, one per output.
    pub b: Vec<f64>,
    /// Apply ReLU after the affine map (hidden layers).
    pub relu: bool,
}

impl DenseOp {
    /// Lifts layer `l` of a trained [`Mlp`] into the graph (hidden layers
    /// get `relu = true`, the output layer stays linear — exactly the
    /// network's own forward rule).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn from_mlp_layer(mlp: &Mlp, l: usize) -> Self {
        Self {
            n_in: mlp.sizes()[l],
            n_out: mlp.sizes()[l + 1],
            w: mlp.layer_weights(l).iter().map(|&x| f64::from(x)).collect(),
            b: mlp.layer_biases(l).iter().map(|&x| f64::from(x)).collect(),
            relu: l + 1 < mlp.n_layers(),
        }
    }

    /// Lifts every layer of an [`Mlp`] into a dense chain.
    pub fn chain_from_mlp(mlp: &Mlp) -> Vec<Self> {
        (0..mlp.n_layers())
            .map(|l| Self::from_mlp_layer(mlp, l))
            .collect()
    }
}

/// Matched-filter bank: one dot product per row against the flattened
/// `[re, im, …]` trace, in the same pre-rotated raw-trace domain as
/// [`crate::FeatureExtractor`]'s fused kernels, plus an optional per-row
/// bias (zero until a folding pass pushes one in).
#[derive(Debug, Clone)]
pub struct MfBankOp {
    /// Raw-domain kernel rows, each `2 × n_samples` interleaved weights.
    pub rows: Vec<Vec<f64>>,
    /// Per-row bias added to each dot product.
    pub bias: Vec<f64>,
    /// Apply ReLU after each row's dot + bias. Matched-filter banks are
    /// linear (`false`); a dense *hidden* layer folded down into the bank —
    /// the FNN's first layer scored directly against the raw trace —
    /// carries its activation with it (`true`). A ReLU bank is a fusion
    /// barrier: nothing linear can fold across it.
    pub relu: bool,
}

/// One trunk op, shared by every output branch.
#[derive(Debug, Clone)]
pub enum Op {
    /// Interleave the complex trace as `[re, im, re, im, …]`.
    FlattenIq {
        /// Expected trace length (the readout window).
        n_samples: usize,
    },
    /// Matched-filter bank scoring.
    MfBank(MfBankOp),
    /// Elementwise affine (standardisation).
    Affine(AffineOp),
}

/// One per-qubit head: a slice of the trunk features through a dense
/// chain, decided by argmax. An empty chain means the features *are* the
/// logits (a fully collapsed linear head).
#[derive(Debug, Clone)]
pub struct Branch {
    /// Feature range this branch reads; `None` reads the whole vector.
    pub take: Option<std::ops::Range<usize>>,
    /// Dense layers from features to logits.
    pub layers: Vec<DenseOp>,
}

/// The family-specific decision structure at the end of the trunk.
#[derive(Debug, Clone)]
pub enum OutputStage {
    /// Independent per-qubit heads, each argmaxed separately (OURS).
    PerQubit {
        /// One branch per qubit, in qubit order.
        branches: Vec<Branch>,
    },
    /// One joint head over all qubits: argmax over `levelsⁿ` classes,
    /// decoded into per-qubit digits (HERQULES).
    Joint {
        /// Dense layers from features to the joint logits.
        layers: Vec<DenseOp>,
        /// Qubit count the joint class index decodes into.
        n_qubits: usize,
        /// Level-alphabet size per qubit.
        levels: usize,
    },
    /// One joint head whose `levelsⁿ` softmax is decoded by per-qubit
    /// *marginals* rather than a joint argmax: the mass of every joint
    /// class sharing each digit value is summed and each digit argmaxed
    /// separately — `Mlp::predict_marginal`'s rule, used by the FNN
    /// baseline. Needs the full softmax, so argmax cannot fuse into the
    /// last layer here.
    JointMarginal {
        /// Dense layers from features to the joint logits.
        layers: Vec<DenseOp>,
        /// Digit count (qubits) the marginals decode into.
        n_qubits: usize,
        /// Level-alphabet size per digit.
        levels: usize,
    },
    /// Per-qubit integer (fixed-point) heads. These quantise their own
    /// input, so no float folding can cross this boundary — the trunk must
    /// deliver standardised features (OURS-INT).
    PerQubitInt {
        /// One quantised head per qubit, in qubit order.
        heads: Vec<IntMlp>,
    },
}

/// A whole inference pipeline: trunk ops feeding the output stage.
#[derive(Debug, Clone)]
pub struct OpGraph {
    /// Shared ops, applied in order to each shot.
    pub trunk: Vec<Op>,
    /// The decision structure consuming the trunk's features.
    pub output: OutputStage,
}

impl OpGraph {
    /// Number of ops in the trunk (folding passes shrink this).
    pub fn trunk_len(&self) -> usize {
        self.trunk.len()
    }
}
