//! End-to-end feature extraction: raw multiplexed trace → merged
//! matched-filter scores from every qubit (Fig. 4(a)–(b)).

use mlr_dsp::{iq_features, Demodulator, MatchedFilterKind};
use mlr_num::Complex;
use mlr_sim::{ChipConfig, TraceDataset};
use rayon::prelude::*;

use crate::QubitMfBank;

/// One matched filter with the demodulation rotation folded in: weights in
/// the **raw-trace** domain, so a score is a single dot product against
/// the undemodulated composite trace — no per-shot demodulation at all.
///
/// Derivation: with reference phasor `c_t = e^{-i 2π f_q t}`, the baseband
/// is `b_t = z_t · c_t`, and the bank scores `Σ_t k_I[t]·Re(b_t) +
/// k_Q[t]·Im(b_t)`. Substituting gives raw-domain weights
/// `w_I[t] = k_I[t]·Re(c_t) + k_Q[t]·Im(c_t)` and
/// `w_Q[t] = k_Q[t]·Re(c_t) − k_I[t]·Im(c_t)` — exactly the pre-rotated
/// coefficient memory an FPGA datapath would load. The weights are stored
/// interleaved (`w[2t] = w_I[t]`, `w[2t+1] = w_Q[t]`) so the score is one
/// contiguous dot product against the flattened `[re, im, re, im, …]`
/// trace.
#[derive(Debug, Clone)]
struct FusedKernel {
    w: Vec<f64>,
}

/// Shots per tile in the batched extraction: kernels stay cache-resident
/// across a tile, which is where the batch path's amortisation comes from.
const BATCH_TILE: usize = 16;

/// Writes a complex trace as interleaved `[re, im, …]` into `flat`.
fn flatten_iq(raw: &[Complex], flat: &mut Vec<f64>) {
    flat.clear();
    flat.reserve(2 * raw.len());
    for z in raw {
        flat.push(z.re);
        flat.push(z.im);
    }
}

/// The effective (de-mixed) baseband of one qubit: the α-weighted sum of
/// the participating channels' demodulated traces. The single-entry
/// identity recipe short-circuits to plain demodulation, so the
/// `joint_neighbors = 0` layered path is bit-identical to the historic
/// per-qubit one.
fn joint_baseband(demod: &Demodulator, mix_q: &[(usize, f64)], raw: &[Complex]) -> Vec<Complex> {
    if let [(q, alpha)] = mix_q {
        if *alpha == 1.0 {
            return demod.demodulate(raw, *q);
        }
    }
    let mut out = vec![Complex::ZERO; raw.len()];
    for &(p, alpha) in mix_q {
        for (acc, z) in out.iter_mut().zip(demod.demodulate(raw, p)) {
            acc.re += alpha * z.re;
            acc.im += alpha * z.im;
        }
    }
    out
}

/// Contiguous dot product with four independent accumulators, breaking the
/// FMA latency chain so the compiler can keep SIMD lanes busy. Every
/// fused-path score — single-shot and batched — goes through this one
/// function, which is what makes the two bit-identical.
fn fused_dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc[0] += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Demodulates a raw trace and scores every qubit's matched-filter bank,
/// merging the scores into one feature vector (`9 × n` entries for the
/// paper's three-level banks).
///
/// The same extractor (with `include_emf = false`) produces HERQULES'
/// `6 × n` feature vector, which is how the baseline shares this code path.
///
/// Two extraction paths exist: the per-shot reference path
/// ([`FeatureExtractor::extract`]: demodulate, then score each bank), and
/// the batched fused path ([`FeatureExtractor::extract_batch_traces`]),
/// which folds each qubit's demodulation rotation into its kernels at
/// construction time and scores tiles of shots against the shared,
/// cache-resident kernel memory. The two agree to floating-point
/// reassociation (≈1e-13 relative); downstream decisions are identical.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    chip: ChipConfig,
    demod: Demodulator,
    banks: Vec<QubitMfBank>,
    /// Spectral-neighbourhood radius of the joint crosstalk-aware kernels
    /// (0 = the classic per-qubit bank).
    joint_neighbors: usize,
    /// Per-qubit de-mixing recipe: qubit `q`'s effective baseband is
    /// `Σ (p, α) ∈ mix[q] of α · demod_p(raw)`; derived from `chip` +
    /// `joint_neighbors`, rebuilt rather than serialised.
    mix: Vec<Vec<(usize, f64)>>,
    /// Raw-domain kernels, flattened in qubit-major score order; derived
    /// from `banks` + `demod` + `mix`, rebuilt rather than serialised.
    fused: Vec<FusedKernel>,
}

/// Builds the per-qubit de-mixing tables for a spectral-neighbourhood
/// radius of `joint_neighbors` tones each side.
///
/// The simulator mixes channel `p` into channel `q`'s baseband with weight
/// `β[q][p]` (the chip's crosstalk row). Subtracting `β[q][p] ·
/// demod_p(raw)` from `demod_q(raw)` cancels that contamination to first
/// order in β, so qubit `q`'s entry is `[(q, 1.0)]` followed by
/// `(p, −β[q][p])` for the `joint_neighbors` nearest tones on each side in
/// frequency order (zero-β neighbours are skipped — they widen kernel
/// support for nothing). With `joint_neighbors = 0` every entry is the
/// identity `[(q, 1.0)]`, which reproduces the per-qubit bank bit-exactly.
fn joint_mix(chip: &ChipConfig, joint_neighbors: usize) -> Vec<Vec<(usize, f64)>> {
    let n = chip.n_qubits();
    let mut by_freq: Vec<usize> = (0..n).collect();
    by_freq.sort_by(|&a, &b| {
        chip.qubits[a]
            .if_freq_mhz
            .total_cmp(&chip.qubits[b].if_freq_mhz)
            .then(a.cmp(&b))
    });
    let mut rank = vec![0usize; n];
    for (r, &q) in by_freq.iter().enumerate() {
        rank[q] = r;
    }
    (0..n)
        .map(|q| {
            let mut mix = vec![(q, 1.0)];
            for d in 1..=joint_neighbors {
                let r = rank[q];
                let left = r.checked_sub(d).map(|rl| by_freq[rl]);
                let right = (r + d < n).then(|| by_freq[r + d]);
                for p in left.into_iter().chain(right) {
                    let beta = chip.crosstalk[q][p];
                    if beta != 0.0 {
                        mix.push((p, -beta));
                    }
                }
            }
            mix
        })
        .collect()
}

/// Folds every bank's kernels through its qubit's de-mixing recipe: the
/// raw-domain row of a joint kernel is the α-weighted sum of the same
/// bank kernel rotated by each participating channel's reference phasor.
fn fuse_kernels(
    demod: &Demodulator,
    banks: &[QubitMfBank],
    mix: &[Vec<(usize, f64)>],
) -> Vec<FusedKernel> {
    let mut fused = Vec::with_capacity(banks.iter().map(QubitMfBank::n_filters).sum());
    for (q, bank) in banks.iter().enumerate() {
        for (ki, kq) in bank.kernels_iq() {
            let mut w = vec![0.0; 2 * demod.n_samples()];
            for &(p, alpha) in &mix[q] {
                let refs = demod.reference(p);
                for (pair, (c, (i, q))) in w
                    .chunks_exact_mut(2)
                    .zip(refs.iter().zip(ki.iter().zip(&kq)))
                {
                    pair[0] += alpha * (i * c.re + q * c.im);
                    pair[1] += alpha * (q * c.re - i * c.im);
                }
            }
            fused.push(FusedKernel { w });
        }
    }
    fused
}

impl FeatureExtractor {
    /// Fits one matched-filter bank per qubit from the training shots of
    /// `dataset` selected by `train_indices`.
    ///
    /// Returns `None` if any qubit is missing a level in the training
    /// split.
    ///
    /// # Panics
    ///
    /// Panics if `train_indices` is empty or out of range.
    pub fn fit(
        dataset: &TraceDataset,
        train_indices: &[usize],
        include_emf: bool,
        kind: MatchedFilterKind,
    ) -> Option<Self> {
        Self::fit_joint(dataset, train_indices, include_emf, kind, 0)
    }

    /// [`FeatureExtractor::fit`] with joint crosstalk-aware kernels over a
    /// spectral neighbourhood of `joint_neighbors` tones each side.
    ///
    /// Banks are fitted on the **de-mixed** basebands (see `joint_mix`),
    /// so matched filters and their raw-domain folded kernels agree on
    /// what a channel looks like. `joint_neighbors = 0` is bit-identical
    /// to [`FeatureExtractor::fit`].
    ///
    /// # Panics
    ///
    /// Panics if `train_indices` is empty or out of range.
    pub fn fit_joint(
        dataset: &TraceDataset,
        train_indices: &[usize],
        include_emf: bool,
        kind: MatchedFilterKind,
        joint_neighbors: usize,
    ) -> Option<Self> {
        assert!(!train_indices.is_empty(), "no training shots");
        let config = dataset.config();
        let demod = Demodulator::new(config);
        let levels = dataset.levels();
        let mix = joint_mix(config, joint_neighbors);

        let banks: Option<Vec<QubitMfBank>> = (0..config.n_qubits())
            .into_par_iter()
            .map(|q| {
                let features: Vec<Vec<f64>> = train_indices
                    .iter()
                    .map(|&i| iq_features(&joint_baseband(&demod, &mix[q], dataset.raw(i))))
                    .collect();
                let labels: Vec<usize> =
                    train_indices.iter().map(|&i| dataset.label(i, q)).collect();
                QubitMfBank::fit(&features, &labels, levels, include_emf, kind)
            })
            .collect();

        let banks = banks?;
        let fused = fuse_kernels(&demod, &banks, &mix);
        Some(Self {
            chip: config.clone(),
            demod,
            banks,
            joint_neighbors,
            mix,
            fused,
        })
    }

    /// Reassembles an extractor from a chip description and fitted banks —
    /// the deserialisation path of [`crate::SavedModel`]. The demodulator
    /// is derived data and is rebuilt from `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is empty or its length differs from the chip's
    /// qubit count.
    pub fn from_parts(chip: ChipConfig, banks: Vec<QubitMfBank>) -> Self {
        Self::from_parts_joint(chip, banks, 0)
    }

    /// [`FeatureExtractor::from_parts`] with the joint-kernel radius the
    /// banks were fitted with — the deserialisation path of joint models,
    /// where `joint_neighbors` travels in the envelope's spec and the mix
    /// table is derived data rebuilt from the chip's crosstalk matrix.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is empty or its length differs from the chip's
    /// qubit count.
    pub fn from_parts_joint(
        chip: ChipConfig,
        banks: Vec<QubitMfBank>,
        joint_neighbors: usize,
    ) -> Self {
        assert!(!banks.is_empty(), "no banks");
        assert_eq!(banks.len(), chip.n_qubits(), "bank count != qubit count");
        let demod = Demodulator::new(&chip);
        let mix = joint_mix(&chip, joint_neighbors);
        let fused = fuse_kernels(&demod, &banks, &mix);
        Self {
            chip,
            demod,
            banks,
            joint_neighbors,
            mix,
            fused,
        }
    }

    /// The chip description the extractor was fitted for.
    pub fn chip_config(&self) -> &ChipConfig {
        &self.chip
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.banks.len()
    }

    /// Spectral-neighbourhood radius of the joint crosstalk-aware kernels
    /// (0 = the classic per-qubit bank).
    pub fn joint_neighbors(&self) -> usize {
        self.joint_neighbors
    }

    /// Scores per qubit (9 for the full three-level bank).
    pub fn per_qubit_dim(&self) -> usize {
        self.banks.first().map_or(0, QubitMfBank::n_filters)
    }

    /// Total merged feature dimensionality (`per_qubit_dim × n_qubits`).
    pub fn feature_dim(&self) -> usize {
        self.banks.iter().map(QubitMfBank::n_filters).sum()
    }

    /// Borrows qubit `q`'s bank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn bank(&self, q: usize) -> &QubitMfBank {
        &self.banks[q]
    }

    /// Readout-window length in samples — the trace length every
    /// extraction path expects.
    pub fn window_samples(&self) -> usize {
        self.demod.n_samples()
    }

    /// Clones the raw-domain fused kernel rows (interleaved `[w_I, w_Q]`
    /// per sample, in qubit-major score order) — the matched-filter bank
    /// the inference-plan compiler builds its op graph from.
    pub(crate) fn fused_rows(&self) -> Vec<Vec<f64>> {
        self.fused.iter().map(|k| k.w.clone()).collect()
    }

    /// Extracts the merged feature vector of one raw trace: demodulate each
    /// channel, score its bank, concatenate in qubit order.
    ///
    /// # Panics
    ///
    /// Panics if the trace is longer than the configured readout window.
    pub fn extract(&self, raw: &[Complex]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.feature_dim());
        for (q, bank) in self.banks.iter().enumerate() {
            let baseband = joint_baseband(&self.demod, &self.mix[q], raw);
            out.extend(bank.apply(&iq_features(&baseband)));
        }
        out
    }

    /// Extracts features for many dataset shots through the fused batch
    /// engine ([`FeatureExtractor::extract_batch_traces`]) — the fit-time
    /// and serve-time batch paths share one implementation, so training
    /// sees exactly the features batched inference produces.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn extract_batch(&self, dataset: &TraceDataset, indices: &[usize]) -> Vec<Vec<f64>> {
        let shots: Vec<&[Complex]> = indices.iter().map(|&i| dataset.raw(i)).collect();
        self.extract_batch_traces(&shots)
    }

    /// Extracts merged feature vectors for a batch of raw traces through
    /// the fused kernels: no per-shot demodulation, each trace flattened
    /// once and scored by contiguous SIMD-friendly dot products, kernels
    /// read once per 16-shot tile (`BATCH_TILE`) instead of once per shot,
    /// tiles fanned out over cores.
    ///
    /// Scores agree with the per-shot [`FeatureExtractor::extract`] path
    /// to floating-point reassociation (≈1e-13 relative); decisions
    /// downstream are identical.
    ///
    /// # Panics
    ///
    /// Panics if any trace's length differs from the readout window.
    pub fn extract_batch_traces(&self, shots: &[&[Complex]]) -> Vec<Vec<f64>> {
        let dim = self.feature_dim();
        let n_samples = self.demod.n_samples();
        let stride = 2 * n_samples;
        let tiles: Vec<&[&[Complex]]> = shots.chunks(BATCH_TILE).collect();
        let per_tile = crate::par_map(&tiles, |tile| {
            // Flatten the tile's traces once into a single contiguous
            // scratch (one allocation per tile, not per shot); every
            // kernel reuses it.
            let mut flat = vec![0.0f64; tile.len() * stride];
            for (dst, raw) in flat.chunks_exact_mut(stride).zip(tile.iter()) {
                assert_eq!(raw.len(), n_samples, "trace length != readout window");
                for (pair, z) in dst.chunks_exact_mut(2).zip(raw.iter()) {
                    pair[0] = z.re;
                    pair[1] = z.im;
                }
            }
            let mut out = vec![vec![0.0; dim]; tile.len()];
            // Filter-major over the tile: each kernel is loaded once and
            // stays cache-hot across the tile's shots.
            for (f, kernel) in self.fused.iter().enumerate() {
                for (features, flat_s) in out.iter_mut().zip(flat.chunks_exact(stride)) {
                    features[f] = fused_dot(flat_s, &kernel.w);
                }
            }
            out
        });
        per_tile.into_iter().flatten().collect()
    }

    /// Fused-path extraction of one raw trace — the single-shot view of
    /// [`FeatureExtractor::extract_batch_traces`] (identical arithmetic),
    /// exposed so streaming / deployment layers can share the
    /// demodulation-free path.
    ///
    /// # Panics
    ///
    /// Panics if the trace's length differs from the readout window.
    pub fn extract_fused(&self, raw: &[Complex]) -> Vec<f64> {
        assert_eq!(
            raw.len(),
            self.demod.n_samples(),
            "trace length != readout window"
        );
        let mut flat = Vec::new();
        flatten_iq(raw, &mut flat);
        self.fused
            .iter()
            .map(|kernel| fused_dot(&flat, &kernel.w))
            .collect()
    }

    /// Merged partial feature vector after only the first `n_samples` of a
    /// raw trace, scored against the full-length kernels — what a streaming
    /// accumulator holds mid-readout. At `n_samples == raw.len()` (full
    /// trace) this equals [`FeatureExtractor::extract`].
    ///
    /// # Panics
    ///
    /// Panics if `n_samples` exceeds the trace or the configured window.
    pub fn extract_prefix(&self, raw: &[Complex], n_samples: usize) -> Vec<f64> {
        assert!(n_samples <= raw.len(), "prefix longer than trace");
        let mut out = Vec::with_capacity(self.feature_dim());
        for (q, bank) in self.banks.iter().enumerate() {
            let baseband = joint_baseband(&self.demod, &self.mix[q], &raw[..n_samples]);
            out.extend(bank.apply_prefix(&baseband));
        }
        out
    }

    /// Extracts prefix features for many dataset shots in parallel.
    ///
    /// # Panics
    ///
    /// As for [`FeatureExtractor::extract_prefix`]; indices must be in
    /// range.
    pub fn extract_prefix_batch(
        &self,
        dataset: &TraceDataset,
        indices: &[usize],
        n_samples: usize,
    ) -> Vec<Vec<f64>> {
        indices
            .par_iter()
            .map(|&i| self.extract_prefix(dataset.raw(i), n_samples))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_sim::ChipConfig;

    fn small_dataset() -> TraceDataset {
        let mut c = ChipConfig::five_qubit_paper();
        c.n_samples = 60;
        // Boost leakage so every level is present with few shots.
        TraceDataset::generate(&c, 3, 6, 13)
    }

    #[test]
    fn merged_feature_dimensions_match_paper() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum)
            .expect("all levels present");
        assert_eq!(fx.n_qubits(), 5);
        assert_eq!(fx.per_qubit_dim(), 9);
        assert_eq!(fx.feature_dim(), 45);
        let f = fx.extract(ds.raw(0));
        assert_eq!(f.len(), 45);
    }

    #[test]
    fn herqules_variant_has_six_per_qubit() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, false, MatchedFilterKind::VarianceSum).unwrap();
        assert_eq!(fx.per_qubit_dim(), 6);
        assert_eq!(fx.feature_dim(), 30);
    }

    #[test]
    fn batch_matches_single_extraction() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum).unwrap();
        let batch = fx.extract_batch(&ds, &[0, 5, 10]);
        // The batch engine is bit-identical to the single-shot fused path…
        assert_eq!(batch[1], fx.extract_fused(ds.raw(5)));
        // …and agrees with the demodulate-then-score reference path to
        // floating-point reassociation.
        let reference = fx.extract(ds.raw(5));
        for (a, b) in batch[1].iter().zip(&reference) {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                "fused {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn fused_tiles_are_independent_of_batch_size() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum).unwrap();
        // A batch spanning several tiles must equal per-shot fused calls.
        let idxs: Vec<usize> = (0..40).collect();
        let batch = fx.extract_batch(&ds, &idxs);
        for (&i, row) in idxs.iter().zip(&batch) {
            assert_eq!(row, &fx.extract_fused(ds.raw(i)), "shot {i}");
        }
    }

    #[test]
    fn full_length_prefix_equals_extract() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum).unwrap();
        let raw = ds.raw(2);
        let full = fx.extract(raw);
        let prefix = fx.extract_prefix(raw, raw.len());
        for (a, b) in full.iter().zip(&prefix) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // Prefix features differ from full features mid-trace.
        let early = fx.extract_prefix(raw, raw.len() / 2);
        assert_ne!(early, full);
    }

    #[test]
    fn from_parts_rebuilds_a_working_extractor() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum).unwrap();
        let banks: Vec<QubitMfBank> = (0..fx.n_qubits()).map(|q| fx.bank(q).clone()).collect();
        let rebuilt = FeatureExtractor::from_parts(fx.chip_config().clone(), banks);
        let raw = ds.raw(0);
        assert_eq!(fx.extract(raw), rebuilt.extract(raw));
    }

    #[test]
    #[should_panic(expected = "bank count != qubit count")]
    fn from_parts_checks_bank_count() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum).unwrap();
        let _ = FeatureExtractor::from_parts(
            fx.chip_config().clone(),
            vec![fx.bank(0).clone()], // 1 bank for a 5-qubit chip
        );
    }

    #[test]
    fn features_separate_ground_from_leaked() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum).unwrap();
        // QMF(0,2) score of qubit 0 (feature index 1 in its bank) should on
        // average be higher for |2...> than |0...> preparations.
        let roles = fx.bank(0).roles();
        let idx = roles
            .iter()
            .position(|r| *r == crate::FilterRole::Qubit(0, 2))
            .unwrap();
        let mean_score = |target: usize| -> f64 {
            let idxs: Vec<usize> = (0..ds.len())
                .filter(|&i| ds.label(i, 0) == target)
                .collect();
            let total: f64 = idxs.iter().map(|&i| fx.extract(ds.raw(i))[idx]).sum();
            total / idxs.len() as f64
        };
        assert!(mean_score(2) > mean_score(0));
    }
}
