//! End-to-end feature extraction: raw multiplexed trace → merged
//! matched-filter scores from every qubit (Fig. 4(a)–(b)).

use mlr_dsp::{iq_features, Demodulator, MatchedFilterKind};
use mlr_num::Complex;
use mlr_sim::{ChipConfig, TraceDataset};
use rayon::prelude::*;

use crate::QubitMfBank;

/// Demodulates a raw trace and scores every qubit's matched-filter bank,
/// merging the scores into one feature vector (`9 × n` entries for the
/// paper's three-level banks).
///
/// The same extractor (with `include_emf = false`) produces HERQULES'
/// `6 × n` feature vector, which is how the baseline shares this code path.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    chip: ChipConfig,
    demod: Demodulator,
    banks: Vec<QubitMfBank>,
}

impl FeatureExtractor {
    /// Fits one matched-filter bank per qubit from the training shots of
    /// `dataset` selected by `train_indices`.
    ///
    /// Returns `None` if any qubit is missing a level in the training
    /// split.
    ///
    /// # Panics
    ///
    /// Panics if `train_indices` is empty or out of range.
    pub fn fit(
        dataset: &TraceDataset,
        train_indices: &[usize],
        include_emf: bool,
        kind: MatchedFilterKind,
    ) -> Option<Self> {
        assert!(!train_indices.is_empty(), "no training shots");
        let config = dataset.config();
        let demod = Demodulator::new(config);
        let levels = dataset.levels();

        let banks: Option<Vec<QubitMfBank>> = (0..config.n_qubits())
            .into_par_iter()
            .map(|q| {
                let features: Vec<Vec<f64>> = train_indices
                    .iter()
                    .map(|&i| iq_features(&demod.demodulate(&dataset.shots()[i].raw, q)))
                    .collect();
                let labels: Vec<usize> =
                    train_indices.iter().map(|&i| dataset.label(i, q)).collect();
                QubitMfBank::fit(&features, &labels, levels, include_emf, kind)
            })
            .collect();

        Some(Self {
            chip: config.clone(),
            demod,
            banks: banks?,
        })
    }

    /// Reassembles an extractor from a chip description and fitted banks —
    /// the deserialisation path of [`crate::SavedModel`]. The demodulator
    /// is derived data and is rebuilt from `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is empty or its length differs from the chip's
    /// qubit count.
    pub fn from_parts(chip: ChipConfig, banks: Vec<QubitMfBank>) -> Self {
        assert!(!banks.is_empty(), "no banks");
        assert_eq!(banks.len(), chip.n_qubits(), "bank count != qubit count");
        let demod = Demodulator::new(&chip);
        Self { chip, demod, banks }
    }

    /// The chip description the extractor was fitted for.
    pub fn chip_config(&self) -> &ChipConfig {
        &self.chip
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.banks.len()
    }

    /// Scores per qubit (9 for the full three-level bank).
    pub fn per_qubit_dim(&self) -> usize {
        self.banks.first().map_or(0, QubitMfBank::n_filters)
    }

    /// Total merged feature dimensionality (`per_qubit_dim × n_qubits`).
    pub fn feature_dim(&self) -> usize {
        self.banks.iter().map(QubitMfBank::n_filters).sum()
    }

    /// Borrows qubit `q`'s bank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn bank(&self, q: usize) -> &QubitMfBank {
        &self.banks[q]
    }

    /// Extracts the merged feature vector of one raw trace: demodulate each
    /// channel, score its bank, concatenate in qubit order.
    ///
    /// # Panics
    ///
    /// Panics if the trace is longer than the configured readout window.
    pub fn extract(&self, raw: &[Complex]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.feature_dim());
        for (q, bank) in self.banks.iter().enumerate() {
            let baseband = self.demod.demodulate(raw, q);
            out.extend(bank.apply(&iq_features(&baseband)));
        }
        out
    }

    /// Extracts features for many dataset shots in parallel.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn extract_batch(&self, dataset: &TraceDataset, indices: &[usize]) -> Vec<Vec<f64>> {
        indices
            .par_iter()
            .map(|&i| self.extract(&dataset.shots()[i].raw))
            .collect()
    }

    /// Merged partial feature vector after only the first `n_samples` of a
    /// raw trace, scored against the full-length kernels — what a streaming
    /// accumulator holds mid-readout. At `n_samples == raw.len()` (full
    /// trace) this equals [`FeatureExtractor::extract`].
    ///
    /// # Panics
    ///
    /// Panics if `n_samples` exceeds the trace or the configured window.
    pub fn extract_prefix(&self, raw: &[Complex], n_samples: usize) -> Vec<f64> {
        assert!(n_samples <= raw.len(), "prefix longer than trace");
        let mut out = Vec::with_capacity(self.feature_dim());
        for (q, bank) in self.banks.iter().enumerate() {
            let baseband = self.demod.demodulate(&raw[..n_samples], q);
            out.extend(bank.apply_prefix(&baseband));
        }
        out
    }

    /// Extracts prefix features for many dataset shots in parallel.
    ///
    /// # Panics
    ///
    /// As for [`FeatureExtractor::extract_prefix`]; indices must be in
    /// range.
    pub fn extract_prefix_batch(
        &self,
        dataset: &TraceDataset,
        indices: &[usize],
        n_samples: usize,
    ) -> Vec<Vec<f64>> {
        indices
            .par_iter()
            .map(|&i| self.extract_prefix(&dataset.shots()[i].raw, n_samples))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_sim::ChipConfig;

    fn small_dataset() -> TraceDataset {
        let mut c = ChipConfig::five_qubit_paper();
        c.n_samples = 60;
        // Boost leakage so every level is present with few shots.
        TraceDataset::generate(&c, 3, 6, 13)
    }

    #[test]
    fn merged_feature_dimensions_match_paper() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum)
            .expect("all levels present");
        assert_eq!(fx.n_qubits(), 5);
        assert_eq!(fx.per_qubit_dim(), 9);
        assert_eq!(fx.feature_dim(), 45);
        let f = fx.extract(&ds.shots()[0].raw);
        assert_eq!(f.len(), 45);
    }

    #[test]
    fn herqules_variant_has_six_per_qubit() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, false, MatchedFilterKind::VarianceSum)
            .unwrap();
        assert_eq!(fx.per_qubit_dim(), 6);
        assert_eq!(fx.feature_dim(), 30);
    }

    #[test]
    fn batch_matches_single_extraction() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum)
            .unwrap();
        let batch = fx.extract_batch(&ds, &[0, 5, 10]);
        assert_eq!(batch[1], fx.extract(&ds.shots()[5].raw));
    }

    #[test]
    fn full_length_prefix_equals_extract() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum)
            .unwrap();
        let raw = &ds.shots()[2].raw;
        let full = fx.extract(raw);
        let prefix = fx.extract_prefix(raw, raw.len());
        for (a, b) in full.iter().zip(&prefix) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // Prefix features differ from full features mid-trace.
        let early = fx.extract_prefix(raw, raw.len() / 2);
        assert_ne!(early, full);
    }

    #[test]
    fn from_parts_rebuilds_a_working_extractor() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum)
            .unwrap();
        let banks: Vec<QubitMfBank> = (0..fx.n_qubits()).map(|q| fx.bank(q).clone()).collect();
        let rebuilt = FeatureExtractor::from_parts(fx.chip_config().clone(), banks);
        let raw = &ds.shots()[0].raw;
        assert_eq!(fx.extract(raw), rebuilt.extract(raw));
    }

    #[test]
    #[should_panic(expected = "bank count != qubit count")]
    fn from_parts_checks_bank_count() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum)
            .unwrap();
        let _ = FeatureExtractor::from_parts(
            fx.chip_config().clone(),
            vec![fx.bank(0).clone()], // 1 bank for a 5-qubit chip
        );
    }

    #[test]
    fn features_separate_ground_from_leaked() {
        let ds = small_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let fx = FeatureExtractor::fit(&ds, &all, true, MatchedFilterKind::VarianceSum)
            .unwrap();
        // QMF(0,2) score of qubit 0 (feature index 1 in its bank) should on
        // average be higher for |2...> than |0...> preparations.
        let roles = fx.bank(0).roles();
        let idx = roles
            .iter()
            .position(|r| *r == crate::FilterRole::Qubit(0, 2))
            .unwrap();
        let mean_score = |target: usize| -> f64 {
            let idxs: Vec<usize> = (0..ds.len())
                .filter(|&i| ds.label(i, 0) == target)
                .collect();
            let total: f64 = idxs
                .iter()
                .map(|&i| fx.extract(&ds.shots()[i].raw)[idx])
                .sum();
            total / idxs.len() as f64
        };
        assert!(mean_score(2) > mean_score(0));
    }
}
