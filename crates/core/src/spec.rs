//! The spec layer of the model lifecycle: one serialisable name for every
//! discriminator design the paper compares.
//!
//! The paper's Tables IV/V story is a comparison *across designs* — OURS,
//! its no-EMF ablation, the quantised deployment, HERQULES, the raw-trace
//! FNN, LDA/QDA, and the related-work HMM and autoencoder methods — yet
//! each family historically exposed its own `fit(dataset, split, config)`
//! shape. [`DiscriminatorSpec`] closes that gap: it is the single value
//! that names a family and carries its configuration, with
//!
//! * stable family names ([`FromStr`]/[`fmt::Display`]: `"OURS"`,
//!   `"HERQULES"`, `"LDA"`, …) used by the CLI's `--design` flag and the
//!   saved-model envelope;
//! * a JSON round-trip (`{"family": "...", "config": {...}}`) so specs
//!   travel inside [`crate::registry`]'s `SavedModel` v2 files;
//! * a content [`DiscriminatorSpec::fingerprint`] for model caching;
//! * one training entry point, [`TrainableDiscriminator::fit`],
//!   implemented by every family's configuration type and by the spec
//!   itself.
//!
//! Training through a spec and serving the result is the job of the next
//! two layers: [`crate::registry`] (fit/save/load) and [`crate::engine`]
//! (micro-batched serving).
//!
//! # Examples
//!
//! ```no_run
//! use mlr_core::{registry, DiscriminatorSpec, Discriminator};
//! use mlr_sim::{ChipConfig, TraceDataset};
//!
//! let spec: DiscriminatorSpec = "HERQULES".parse().unwrap();
//! let dataset = TraceDataset::generate(&ChipConfig::five_qubit_paper(), 3, 50, 7);
//! let split = dataset.paper_split(7);
//! let model = registry::fit(&spec, &dataset, &split, 7);
//! println!("{} has {} weights", spec, model.weight_count());
//! ```

use std::fmt;
use std::str::FromStr;

use mlr_nn::TrainConfig;
use mlr_sim::{DatasetSplit, TraceDataset};
use serde::{DeError, Deserialize, JsonValue, Serialize};

use crate::{
    AutoencoderBaseline, AutoencoderConfig, DeployedConfig, DeployedDiscriminator,
    DiscriminantAnalysis, DiscriminantKind, Discriminator, FnnBaseline, FnnConfig,
    HerqulesBaseline, HerqulesConfig, HmmBaseline, HmmConfig, OursConfig, OursDiscriminator,
    StreamingConfig, StreamingReadout,
};

/// A trained discriminator as the spec layer hands it out: boxed, thread
/// safe, ready for [`crate::evaluate`] or [`crate::ReadoutEngine`].
pub type BoxedDiscriminator = Box<dyn Discriminator + Send>;

/// A design that can be trained on a dataset split into a ready
/// [`Discriminator`].
///
/// Implemented by every family's configuration type ([`OursConfig`],
/// [`HerqulesConfig`], [`DiscriminantKind`], …) and by
/// [`DiscriminatorSpec`] itself, which dispatches to the family it names.
/// `seed` overrides the configuration's own training seed (families
/// without stochastic training — LDA/QDA, the HMM — ignore it), so one
/// spec value can be fitted reproducibly under many seeds.
pub trait TrainableDiscriminator {
    /// Fits the design on the dataset's training/validation splits.
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, seed: u64) -> BoxedDiscriminator;
}

/// Returns `train` with its seed replaced by the spec-level `seed` — the
/// one place the spec-level seed-override rule lives (shared by the
/// per-config [`TrainableDiscriminator`] impls and [`crate::registry::fit`]).
pub(crate) fn seeded(train: &TrainConfig, seed: u64) -> TrainConfig {
    TrainConfig {
        seed,
        ..train.clone()
    }
}

/// [`seeded`] lifted to a whole [`OursConfig`].
pub(crate) fn reseed_ours(config: &OursConfig, seed: u64) -> OursConfig {
    OursConfig {
        train: seeded(&config.train, seed),
        ..config.clone()
    }
}

/// One discriminator design of the paper's comparison, with its
/// family-specific configuration payload.
///
/// See the [module docs](self) for the role this type plays; the variant
/// list is the registry's family alphabet. `Discriminant` covers both the
/// LDA and QDA names (they differ only in [`DiscriminantKind`]).
#[derive(Debug, Clone, PartialEq)]
pub enum DiscriminatorSpec {
    /// The paper's design: matched-filter bank + per-qubit heads.
    Ours(OursConfig),
    /// The EMF ablation: OURS with excitation matched filters removed
    /// (fitting forces `include_emf = false` whatever the payload says).
    OursNoEmf(OursConfig),
    /// The fixed-point deployment: OURS trained in float, heads quantised
    /// to the configured word format.
    Deployed(DeployedConfig),
    /// The ISCA '23 HERQULES baseline (joint `kⁿ`-way classifier).
    Herqules(HerqulesConfig),
    /// The raw-trace deep FNN baseline.
    Fnn(FnnConfig),
    /// Classical per-qubit discriminant analysis (LDA or QDA).
    Discriminant(DiscriminantKind),
    /// Per-qubit Gaussian hidden Markov model.
    Hmm(HmmConfig),
    /// Autoencoder compression + classifier heads.
    Autoencoder(AutoencoderConfig),
    /// Confidence-gated early-termination streaming readout.
    Streaming(StreamingConfig),
}

/// A `--design` (or envelope) name that matches no registry family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFamily {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown discriminator design '{}' (valid designs: {})",
            self.name,
            DiscriminatorSpec::FAMILY_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownFamily {}

impl Default for DiscriminatorSpec {
    /// The paper's proposed design with default hyper-parameters.
    fn default() -> Self {
        DiscriminatorSpec::Ours(OursConfig::default())
    }
}

impl DiscriminatorSpec {
    /// Every parseable family name, in the paper's usual presentation
    /// order — the alphabet [`FromStr`] accepts and CLI errors list.
    pub const FAMILY_NAMES: [&'static str; 10] = [
        "OURS",
        "OURS-NO-EMF",
        "OURS-INT",
        "OURS-STREAM",
        "HERQULES",
        "FNN",
        "LDA",
        "QDA",
        "HMM",
        "AE",
    ];

    /// The design's stable name, as used in the paper's tables, the CLI
    /// `--design` flag and the saved-model envelope.
    pub fn family_name(&self) -> &'static str {
        match self {
            DiscriminatorSpec::Ours(_) => "OURS",
            DiscriminatorSpec::OursNoEmf(_) => "OURS-NO-EMF",
            DiscriminatorSpec::Deployed(_) => "OURS-INT",
            DiscriminatorSpec::Streaming(_) => "OURS-STREAM",
            DiscriminatorSpec::Herqules(_) => "HERQULES",
            DiscriminatorSpec::Fnn(_) => "FNN",
            DiscriminatorSpec::Discriminant(DiscriminantKind::Lda) => "LDA",
            DiscriminatorSpec::Discriminant(DiscriminantKind::Qda) => "QDA",
            DiscriminatorSpec::Hmm(_) => "HMM",
            DiscriminatorSpec::Autoencoder(_) => "AE",
        }
    }

    /// One spec per family name, each with its default configuration —
    /// the whole zoo, for sweeps and smoke tests.
    pub fn all_families() -> Vec<DiscriminatorSpec> {
        Self::FAMILY_NAMES
            .iter()
            .map(|name| name.parse().expect("listed names parse"))
            .collect()
    }

    /// Returns the spec with every neural-network epoch budget replaced by
    /// `epochs` — the CLI's `--epochs` override, meaningful for each
    /// trained family and a no-op for the training-free ones (LDA/QDA,
    /// HMM, whose fitting has no epoch notion).
    pub fn with_epochs(self, epochs: usize) -> Self {
        fn set(train: &mut TrainConfig, epochs: usize) {
            train.epochs = epochs;
        }
        match self {
            DiscriminatorSpec::Ours(mut c) => {
                set(&mut c.train, epochs);
                DiscriminatorSpec::Ours(c)
            }
            DiscriminatorSpec::OursNoEmf(mut c) => {
                set(&mut c.train, epochs);
                DiscriminatorSpec::OursNoEmf(c)
            }
            DiscriminatorSpec::Deployed(mut c) => {
                set(&mut c.base.train, epochs);
                DiscriminatorSpec::Deployed(c)
            }
            DiscriminatorSpec::Streaming(mut c) => {
                set(&mut c.base.train, epochs);
                DiscriminatorSpec::Streaming(c)
            }
            DiscriminatorSpec::Herqules(mut c) => {
                set(&mut c.train, epochs);
                DiscriminatorSpec::Herqules(c)
            }
            DiscriminatorSpec::Fnn(mut c) => {
                set(&mut c.train, epochs);
                DiscriminatorSpec::Fnn(c)
            }
            DiscriminatorSpec::Autoencoder(mut c) => {
                set(&mut c.ae_train, epochs);
                set(&mut c.head_train, epochs);
                DiscriminatorSpec::Autoencoder(c)
            }
            spec @ (DiscriminatorSpec::Discriminant(_) | DiscriminatorSpec::Hmm(_)) => spec,
        }
    }

    /// Stable content fingerprint of the spec (FNV-1a over its canonical
    /// JSON) — the model-cache key component contributed by the design.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("specs serialise");
        fnv1a(json.as_bytes(), FNV_OFFSET)
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// FNV-1a over `bytes`, chained from `hash` (same recipe as the dataset
/// cache fingerprints in `mlr-sim`).
pub(crate) fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl fmt::Display for DiscriminatorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.family_name())
    }
}

impl FromStr for DiscriminatorSpec {
    type Err = UnknownFamily;

    /// Parses a family name (case-insensitive) into that family's spec
    /// with default configuration.
    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.to_ascii_uppercase().as_str() {
            "OURS" => Ok(DiscriminatorSpec::Ours(OursConfig::default())),
            "OURS-NO-EMF" => Ok(DiscriminatorSpec::OursNoEmf(OursConfig {
                include_emf: false,
                ..OursConfig::default()
            })),
            "OURS-INT" => Ok(DiscriminatorSpec::Deployed(DeployedConfig::default())),
            "OURS-STREAM" => Ok(DiscriminatorSpec::Streaming(StreamingConfig::default())),
            "HERQULES" => Ok(DiscriminatorSpec::Herqules(HerqulesConfig::default())),
            "FNN" => Ok(DiscriminatorSpec::Fnn(FnnConfig::default())),
            "LDA" => Ok(DiscriminatorSpec::Discriminant(DiscriminantKind::Lda)),
            "QDA" => Ok(DiscriminatorSpec::Discriminant(DiscriminantKind::Qda)),
            "HMM" => Ok(DiscriminatorSpec::Hmm(HmmConfig::default())),
            "AE" => Ok(DiscriminatorSpec::Autoencoder(AutoencoderConfig::default())),
            _ => Err(UnknownFamily {
                name: raw.to_owned(),
            }),
        }
    }
}

impl Serialize for DiscriminatorSpec {
    /// `{"family": "<name>", "config": <family payload>}`; the
    /// training-free LDA/QDA families carry a `null` config (the family
    /// name already encodes the covariance kind).
    fn to_json_value(&self) -> JsonValue {
        let config = match self {
            DiscriminatorSpec::Ours(c) | DiscriminatorSpec::OursNoEmf(c) => c.to_json_value(),
            DiscriminatorSpec::Deployed(c) => c.to_json_value(),
            DiscriminatorSpec::Streaming(c) => c.to_json_value(),
            DiscriminatorSpec::Herqules(c) => c.to_json_value(),
            DiscriminatorSpec::Fnn(c) => c.to_json_value(),
            DiscriminatorSpec::Discriminant(_) => JsonValue::Null,
            DiscriminatorSpec::Hmm(c) => c.to_json_value(),
            DiscriminatorSpec::Autoencoder(c) => c.to_json_value(),
        };
        JsonValue::Object(vec![
            (
                "family".to_owned(),
                JsonValue::String(self.family_name().to_owned()),
            ),
            ("config".to_owned(), config),
        ])
    }
}

impl Deserialize for DiscriminatorSpec {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        let family = match value.get("family") {
            Some(JsonValue::String(s)) => s.clone(),
            _ => return Err(DeError::new("spec object needs a string `family`")),
        };
        let config = value.get("config").unwrap_or(&JsonValue::Null);
        let spec = match family.to_ascii_uppercase().as_str() {
            "OURS" => DiscriminatorSpec::Ours(OursConfig::from_json_value(config)?),
            "OURS-NO-EMF" => DiscriminatorSpec::OursNoEmf(OursConfig::from_json_value(config)?),
            "OURS-INT" => DiscriminatorSpec::Deployed(DeployedConfig::from_json_value(config)?),
            "OURS-STREAM" => {
                DiscriminatorSpec::Streaming(StreamingConfig::from_json_value(config)?)
            }
            "HERQULES" => DiscriminatorSpec::Herqules(HerqulesConfig::from_json_value(config)?),
            "FNN" => DiscriminatorSpec::Fnn(FnnConfig::from_json_value(config)?),
            "LDA" => DiscriminatorSpec::Discriminant(DiscriminantKind::Lda),
            "QDA" => DiscriminatorSpec::Discriminant(DiscriminantKind::Qda),
            "HMM" => DiscriminatorSpec::Hmm(HmmConfig::from_json_value(config)?),
            "AE" => DiscriminatorSpec::Autoencoder(AutoencoderConfig::from_json_value(config)?),
            other => {
                return Err(DeError::new(format!(
                    "unknown discriminator family `{other}`"
                )))
            }
        };
        Ok(spec)
    }
}

impl TrainableDiscriminator for OursConfig {
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, seed: u64) -> BoxedDiscriminator {
        Box::new(OursDiscriminator::fit(
            dataset,
            split,
            &reseed_ours(self, seed),
        ))
    }
}

impl TrainableDiscriminator for DeployedConfig {
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, seed: u64) -> BoxedDiscriminator {
        let ours = OursDiscriminator::fit(dataset, split, &reseed_ours(&self.base, seed));
        Box::new(DeployedDiscriminator::new(&ours, self.format))
    }
}

impl TrainableDiscriminator for StreamingConfig {
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, seed: u64) -> BoxedDiscriminator {
        let config = StreamingConfig {
            base: reseed_ours(&self.base, seed),
            ..self.clone()
        };
        Box::new(StreamingReadout::fit(dataset, split, &config))
    }
}

impl TrainableDiscriminator for HerqulesConfig {
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, seed: u64) -> BoxedDiscriminator {
        let config = HerqulesConfig {
            train: seeded(&self.train, seed),
            ..self.clone()
        };
        Box::new(HerqulesBaseline::fit(dataset, split, &config))
    }
}

impl TrainableDiscriminator for FnnConfig {
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, seed: u64) -> BoxedDiscriminator {
        let config = FnnConfig {
            train: seeded(&self.train, seed),
            ..self.clone()
        };
        Box::new(FnnBaseline::fit(dataset, split, &config))
    }
}

impl TrainableDiscriminator for DiscriminantKind {
    /// LDA/QDA fitting is deterministic; `seed` is ignored.
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, _seed: u64) -> BoxedDiscriminator {
        Box::new(DiscriminantAnalysis::fit(dataset, split, *self))
    }
}

impl TrainableDiscriminator for HmmConfig {
    /// Segmental HMM fitting is deterministic; `seed` is ignored.
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, _seed: u64) -> BoxedDiscriminator {
        Box::new(HmmBaseline::fit(dataset, split, self))
    }
}

impl TrainableDiscriminator for AutoencoderConfig {
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, seed: u64) -> BoxedDiscriminator {
        let config = AutoencoderConfig {
            ae_train: seeded(&self.ae_train, seed),
            head_train: seeded(&self.head_train, seed),
            ..self.clone()
        };
        Box::new(AutoencoderBaseline::fit(dataset, split, &config))
    }
}

impl TrainableDiscriminator for DiscriminatorSpec {
    /// Dispatches to the family the spec names — literally
    /// [`crate::registry::fit`] (one dispatch, shared with persistence),
    /// boxed. `OursNoEmf` forces `include_emf = false` whatever its
    /// payload says, so the ablation cannot silently regain the
    /// excitation filters.
    fn fit(&self, dataset: &TraceDataset, split: &DatasetSplit, seed: u64) -> BoxedDiscriminator {
        Box::new(crate::registry::fit(self, dataset, split, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_name_parses_and_round_trips() {
        for name in DiscriminatorSpec::FAMILY_NAMES {
            let spec: DiscriminatorSpec = name.parse().unwrap();
            assert_eq!(spec.family_name(), name);
            assert_eq!(spec.to_string(), name);
            // Case-insensitive parsing.
            let lower: DiscriminatorSpec = name.to_ascii_lowercase().parse().unwrap();
            assert_eq!(lower.family_name(), name);
        }
        assert_eq!(
            DiscriminatorSpec::all_families().len(),
            DiscriminatorSpec::FAMILY_NAMES.len()
        );
    }

    #[test]
    fn unknown_family_error_lists_valid_names() {
        let err = "MWPM".parse::<DiscriminatorSpec>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("MWPM"), "{msg}");
        for name in DiscriminatorSpec::FAMILY_NAMES {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn json_round_trip_preserves_spec() {
        for spec in DiscriminatorSpec::all_families() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: DiscriminatorSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
        // A non-default payload survives too.
        let spec = DiscriminatorSpec::Hmm(HmmConfig {
            window: 10,
            viterbi_rounds: 0,
            transition_smoothing: 0.5,
        });
        let back: DiscriminatorSpec =
            serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn json_schema_is_family_plus_config() {
        let spec = DiscriminatorSpec::default();
        let value = spec.to_json_value();
        assert_eq!(value["family"], "OURS");
        assert!(value["config"].is_object());
        let lda = DiscriminatorSpec::Discriminant(DiscriminantKind::Lda).to_json_value();
        assert_eq!(lda["config"], JsonValue::Null);
    }

    #[test]
    fn fingerprints_separate_families_and_configs() {
        let mut fps: Vec<u64> = DiscriminatorSpec::all_families()
            .iter()
            .map(DiscriminatorSpec::fingerprint)
            .collect();
        fps.push(
            DiscriminatorSpec::Ours(OursConfig {
                class_weight_cap: 7.0,
                ..OursConfig::default()
            })
            .fingerprint(),
        );
        let unique: std::collections::BTreeSet<u64> = fps.iter().copied().collect();
        assert_eq!(unique.len(), fps.len(), "fingerprint collision: {fps:?}");
    }

    #[test]
    fn with_epochs_reaches_every_trained_family() {
        for spec in DiscriminatorSpec::all_families() {
            let tuned = spec.clone().with_epochs(3);
            match &tuned {
                DiscriminatorSpec::Ours(c) | DiscriminatorSpec::OursNoEmf(c) => {
                    assert_eq!(c.train.epochs, 3)
                }
                DiscriminatorSpec::Deployed(c) => assert_eq!(c.base.train.epochs, 3),
                DiscriminatorSpec::Streaming(c) => assert_eq!(c.base.train.epochs, 3),
                DiscriminatorSpec::Herqules(c) => assert_eq!(c.train.epochs, 3),
                DiscriminatorSpec::Fnn(c) => assert_eq!(c.train.epochs, 3),
                DiscriminatorSpec::Autoencoder(c) => {
                    assert_eq!((c.ae_train.epochs, c.head_train.epochs), (3, 3))
                }
                DiscriminatorSpec::Discriminant(_) | DiscriminatorSpec::Hmm(_) => {
                    assert_eq!(tuned, spec)
                }
            }
        }
    }

    #[test]
    fn no_emf_spec_defaults_to_no_emf_config() {
        let spec: DiscriminatorSpec = "ours-no-emf".parse().unwrap();
        match spec {
            DiscriminatorSpec::OursNoEmf(c) => assert!(!c.include_emf),
            other => panic!("wrong family {other}"),
        }
    }
}
