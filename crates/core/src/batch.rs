//! The workspace's parallel batch engine: order-preserving chunked maps on
//! OS threads.
//!
//! The rayon dependency is an in-tree sequential shim (the build image has
//! no registry access), so hot batch paths get their parallelism here
//! instead: [`par_map`] splits a slice into one contiguous chunk per
//! available core and maps each chunk on a `std::thread::scope` thread.
//! Output order matches input order, so batch results are positionally
//! identical to a sequential map — the invariant the
//! [`crate::Discriminator::predict_batch`] equivalence tests rely on.

use std::num::NonZeroUsize;

/// Number of worker threads batch maps fan out over, read once per call;
/// 1 disables threading.
///
/// An `MLR_THREADS` environment override (clamped to at least 1) takes
/// precedence over the machine's available parallelism, so single-core
/// benchmark numbers are reproducible without `taskset`; unparseable
/// values are ignored.
pub fn batch_threads() -> usize {
    if let Some(n) = std::env::var("MLR_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items`, preserving order, fanning out over
/// [`batch_threads`] scoped threads when both the machine and the batch
/// are big enough for threading to pay.
///
/// # Examples
///
/// ```
/// let squares = mlr_core::par_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = batch_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Contiguous chunks, sized so every thread gets within one item of an
    // equal share; ordering is restored by concatenating in chunk order.
    let chunk_len = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("batch worker panicked"));
        }
    });
    out
}

/// [`par_map`] with the item index, for callers that need positional
/// context (e.g. labelling shots by dataset index).
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = batch_threads().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(c * chunk_len + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("batch worker panicked"));
        }
    });
    out
}

/// Reshapes head-major decision columns into shot-major rows
/// (`per_head[h][s]` → `out[s][h]`) — the final step every batched
/// multi-head classification shares.
///
/// # Panics
///
/// Panics if any head column is shorter than `n_shots`.
pub(crate) fn transpose_decisions(per_head: &[Vec<usize>], n_shots: usize) -> Vec<Vec<usize>> {
    (0..n_shots)
        .map(|s| per_head.iter().map(|head| head[s]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_decisions_reshapes() {
        let per_head = vec![vec![1, 2, 3], vec![4, 5, 6]];
        assert_eq!(
            transpose_decisions(&per_head, 3),
            vec![vec![1, 4], vec![2, 5], vec![3, 6]]
        );
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let mapped = par_map(&items, |&x| x * 2);
        assert_eq!(mapped, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_tiny() {
        assert_eq!(par_map::<usize, usize, _>(&[], |&x| x), Vec::<usize>::new());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn indexed_map_sees_global_positions() {
        let items = vec!["a"; 257];
        let mapped = par_map_indexed(&items, |i, _| i);
        assert_eq!(mapped, (0..257).collect::<Vec<_>>());
    }
}
