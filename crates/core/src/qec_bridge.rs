//! The readout→QEC bridge: a [`HeraldModel`] backed by the actual
//! multi-level discriminator path.
//!
//! `mlr-qec` defines the herald abstraction (ground truth, calibrated
//! confusion channel) without depending on the readout stack; this module
//! supplies the third model the Table VI-style study needs — erasure flags
//! whose error statistics come from a *real* [`Discriminator`] classifying
//! simulated readout traces, not from an assumed assignment-error knob.
//!
//! [`DiscriminatorHerald::calibrate`] generates a three-level calibration
//! dataset with `mlr_sim`, pushes every trace through
//! [`Discriminator::predict_batch`] (the same batch path the fidelity
//! tables use), and pools the resulting leak/not-leak verdicts per readout
//! channel and true class. Heralding a surface-code data qubit then
//! replays a uniformly drawn verdict from the pool matching that qubit's
//! channel and true leak state — so the herald's false-positive and
//! false-negative rates *are* the discriminator's measured leak confusion,
//! per channel, including its asymmetry.

use mlr_num::Complex;
use mlr_qec::HeraldModel;
use mlr_sim::{ChipConfig, TraceDataset};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{gather_shots, Discriminator};

/// A [`HeraldModel`] that replays leak/not-leak verdicts the actual
/// multi-level discriminator produced on simulated calibration traces.
///
/// Surface-code data qubit `q` is read through calibration channel
/// `q % n_channels` (a code has far more data qubits than the chip has
/// readout channels, so channels are reused round-robin, as frequency
/// multiplexing would).
///
/// # Examples
///
/// ```no_run
/// use mlr_core::{DiscriminatorHerald, OursConfig, OursDiscriminator};
/// use mlr_qec::{EraserConfig, EraserExperiment, SpeculationMode};
/// use mlr_sim::{ChipConfig, TraceDataset};
///
/// let chip = ChipConfig::five_qubit_paper();
/// let dataset = TraceDataset::generate_natural(&chip, 200, 7);
/// let split = dataset.paper_split(7);
/// let ours = OursDiscriminator::fit(&dataset, &split, &OursConfig::default());
///
/// // Calibrate the herald on fresh traces, then drive the QEC loop with it.
/// let herald = DiscriminatorHerald::calibrate(&ours, &chip, 20, 99);
/// let result = EraserExperiment::new(EraserConfig::default())
///     .run_with_herald(SpeculationMode::EraserM { readout_error: 0.05 }, &herald);
/// println!("{}: logical failure {:.3}", herald.design(), result.logical_failure_rate);
/// ```
#[derive(Debug, Clone)]
pub struct DiscriminatorHerald {
    design: String,
    /// `verdicts[channel][class]` — the leak verdicts (`true` = reported
    /// leaked) the discriminator returned for calibration shots whose true
    /// state on `channel` was `class` (`0` = computational, `1` = leaked).
    verdicts: Vec<[Vec<bool>; 2]>,
}

impl DiscriminatorHerald {
    /// Calibrates a herald from `disc` by classifying a fresh three-level
    /// dataset on `chip` (`shots_per_state` shots across all level
    /// combinations, generated from `seed`) through the discriminator's
    /// batch path.
    ///
    /// # Panics
    ///
    /// Panics if the discriminator and chip disagree on the qubit count,
    /// or if calibration leaves a channel without examples of either
    /// class (raise `shots_per_state`).
    pub fn calibrate(
        disc: &(impl Discriminator + ?Sized),
        chip: &ChipConfig,
        shots_per_state: usize,
        seed: u64,
    ) -> Self {
        let dataset = TraceDataset::generate(chip, 3, shots_per_state, seed);
        Self::calibrate_on(disc, &dataset)
    }

    /// [`DiscriminatorHerald::calibrate`] on an existing calibration
    /// dataset — callers comparing several discriminators share one
    /// simulated trace set instead of regenerating it per design.
    ///
    /// # Panics
    ///
    /// Panics if the discriminator and dataset disagree on the qubit
    /// count, or if a channel ends up without examples of either class.
    pub fn calibrate_on(disc: &(impl Discriminator + ?Sized), dataset: &TraceDataset) -> Self {
        assert_eq!(
            disc.n_qubits(),
            dataset.config().n_qubits(),
            "discriminator/dataset qubit count mismatch"
        );
        let all: Vec<usize> = (0..dataset.len()).collect();
        let shots: Vec<&[Complex]> = gather_shots(dataset, &all);
        let predictions = disc.predict_batch(&shots);
        Self::from_verdict_stream(disc.name(), dataset, &predictions)
    }

    /// Pools per-channel verdicts from parallel truth/prediction streams.
    fn from_verdict_stream(
        design: &str,
        dataset: &TraceDataset,
        predictions: &[Vec<usize>],
    ) -> Self {
        let n_channels = dataset.config().n_qubits();
        let mut verdicts: Vec<[Vec<bool>; 2]> = vec![[Vec::new(), Vec::new()]; n_channels];
        for (i, prediction) in predictions.iter().enumerate() {
            for (q, pool) in verdicts.iter_mut().enumerate() {
                let truth_leaked = dataset.label(i, q) == 2;
                let reported_leaked = prediction[q] == 2;
                pool[usize::from(truth_leaked)].push(reported_leaked);
            }
        }
        for (q, pool) in verdicts.iter().enumerate() {
            assert!(
                !pool[0].is_empty() && !pool[1].is_empty(),
                "channel {q}: calibration produced no examples of both classes"
            );
        }
        Self {
            design: design.to_owned(),
            verdicts,
        }
    }

    /// The calibrated discriminator's design name.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Number of readout channels the calibration covered.
    pub fn n_channels(&self) -> usize {
        self.verdicts.len()
    }

    /// The measured leak confusion of channel `q`: `(false_positive_rate,
    /// false_negative_rate)` over the calibration set — the empirical
    /// equivalent of a
    /// [`ConfusionMatrixHerald`](mlr_qec::ConfusionMatrixHerald)'s two
    /// arms, useful for placing a real discriminator on a swept
    /// assignment-error axis.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn channel_confusion(&self, q: usize) -> (f64, f64) {
        let rate = |pool: &[bool], wrong: bool| {
            pool.iter().filter(|&&v| v == wrong).count() as f64 / pool.len() as f64
        };
        (
            rate(&self.verdicts[q][0], true),  // healthy reported leaked
            rate(&self.verdicts[q][1], false), // leaked reported healthy
        )
    }

    /// Mean `(false_positive_rate, false_negative_rate)` across channels.
    pub fn mean_confusion(&self) -> (f64, f64) {
        let n = self.n_channels() as f64;
        let (fp, fne) = (0..self.n_channels())
            .map(|q| self.channel_confusion(q))
            .fold((0.0, 0.0), |(a, b), (fp, fne)| (a + fp, b + fne));
        (fp / n, fne / n)
    }
}

impl HeraldModel for DiscriminatorHerald {
    fn herald(&self, leaked: &[bool], rng: &mut StdRng) -> Vec<bool> {
        leaked
            .iter()
            .enumerate()
            .map(|(q, &truth)| {
                let pool = &self.verdicts[q % self.verdicts.len()][usize::from(truth)];
                pool[rng.gen_range(0..pool.len())]
            })
            .collect()
    }

    fn name(&self) -> String {
        format!("discriminator({})", self.design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_sim::Level;
    use rand::SeedableRng;

    fn tiny_dataset() -> TraceDataset {
        let mut chip = ChipConfig::uniform(2);
        chip.n_samples = 40;
        TraceDataset::generate(&chip, 3, 2, 3)
    }

    fn truth_predictions(dataset: &TraceDataset) -> Vec<Vec<usize>> {
        (0..dataset.len())
            .map(|i| {
                dataset
                    .labelled_levels(i)
                    .iter()
                    .map(|&l| l as usize)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn perfect_predictions_make_a_transparent_herald() {
        let dataset = tiny_dataset();
        let predictions = truth_predictions(&dataset);
        let herald = DiscriminatorHerald::from_verdict_stream("ORACLE", &dataset, &predictions);
        assert_eq!(herald.mean_confusion(), (0.0, 0.0));
        let truth = vec![true, false, true, false, false];
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(herald.herald(&truth, &mut rng), truth);
        assert_eq!(herald.name(), "discriminator(ORACLE)");
    }

    #[test]
    fn blind_channel_shows_up_as_false_negatives() {
        let dataset = tiny_dataset();
        // Channel 1 never reports a leak (all its |2> shots read as |1>).
        let predictions: Vec<Vec<usize>> = truth_predictions(&dataset)
            .into_iter()
            .map(|mut p| {
                if p[1] == 2 {
                    p[1] = 1;
                }
                p
            })
            .collect();
        let herald = DiscriminatorHerald::from_verdict_stream("BLIND", &dataset, &predictions);
        assert_eq!(herald.channel_confusion(0), (0.0, 0.0));
        assert_eq!(herald.channel_confusion(1), (0.0, 1.0));
        // Code qubits map onto channels round-robin: odd qubits are blind.
        let truth = vec![true, true, true, true];
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            herald.herald(&truth, &mut rng),
            vec![true, false, true, false]
        );
    }

    #[test]
    fn calibrate_runs_through_a_real_batch_path() {
        struct AlwaysGround;
        impl Discriminator for AlwaysGround {
            fn predict_shot(&self, _raw: &[Complex]) -> Vec<usize> {
                vec![0; 2]
            }
            fn name(&self) -> &str {
                "GROUND"
            }
            fn n_qubits(&self) -> usize {
                2
            }
            fn weight_count(&self) -> usize {
                0
            }
        }
        let mut chip = ChipConfig::uniform(2);
        chip.n_samples = 40;
        let herald = DiscriminatorHerald::calibrate(&AlwaysGround, &chip, 2, 11);
        // Reporting |0> everywhere means zero false positives and every
        // leaked shot missed.
        assert_eq!(herald.mean_confusion(), (0.0, 1.0));
        assert_eq!(herald.n_channels(), 2);
    }

    #[test]
    fn labelled_levels_expose_leak_truth() {
        // Guard the label convention the pooling relies on: label 2 ⇔
        // Level::Two.
        let dataset = tiny_dataset();
        for i in 0..dataset.len() {
            for (q, &level) in dataset.labelled_levels(i).iter().enumerate() {
                assert_eq!(dataset.label(i, q) == 2, level == Level::Leaked);
            }
        }
    }
}
