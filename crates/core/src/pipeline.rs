//! The proposed discriminator: matched-filter bank + per-qubit modular
//! lightweight neural networks (Fig. 4).

use mlr_dsp::MatchedFilterKind;
use mlr_nn::{Mlp, Standardizer, TrainConfig, TrainData};
use mlr_num::Complex;
use mlr_sim::{DatasetSplit, TraceDataset};
use serde::{DeError, Deserialize, JsonValue, Serialize};

use crate::{Discriminator, FeatureExtractor};

/// Configuration of [`OursDiscriminator::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct OursConfig {
    /// Matched-filter kernel normalisation.
    pub mf_kind: MatchedFilterKind,
    /// Neural-network training hyper-parameters (shared by every per-qubit
    /// head; the head seed is offset per qubit).
    pub train: TrainConfig,
    /// Include excitation matched filters (the paper's full design). The
    /// ablation benches switch this off to quantify the EMF contribution.
    pub include_emf: bool,
    /// Cap on the inverse-frequency class weights used by the per-qubit
    /// heads. Natural leakage can be a <1 % class, so a generous cap is
    /// needed for the `|2⟩` boundary to be learned at all.
    pub class_weight_cap: f32,
    /// Spectral-neighbourhood radius of the joint crosstalk-aware matched
    /// filters: each qubit's kernels fold in the reference phasors of its
    /// `joint_neighbors` nearest tones on each side, weighted by the chip's
    /// crosstalk matrix, cancelling spectral bleed to first order. `0`
    /// (the default) is the classic per-qubit bank, bit-identical to the
    /// pre-joint pipeline.
    pub joint_neighbors: usize,
}

impl Default for OursConfig {
    fn default() -> Self {
        Self {
            mf_kind: MatchedFilterKind::default(),
            train: TrainConfig {
                epochs: 60,
                batch_size: 64,
                learning_rate: 2e-3,
                early_stop_patience: Some(10),
                ..TrainConfig::default()
            },
            include_emf: true,
            class_weight_cap: 100.0,
            joint_neighbors: 0,
        }
    }
}

impl Serialize for OursConfig {
    /// `joint_neighbors` is omitted when 0 (its default), so the canonical
    /// JSON of every pre-joint config — and therefore every spec
    /// fingerprint and saved v2 envelope — is unchanged by the field's
    /// existence.
    fn to_json_value(&self) -> JsonValue {
        let mut entries = vec![
            ("mf_kind".to_owned(), self.mf_kind.to_json_value()),
            ("train".to_owned(), self.train.to_json_value()),
            ("include_emf".to_owned(), self.include_emf.to_json_value()),
            (
                "class_weight_cap".to_owned(),
                self.class_weight_cap.to_json_value(),
            ),
        ];
        if self.joint_neighbors != 0 {
            entries.push((
                "joint_neighbors".to_owned(),
                self.joint_neighbors.to_json_value(),
            ));
        }
        JsonValue::Object(entries)
    }
}

impl Deserialize for OursConfig {
    /// A missing `joint_neighbors` key reads as 0, so configs written
    /// before the joint-kernel extension load unchanged.
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| DeError::new(format!("OursConfig missing field `{name}`")))
        };
        Ok(Self {
            mf_kind: MatchedFilterKind::from_json_value(field("mf_kind")?)?,
            train: TrainConfig::from_json_value(field("train")?)?,
            include_emf: bool::from_json_value(field("include_emf")?)?,
            class_weight_cap: f32::from_json_value(field("class_weight_cap")?)?,
            joint_neighbors: match value.get("joint_neighbors") {
                Some(v) => usize::from_json_value(v)?,
                None => 0,
            },
        })
    }
}

/// The paper's discriminator: one [`FeatureExtractor`] (matched-filter
/// banks over all qubits) feeding one lightweight 3-way MLP per qubit.
///
/// Heads follow the paper's topology `[P, ⌊P/2⌋, ⌊P/4⌋, k]` with
/// `P = 9 × n_qubits` (45 → 22 → 11 → 3 on the five-qubit chip), for
/// ≈1.3 k weights per qubit — the ~100× reduction vs. the FNN baseline.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct OursDiscriminator {
    pub(crate) extractor: FeatureExtractor,
    pub(crate) standardizer: Standardizer,
    pub(crate) heads: Vec<Mlp>,
    pub(crate) levels: usize,
    /// Fused single-pass inference plan — derived data, compiled by every
    /// constructor from the fitted parts, never serialised.
    pub(crate) plan: crate::CompiledPlan,
}

impl OursDiscriminator {
    /// Fits matched-filter banks on the training split, then trains one
    /// per-qubit head on the merged scores (validation split drives early
    /// stopping).
    ///
    /// # Panics
    ///
    /// Panics if the training split is missing a level for some qubit
    /// (banks would be underdetermined), or splits index out of range.
    pub fn fit(dataset: &TraceDataset, split: &DatasetSplit, config: &OursConfig) -> Self {
        let extractor = FeatureExtractor::fit_joint(
            dataset,
            &split.train,
            config.include_emf,
            config.mf_kind,
            config.joint_neighbors,
        )
        .expect("every qubit needs every level in the training split");

        let raw_train_x = extractor.extract_batch(dataset, &split.train);
        let standardizer = Standardizer::fit(&raw_train_x).expect("nonempty training batch");
        let train_x = standardizer.transform_batch(&raw_train_x);
        let val_x = if split.val.is_empty() {
            None
        } else {
            Some(standardizer.transform_batch(&extractor.extract_batch(dataset, &split.val)))
        };

        let levels = dataset.levels();
        let p = extractor.feature_dim();
        let sizes = [p, (p / 2).max(levels), (p / 4).max(levels), levels];

        let heads: Vec<Mlp> = (0..dataset.config().n_qubits())
            .map(|q| {
                let labels: Vec<usize> = split.train.iter().map(|&i| dataset.label(i, q)).collect();
                let data =
                    TrainData::from_f64(&train_x, labels, levels).expect("validated feature batch");
                let val_data = val_x.as_ref().map(|vx| {
                    let vlabels: Vec<usize> =
                        split.val.iter().map(|&i| dataset.label(i, q)).collect();
                    TrainData::from_f64(vx, vlabels, levels).expect("validated val batch")
                });
                let mut head = Mlp::new(&sizes, config.train.seed.wrapping_add(q as u64));
                let mut train_cfg = config.train.clone();
                train_cfg.seed = config.train.seed.wrapping_add(1000 + q as u64);
                // Natural-leakage datasets are heavily imbalanced (leaked
                // traces are rare); weight classes inversely to frequency so
                // the |2> decision boundary is still learned.
                if train_cfg.class_weights.is_none() {
                    train_cfg.class_weights = Some(mlr_nn::inverse_frequency_weights(
                        data.labels(),
                        levels,
                        config.class_weight_cap,
                    ));
                }
                head.train(&data, val_data.as_ref(), &train_cfg);
                head
            })
            .collect();

        let plan = crate::plan::compile(crate::plan::per_qubit_graph(
            &extractor,
            &standardizer,
            &heads,
        ));
        Self {
            extractor,
            standardizer,
            heads,
            levels,
            plan,
        }
    }

    /// Borrows the fitted feature extractor (matched-filter banks).
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Borrows the compiled single-pass inference plan every
    /// [`Discriminator::predict_shot`] / [`Discriminator::predict_batch`]
    /// call runs through.
    pub fn plan(&self) -> &crate::CompiledPlan {
        &self.plan
    }

    /// Batch inference through the original layered stages — extract,
    /// standardise, heads — kept as the bit-exactness reference the
    /// plan-vs-layered property tests compare [`Discriminator::predict_batch`]
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if any trace's length differs from the readout window.
    pub fn predict_batch_layered(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.predict_features_batch(&self.extractor.extract_batch_traces(shots))
    }

    /// Per-head logits of one trace through the layered reference stages
    /// (fused `f64` extraction, standardise, heads) — what the compiled
    /// plan's [`crate::CompiledPlan::logits_shot`] is checked against.
    ///
    /// # Panics
    ///
    /// Panics if the trace's length differs from the readout window.
    pub fn logits_layered(&self, raw: &[Complex]) -> Vec<Vec<f32>> {
        let x = self
            .standardizer
            .transform_f32(&self.extractor.extract_fused(raw));
        self.heads.iter().map(|h| h.forward(&x)).collect()
    }

    /// Borrows qubit `q`'s classification head.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn head(&self, q: usize) -> &Mlp {
        &self.heads[q]
    }

    /// Level-alphabet size (3 for the paper's design).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Classifies a pre-extracted (raw, unstandardised) merged feature
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the extractor's dimension.
    pub fn predict_features(&self, features: &[f64]) -> Vec<usize> {
        let x = self.standardizer.transform_f32(features);
        self.heads.iter().map(|h| h.predict(&x)).collect()
    }

    /// Classifies a batch of pre-extracted feature vectors: standardise
    /// once ([`Standardizer::transform_batch_f32`]), then run each head
    /// over the whole batch so its weights stay cache-resident. Decisions
    /// are identical to mapping [`OursDiscriminator::predict_features`].
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the extractor's dimension.
    pub fn predict_features_batch(&self, features: &[Vec<f64>]) -> Vec<Vec<usize>> {
        let xs = self.standardizer.transform_batch_f32(features);
        let per_head: Vec<Vec<usize>> = self.heads.iter().map(|h| h.predict_batch(&xs)).collect();
        crate::batch::transpose_decisions(&per_head, xs.len())
    }

    /// The probability qubit `q`'s head assigns to the leaked state
    /// (softmax mass on the highest level) for a pre-extracted raw feature
    /// vector.
    ///
    /// This is the scalar a leakage-flagging stage thresholds; its ROC
    /// against ground truth ([`mlr_nn::roc_curve`] / [`mlr_nn::auc`]) is
    /// how a control system picks the flag threshold that trades missed
    /// leakage against spurious LRC resets.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `features.len()` differs from the
    /// extractor's dimension.
    pub fn leak_probability(&self, features: &[f64], q: usize) -> f64 {
        let x = self.standardizer.transform_f32(features);
        let probs = self.heads[q].predict_proba(&x);
        *probs.last().expect("nonempty level alphabet") as f64
    }

    /// Classifies with every head quantised to `format` — estimates the
    /// accuracy cost of the fixed-point deployment assumed by the FPGA
    /// resource model.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the extractor's dimension.
    pub fn predict_features_quantized(
        &self,
        features: &[f64],
        format: mlr_nn::FixedPointFormat,
    ) -> Vec<usize> {
        let x = self.standardizer.transform_f32(features);
        self.heads
            .iter()
            .map(|h| mlr_nn::QuantizedMlp::from_mlp(h, format).predict(&x))
            .collect()
    }

    /// Batched quantised classification: quantises every head **once**,
    /// then classifies all rows — unlike the per-shot
    /// [`OursDiscriminator::predict_features_quantized`], which rebuilds
    /// the quantised heads on every call. Decisions are identical, because
    /// quantisation is deterministic in the weights and format.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the extractor's dimension.
    pub fn predict_features_quantized_batch(
        &self,
        features: &[Vec<f64>],
        format: mlr_nn::FixedPointFormat,
    ) -> Vec<Vec<usize>> {
        let quantized: Vec<mlr_nn::QuantizedMlp> = self
            .heads
            .iter()
            .map(|h| mlr_nn::QuantizedMlp::from_mlp(h, format))
            .collect();
        let xs = self.standardizer.transform_batch_f32(features);
        let per_head: Vec<Vec<usize>> = quantized
            .iter()
            .map(|h| xs.iter().map(|x| h.predict(x)).collect())
            .collect();
        crate::batch::transpose_decisions(&per_head, xs.len())
    }
}

impl Discriminator for OursDiscriminator {
    /// Single-shot inference through the compiled single-pass plan: the
    /// standardizer is folded into the first head layers at compile time,
    /// so the whole shot is kernel dots plus the (tiny) head chains —
    /// identical arithmetic to one shot of the batch path, hence
    /// bit-identical decisions. The layered per-stage path survives as
    /// [`OursDiscriminator::predict_batch_layered`].
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        self.plan.predict_shot(raw)
    }

    /// Native batch inference through the compiled plan: demodulation-free
    /// tiled kernel scoring (rows read once per 16-shot tile) with the
    /// standardise step folded away, lowered to `f32` explicit-SIMD dots.
    /// Decisions match the layered reference away from exact
    /// decision-boundary ties (scores agree to ≈1e-6 relative — `f32`
    /// rounding — far below any real margin).
    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.plan.predict_batch(shots)
    }

    fn name(&self) -> &str {
        "OURS"
    }

    fn n_qubits(&self) -> usize {
        self.heads.len()
    }

    fn weight_count(&self) -> usize {
        self.heads.iter().map(Mlp::weight_count).sum()
    }
}

/// The serialisable body of a trained [`OursDiscriminator`] inside the
/// registry's `SavedModel` v2 envelope — the v1 schema minus the chip,
/// which travels in the envelope (see [`crate::SavedModel`] for the
/// legacy v1 file layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SavedOurs {
    banks: Vec<crate::QubitMfBank>,
    standardizer: Standardizer,
    heads: Vec<Mlp>,
    levels: usize,
}

impl OursDiscriminator {
    pub(crate) fn to_saved(&self) -> SavedOurs {
        SavedOurs {
            banks: (0..self.extractor.n_qubits())
                .map(|q| self.extractor.bank(q).clone())
                .collect(),
            standardizer: self.standardizer.clone(),
            heads: self.heads.clone(),
            levels: self.levels,
        }
    }

    pub(crate) fn from_saved(
        saved: SavedOurs,
        chip: mlr_sim::ChipConfig,
        joint_neighbors: usize,
    ) -> Result<Self, crate::ModelIoError> {
        // Same invariants as the legacy v1 loader, shared via SavedModel;
        // the joint radius travels in the envelope's spec, not the payload.
        let legacy = crate::SavedModel {
            format_version: crate::SavedModel::CURRENT_VERSION,
            chip,
            levels: saved.levels,
            banks: saved.banks,
            standardizer: saved.standardizer,
            heads: saved.heads,
        };
        Self::from_legacy_joint(legacy, joint_neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use mlr_sim::ChipConfig;

    /// Small but realistic fit: 3 levels, shortened traces, reduced shots.
    fn fit_small() -> (TraceDataset, DatasetSplit, OursDiscriminator) {
        let mut c = ChipConfig::five_qubit_paper();
        // Shortened but still past ring-up (tau = 100 ns -> 250 samples =
        // 500 ns of integration); the weak qubit needs the integration time.
        c.n_samples = 250;
        let ds = TraceDataset::generate(&c, 3, 12, 5);
        let split = ds.split(0.5, 0.1, 5);
        let config = OursConfig {
            train: TrainConfig {
                epochs: 25,
                ..OursConfig::default().train
            },
            ..OursConfig::default()
        };
        let ours = OursDiscriminator::fit(&ds, &split, &config);
        (ds, split, ours)
    }

    #[test]
    fn model_size_matches_paper_scaling() {
        let (_, _, ours) = fit_small();
        // 5 heads x [45, 22, 11, 3] = 5 x 1265 weights.
        assert_eq!(ours.weight_count(), 5 * 1_265);
        assert_eq!(ours.head(0).sizes(), &[45, 22, 11, 3]);
    }

    #[test]
    fn learns_to_discriminate_three_levels() {
        let (ds, split, ours) = fit_small();
        let report = evaluate(&ours, &ds, &split.test);
        // Even the reduced config should be far above the 1/3 chance level.
        // Qubit 1 mirrors the paper's hard-to-separate qubit 2, so its bar
        // is lower.
        for (q, f) in report.per_qubit_fidelity.iter().enumerate() {
            let floor = if q == 1 { 0.45 } else { 0.65 };
            assert!(*f > floor, "qubit {q} fidelity {f}");
        }
        assert_eq!(report.design, "OURS");
    }

    #[test]
    fn leak_probability_separates_leaked_shots() {
        let (ds, split, ours) = fit_small();
        // AUC of the |2> score on qubit 0 against ground truth: far above
        // chance on the test split.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for &i in &split.test {
            let f = ours.extractor().extract(ds.raw(i));
            scores.push(ours.leak_probability(&f, 0));
            labels.push(ds.label(i, 0) == 2);
        }
        let auc = mlr_nn::auc(&scores, &labels);
        assert!(auc > 0.9, "leak-score AUC {auc}");
        // Probabilities are probabilities.
        assert!(scores.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn predict_features_matches_predict_shot() {
        let (ds, _, ours) = fit_small();
        let raw = ds.raw(7);
        // predict_shot now routes through the compiled plan; the layered
        // reference paths must agree on the decision — the arithmetic
        // differs only by f32 rounding and reassociation, far below any
        // real decision margin.
        let via_reference = ours.predict_features(&ours.extractor().extract(raw));
        assert_eq!(via_reference, ours.predict_shot(raw));
        let via_fused = ours.predict_features(&ours.extractor().extract_fused(raw));
        assert_eq!(via_fused, ours.predict_shot(raw));
    }

    #[test]
    fn plan_folds_standardizer_into_heads() {
        let (ds, split, ours) = fit_small();
        let report = ours.plan().fuse_report();
        assert!(report.affine_into_dense, "affine should fold into heads");
        assert!(!report.affine_into_bank);
        // MLP heads are never collapsed into the bank (profitability guard:
        // 5 × 22 first-layer rows > 45 kernels).
        assert!(!report.heads_into_bank);
        assert_eq!(ours.plan().n_kernel_rows(), 45);
        // Plan decisions equal the layered reference across a real batch.
        let shots: Vec<&[mlr_num::Complex]> = split.test[..30].iter().map(|&i| ds.raw(i)).collect();
        assert_eq!(
            ours.predict_batch(&shots),
            ours.predict_batch_layered(&shots)
        );
    }

    #[test]
    fn batch_equals_per_shot_exactly() {
        let (ds, split, ours) = fit_small();
        let shots: Vec<&[mlr_num::Complex]> = split.test[..40].iter().map(|&i| ds.raw(i)).collect();
        let batch = ours.predict_batch(&shots);
        for (raw, decided) in shots.iter().zip(&batch) {
            assert_eq!(decided, &ours.predict_shot(raw));
        }
    }

    #[test]
    fn quantized_batch_matches_per_shot_quantisation() {
        let (ds, split, ours) = fit_small();
        let fmt = mlr_nn::FixedPointFormat::HLS4ML_DEFAULT;
        let features: Vec<Vec<f64>> = split.test[..20]
            .iter()
            .map(|&i| ours.extractor().extract_fused(ds.raw(i)))
            .collect();
        let batch = ours.predict_features_quantized_batch(&features, fmt);
        for (f, decided) in features.iter().zip(&batch) {
            assert_eq!(decided, &ours.predict_features_quantized(f, fmt));
        }
    }
}
