//! The paper's contribution: a scalable, hardware-efficient multi-level
//! readout discriminator built from matched-filter banks and modular
//! lightweight neural networks (DAC 2025).
//!
//! The design (Sec. V of the paper, Fig. 4):
//!
//! 1. **Demodulate** each qubit's channel from the multiplexed ADC trace
//!    (cheap — two FMA units in hardware).
//! 2. **Matched-filter bank** per qubit ([`QubitMfBank`]): three Qubit MFs
//!    (one per level pair), three Relaxation MFs and three Excitation MFs
//!    (Table III), each reducing the 1000-sample trace to one score.
//! 3. **Merge** the `9 × n` scores from all qubits ([`FeatureExtractor`]).
//! 4. **Per-qubit lightweight MLP** (`[9n, ⌊9n/2⌋, ⌊9n/4⌋, 3]`) refines the
//!    scores into a 3-way state decision, correcting crosstalk with the
//!    other qubits' scores ([`OursDiscriminator`]).
//!
//! Because every qubit gets its own 3-output head instead of one `3ⁿ`-way
//! joint classifier, model size grows polynomially in the qubit count — the
//! key scaling claim of the paper.
//!
//! Leaked-state training data is harvested **without explicit `|2⟩`
//! calibration** by spectral clustering of Mean Trace Values
//! ([`NaturalLeakageDetector`], Sec. V-A).
//!
//! # Examples
//!
//! ```no_run
//! use mlr_core::{Discriminator, OursConfig, OursDiscriminator};
//! use mlr_sim::{ChipConfig, TraceDataset};
//!
//! let config = ChipConfig::five_qubit_paper();
//! let dataset = TraceDataset::generate(&config, 3, 50, 7);
//! let split = dataset.paper_split(7);
//! let ours = OursDiscriminator::fit(&dataset, &split, &OursConfig::default());
//! let report = mlr_core::evaluate(&ours, &dataset, &split.test);
//! println!("F5Q = {:.4}", report.geometric_mean_fidelity());
//! ```

#![deny(missing_docs)]

mod baselines;
mod batch;
mod deployment;
mod discriminator;
pub mod engine;
mod features;
mod leakage;
mod mf_bank;
mod model_io;
mod pipeline;
pub mod plan;
mod qec_bridge;
pub mod registry;
pub mod spec;
mod streaming;

pub use baselines::{
    AutoencoderBaseline, AutoencoderConfig, DiscriminantAnalysis, DiscriminantKind, FnnBaseline,
    FnnConfig, HerqulesBaseline, HerqulesConfig, HmmBaseline, HmmConfig,
};
pub use batch::{batch_threads, par_map, par_map_indexed};
pub use deployment::{DeployedConfig, DeployedDiscriminator};
pub use discriminator::{evaluate, evaluate_confusion, gather_shots, Discriminator, EvalReport};
pub use engine::{
    BatchTicket, Clock, EngineConfig, EngineStats, EvictPolicy, EvictionCandidate, FleetConfig,
    FleetEngine, FleetError, ManualClock, ModelServeStats, PartialShed, Qos, ReadoutEngine,
    Rejected, Session, Ticket, TicketFailed, WallClock,
};
pub use features::FeatureExtractor;
pub use leakage::{LeakageHarvest, NaturalLeakageDetector};
pub use mf_bank::{FilterRole, QubitMfBank};
pub use model_io::{ModelIoError, SavedModel};
pub use pipeline::{OursConfig, OursDiscriminator};
pub use plan::CompiledPlan;
pub use qec_bridge::DiscriminatorHerald;
pub use registry::TrainedModel;
pub use spec::{DiscriminatorSpec, TrainableDiscriminator};
pub use streaming::{
    evaluate_streaming, ShotStream, StreamingConfig, StreamingDecision, StreamingReadout,
    StreamingReport,
};
