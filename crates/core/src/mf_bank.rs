//! Per-qubit matched-filter banks: QMF, RMF and EMF (Table III).

use mlr_dsp::{MatchedFilter, MatchedFilterKind};
use mlr_num::Complex;
use serde::{Deserialize, Serialize};

/// What a filter in the bank is matched to (Table III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterRole {
    /// Qubit Matched Filter: separates steady level `a` from steady level
    /// `b` (`a < b`).
    Qubit(usize, usize),
    /// Relaxation Matched Filter: separates clean level-`a` traces from
    /// traces that decayed `a → b` mid-readout (`b < a`).
    Relaxation(usize, usize),
    /// Excitation Matched Filter: separates clean level-`a` traces from
    /// traces that were excited `a → b` mid-readout (`b > a`).
    Excitation(usize, usize),
}

impl FilterRole {
    /// The canonical filter set for a `levels`-level qudit:
    /// all `C(levels, 2)` QMF pairs, every downward transition as an RMF,
    /// and (if `include_emf`) every upward transition as an EMF.
    ///
    /// For 3 levels with EMFs this is the paper's 9 filters per qubit.
    pub fn canonical_set(levels: usize, include_emf: bool) -> Vec<FilterRole> {
        let mut roles = Vec::new();
        for a in 0..levels {
            for b in (a + 1)..levels {
                roles.push(FilterRole::Qubit(a, b));
            }
        }
        for a in 1..levels {
            for b in 0..a {
                roles.push(FilterRole::Relaxation(a, b));
            }
        }
        if include_emf {
            for a in 0..levels {
                for b in (a + 1)..levels {
                    roles.push(FilterRole::Excitation(a, b));
                }
            }
        }
        roles
    }
}

/// The matched-filter bank of one qubit: one score per [`FilterRole`],
/// computed by a dot product against the demodulated trace's IQ features.
///
/// Error filters (RMF/EMF) are fit between *clean* traces of a level and
/// the error traces tagged by Mean-Trace-Value proximity to another level's
/// centroid (Sec. V-B, "Deciphering Error Traces"); when too few error
/// traces exist the corresponding QMF kernel is substituted so the bank
/// always has a deterministic shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QubitMfBank {
    filters: Vec<(FilterRole, MatchedFilter)>,
    levels: usize,
}

impl QubitMfBank {
    /// Minimum number of tagged error traces required to fit a dedicated
    /// RMF/EMF kernel before falling back to the QMF pair kernel.
    pub const MIN_ERROR_TRACES: usize = 6;

    /// Fits a bank from per-trace IQ feature vectors and this qubit's level
    /// labels.
    ///
    /// `features[i]` must be the [`mlr_dsp::iq_features`] layout of the
    /// qubit's demodulated trace `i`; `labels[i]` its level (`< levels`).
    ///
    /// Returns `None` if any level has no traces at all (the bank would be
    /// underdetermined).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or labels `>= levels`.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        levels: usize,
        include_emf: bool,
        kind: MatchedFilterKind,
    ) -> Option<Self> {
        assert_eq!(features.len(), labels.len(), "length mismatch");
        assert!(labels.iter().all(|&l| l < levels), "label out of range");
        let by_level: Vec<Vec<usize>> = (0..levels)
            .map(|l| {
                (0..labels.len())
                    .filter(|&i| labels[i] == l)
                    .collect::<Vec<_>>()
            })
            .collect();
        if by_level.iter().any(Vec::is_empty) {
            return None;
        }

        // Level centroids in the MTV (mean-I, mean-Q) plane, used to tag
        // error traces.
        let mtv = |f: &[f64]| -> [f64; 2] {
            let half = f.len() / 2;
            let i_mean = f[..half].iter().sum::<f64>() / half as f64;
            let q_mean = f[half..].iter().sum::<f64>() / half as f64;
            [i_mean, q_mean]
        };
        let mtvs: Vec<[f64; 2]> = features.iter().map(|f| mtv(f)).collect();
        let centroids: Vec<[f64; 2]> = by_level
            .iter()
            .map(|idxs| {
                let n = idxs.len() as f64;
                let mut c = [0.0; 2];
                for &i in idxs {
                    c[0] += mtvs[i][0];
                    c[1] += mtvs[i][1];
                }
                [c[0] / n, c[1] / n]
            })
            .collect();
        let nearest = |p: [f64; 2]| -> usize {
            let mut best = (0usize, f64::INFINITY);
            for (l, c) in centroids.iter().enumerate() {
                let d = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2);
                if d < best.1 {
                    best = (l, d);
                }
            }
            best.0
        };

        // Partition each level's traces into clean / tagged-error-toward-b.
        let mut clean: Vec<Vec<usize>> = vec![Vec::new(); levels];
        let mut errors: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); levels]; levels];
        for (l, idxs) in by_level.iter().enumerate() {
            for &i in idxs {
                let tag = nearest(mtvs[i]);
                if tag == l {
                    clean[l].push(i);
                } else {
                    errors[l][tag].push(i);
                }
            }
            // A level whose every trace drifted away still needs a clean
            // reference; fall back to all of its traces.
            if clean[l].is_empty() {
                clean[l] = idxs.clone();
            }
        }

        let fit_mf = |class0: &[usize], class1: &[usize]| -> Option<MatchedFilter> {
            MatchedFilter::fit(
                class0.iter().map(|&i| features[i].as_slice()),
                class1.iter().map(|&i| features[i].as_slice()),
                kind,
            )
        };

        let mut filters = Vec::new();
        for role in FilterRole::canonical_set(levels, include_emf) {
            let mf = match role {
                FilterRole::Qubit(a, b) => fit_mf(&by_level[a], &by_level[b])?,
                FilterRole::Relaxation(a, b) | FilterRole::Excitation(a, b) => {
                    let err = &errors[a][b];
                    if err.len() >= Self::MIN_ERROR_TRACES {
                        fit_mf(&clean[a], err)?
                    } else {
                        // Fallback: the pairwise QMF kernel carries the same
                        // directional information.
                        let (lo, hi) = (a.min(b), a.max(b));
                        fit_mf(&by_level[lo], &by_level[hi])?
                    }
                }
            };
            filters.push((role, mf));
        }
        Some(Self { filters, levels })
    }

    /// Number of filters (and therefore scores) in the bank.
    pub fn n_filters(&self) -> usize {
        self.filters.len()
    }

    /// Level-alphabet size the bank was fit for.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Roles, in score order.
    pub fn roles(&self) -> Vec<FilterRole> {
        self.filters.iter().map(|(r, _)| *r).collect()
    }

    /// Borrows the matched filter for `role`, if present.
    pub fn filter(&self, role: FilterRole) -> Option<&MatchedFilter> {
        self.filters
            .iter()
            .find(|(r, _)| *r == role)
            .map(|(_, f)| f)
    }

    /// Scores one demodulated trace (IQ feature layout): one dot product per
    /// filter.
    ///
    /// # Panics
    ///
    /// Panics if the feature length differs from the fitted kernels.
    pub fn apply(&self, features: &[f64]) -> Vec<f64> {
        self.filters
            .iter()
            .map(|(_, f)| f.apply(features))
            .collect()
    }

    /// Convenience: demodulated complex trace in, scores out.
    ///
    /// # Panics
    ///
    /// As for [`QubitMfBank::apply`].
    pub fn apply_trace(&self, trace: &[Complex]) -> Vec<f64> {
        self.apply(&mlr_dsp::iq_features(trace))
    }

    /// Partial scores of a baseband prefix against the full-length kernels:
    /// one [`MatchedFilter::apply_iq_prefix`] per filter. This is the
    /// quantity a streaming accumulator holds after `prefix.len()` samples;
    /// at full length it equals [`QubitMfBank::apply_trace`].
    ///
    /// # Panics
    ///
    /// Panics if the prefix is longer than the fitted trace length.
    pub fn apply_prefix(&self, prefix: &[Complex]) -> Vec<f64> {
        self.filters
            .iter()
            .map(|(_, f)| f.apply_iq_prefix(prefix))
            .collect()
    }

    /// Kernel weights of every filter in score order, split as
    /// `(i_weights, q_weights)` per filter — the coefficient memory a
    /// streaming scorer loads.
    pub fn kernels_iq(&self) -> Vec<(Vec<f64>, Vec<f64>)> {
        self.filters
            .iter()
            .map(|(_, f)| {
                let k = f.kernel();
                let l = k.len() / 2;
                (k[..l].to_vec(), k[l..].to_vec())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_set_counts_match_paper() {
        // Three-level with EMFs: 3 QMF + 3 RMF + 3 EMF = 9 (Table III).
        assert_eq!(FilterRole::canonical_set(3, true).len(), 9);
        // HERQULES three-level: QMF + RMF only = 6 per qubit.
        assert_eq!(FilterRole::canonical_set(3, false).len(), 6);
        // Two-level: 1 QMF + 1 RMF (+1 EMF).
        assert_eq!(FilterRole::canonical_set(2, false).len(), 2);
        assert_eq!(FilterRole::canonical_set(2, true).len(), 3);
    }

    /// Synthetic "traces": level l sits at I = l, Q = -l, with a few traces
    /// of level 1 drifting toward level 0 (relaxation-like).
    fn synthetic() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let trace = |i_val: f64, q_val: f64| -> Vec<f64> {
            let mut f = vec![i_val; 8];
            f.extend(vec![q_val; 8]);
            f
        };
        for l in 0..3usize {
            for k in 0..20 {
                let jitter = (k as f64 * 0.37).fract() * 0.1;
                features.push(trace(l as f64 + jitter, -(l as f64) - jitter));
                labels.push(l);
            }
        }
        // Eight level-1 traces that look like level 0 (decayed early).
        for k in 0..8 {
            let jitter = (k as f64 * 0.59).fract() * 0.1;
            features.push(trace(0.1 + jitter, -0.1 - jitter));
            labels.push(1);
        }
        (features, labels)
    }

    #[test]
    fn bank_has_nine_filters_and_orders_scores() {
        let (features, labels) = synthetic();
        let bank = QubitMfBank::fit(&features, &labels, 3, true, MatchedFilterKind::VarianceSum)
            .expect("all levels present");
        assert_eq!(bank.n_filters(), 9);
        // QMF(0,1) must score level-1-like traces above level-0-like ones.
        let qmf01 = bank.filter(FilterRole::Qubit(0, 1)).unwrap();
        let f0 = &features[0];
        let f1 = &features[20];
        assert!(qmf01.apply(f1) > qmf01.apply(f0));
    }

    #[test]
    fn relaxation_filter_flags_decayed_traces() {
        let (features, labels) = synthetic();
        let bank =
            QubitMfBank::fit(&features, &labels, 3, true, MatchedFilterKind::VarianceSum).unwrap();
        let rmf10 = bank.filter(FilterRole::Relaxation(1, 0)).unwrap();
        // A decayed level-1 trace (last eight) scores above a clean one.
        let clean = &features[20];
        let decayed = &features[60];
        assert!(rmf10.apply(decayed) > rmf10.apply(clean));
    }

    #[test]
    fn missing_level_returns_none() {
        let (mut features, mut labels) = synthetic();
        // Drop all level-2 traces.
        let keep: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] != 2).collect();
        features = keep.iter().map(|&i| features[i].clone()).collect();
        labels = keep.iter().map(|&i| labels[i]).collect();
        assert!(
            QubitMfBank::fit(&features, &labels, 3, true, MatchedFilterKind::VarianceSum).is_none()
        );
    }

    #[test]
    fn two_level_bank_without_emf() {
        let (features, labels) = synthetic();
        let keep: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] < 2).collect();
        let f2: Vec<Vec<f64>> = keep.iter().map(|&i| features[i].clone()).collect();
        let l2: Vec<usize> = keep.iter().map(|&i| labels[i]).collect();
        let bank = QubitMfBank::fit(&f2, &l2, 2, false, MatchedFilterKind::VarianceSum).unwrap();
        assert_eq!(bank.n_filters(), 2);
        assert_eq!(
            bank.roles(),
            vec![FilterRole::Qubit(0, 1), FilterRole::Relaxation(1, 0)]
        );
    }

    #[test]
    fn kernels_iq_split_is_consistent_with_apply() {
        let (features, labels) = synthetic();
        let bank =
            QubitMfBank::fit(&features, &labels, 3, true, MatchedFilterKind::VarianceSum).unwrap();
        let kernels = bank.kernels_iq();
        assert_eq!(kernels.len(), 9);
        let trace: Vec<Complex> = (0..8)
            .map(|t| Complex::new(0.3 * t as f64, -0.1 * t as f64))
            .collect();
        let scores = bank.apply_trace(&trace);
        for ((ki, kq), score) in kernels.iter().zip(&scores) {
            assert_eq!(ki.len(), 8);
            assert_eq!(kq.len(), 8);
            let manual: f64 = trace
                .iter()
                .enumerate()
                .map(|(t, z)| ki[t] * z.re + kq[t] * z.im)
                .sum();
            assert!(
                (manual - score).abs() < 1e-9 * (1.0 + score.abs()),
                "{manual} vs {score}"
            );
        }
    }

    #[test]
    fn full_prefix_equals_apply_trace() {
        let (features, labels) = synthetic();
        let bank =
            QubitMfBank::fit(&features, &labels, 3, true, MatchedFilterKind::VarianceSum).unwrap();
        let trace: Vec<Complex> = (0..8)
            .map(|t| Complex::new((t as f64 * 0.7).sin(), (t as f64 * 0.3).cos()))
            .collect();
        let via_prefix = bank.apply_prefix(&trace);
        let via_apply = bank.apply_trace(&trace);
        for (a, b) in via_prefix.iter().zip(&via_apply) {
            assert!((a - b).abs() < 1e-12);
        }
        // A shorter prefix gives a genuinely partial score.
        let partial = bank.apply_prefix(&trace[..3]);
        assert_eq!(partial.len(), 9);
    }

    #[test]
    fn bank_serde_roundtrip() {
        let (features, labels) = synthetic();
        let bank =
            QubitMfBank::fit(&features, &labels, 3, true, MatchedFilterKind::VarianceSum).unwrap();
        let json = serde_json::to_string(&bank).unwrap();
        let back: QubitMfBank = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bank);
    }

    #[test]
    fn apply_trace_equals_apply_features() {
        let (features, labels) = synthetic();
        let bank =
            QubitMfBank::fit(&features, &labels, 3, true, MatchedFilterKind::VarianceSum).unwrap();
        let trace: Vec<Complex> = (0..8).map(|_| Complex::new(1.0, -1.0)).collect();
        let via_trace = bank.apply_trace(&trace);
        let via_features = bank.apply(&mlr_dsp::iq_features(&trace));
        assert_eq!(via_trace, via_features);
    }
}
