//! Injectable time source for the serving layer.
//!
//! The engine's flush deadline (`max_delay` past the oldest queued
//! submission) used to read `std::time::Instant` directly, which made
//! every deadline-based test race the real 200 µs clock. [`Clock`]
//! abstracts the two operations the worker actually needs — *what time is
//! it* and *how long may this condvar wait block before re-checking* — so
//! production code runs on [`WallClock`] while tests drive a
//! [`ManualClock`] whose time only moves when the test says so.
//!
//! The design constraint is that workers wait on their **own** condvar
//! (releasing their lock atomically) — a solo engine on its queue
//! condvar, the shared fleet pool on the one pool-wide wake condvar all
//! `MLR_FLEET_WORKERS` threads share — so the clock cannot wait on a
//! worker's behalf. A manual clock instead *subscribes* to each condvar
//! and notifies them all from [`ManualClock::advance`] (one advance
//! re-evaluates every tenant's flush deadline across the whole pool),
//! and tells workers (via [`Clock::timeout_until`] returning `None`) to
//! wait untimed: the only things that can wake them are new work,
//! shutdown, or the test moving time — never a scheduler race.

use std::sync::{Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// A monotonic time source the serving engine reads instead of
/// [`Instant::now`] — injectable so tests control flush deadlines.
pub trait Clock: Send + Sync + std::fmt::Debug + 'static {
    /// Time elapsed since the clock's (arbitrary) epoch.
    fn now(&self) -> Duration;

    /// How long a condvar wait against `deadline` may block before
    /// re-checking [`Clock::now`]: the real remaining time for wall
    /// clocks, `None` (wait untimed; [`ManualClock::advance`] notifies
    /// subscribed condvars) for manual clocks.
    fn timeout_until(&self, deadline: Duration) -> Option<Duration>;

    /// Registers a condvar to be notified whenever this clock's time
    /// jumps. Wall clocks ignore this — real time needs no announcements.
    fn subscribe(&self, waiter: &std::sync::Arc<Condvar>) {
        let _ = waiter;
    }
}

/// The production clock: [`Instant`] anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn timeout_until(&self, deadline: Duration) -> Option<Duration> {
        Some(deadline.saturating_sub(self.now()))
    }
}

/// A test clock that only moves when told to.
///
/// Engines built with [`crate::ReadoutEngine::with_clock`] subscribe
/// their worker condvar; [`ManualClock::advance`] bumps the time and
/// wakes every subscriber, so a deadline flush happens exactly when the
/// test advances past the deadline — deterministically, with no real
/// sleeping anywhere.
///
/// # Examples
///
/// ```
/// use mlr_core::engine::{Clock, ManualClock};
/// use std::time::Duration;
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now(), Duration::ZERO);
/// clock.advance(Duration::from_micros(250));
/// assert_eq!(clock.now(), Duration::from_micros(250));
/// ```
#[derive(Debug)]
pub struct ManualClock {
    now: Mutex<Duration>,
    subscribers: Mutex<Vec<Weak<Condvar>>>,
}

impl ManualClock {
    /// A frozen clock at time zero.
    pub fn new() -> Self {
        Self {
            now: Mutex::new(Duration::ZERO),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// Moves time forward by `step` and wakes every subscribed waiter.
    pub fn advance(&self, step: Duration) {
        {
            let mut now = lock(&self.now);
            *now += step;
        }
        self.notify_subscribers();
    }

    fn notify_subscribers(&self) {
        let mut subs = lock(&self.subscribers);
        // Dead engines drop their condvar; prune them as we notify.
        subs.retain(|weak| match weak.upgrade() {
            Some(cv) => {
                cv.notify_all();
                true
            }
            None => false,
        });
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *lock(&self.now)
    }

    fn timeout_until(&self, _deadline: Duration) -> Option<Duration> {
        None
    }

    fn subscribe(&self, waiter: &std::sync::Arc<Condvar>) {
        lock(&self.subscribers).push(std::sync::Arc::downgrade(waiter));
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wall_clock_moves_and_times_out() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        let t = clock
            .timeout_until(clock.now() + Duration::from_secs(1))
            .expect("wall clocks always time out");
        assert!(t <= Duration::from_secs(1));
        // A deadline already in the past leaves nothing to wait for.
        assert_eq!(clock.timeout_until(Duration::ZERO), Some(Duration::ZERO));
    }

    #[test]
    fn manual_clock_advances_and_notifies() {
        let clock = ManualClock::new();
        assert_eq!(clock.timeout_until(Duration::from_secs(5)), None);

        let cv = Arc::new(Condvar::new());
        let gate = Arc::new(Mutex::new(false));
        clock.subscribe(&cv);

        let waiter = {
            let cv = Arc::clone(&cv);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut ready = gate.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            })
        };
        // Open the gate, then advance: the notify must reach the waiter.
        *gate.lock().unwrap() = true;
        clock.advance(Duration::from_millis(1));
        waiter.join().unwrap();
        assert_eq!(clock.now(), Duration::from_millis(1));
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let clock = ManualClock::new();
        let cv = Arc::new(Condvar::new());
        clock.subscribe(&cv);
        drop(cv);
        clock.advance(Duration::from_secs(1));
        assert!(lock(&clock.subscribers).is_empty());
    }
}
