//! Serving counters: what a worker accepted, classified, shed and how
//! long verdicts took.
//!
//! Counters live in lock-free atomics updated on the submit and resolve
//! paths ([`StatCells`]); [`StatCells::snapshot`] reads them into the
//! plain [`EngineStats`] struct that `mlr serve-stats` prints. The
//! invariant the saturation harness checks is **conservation**: every
//! accepted submission is eventually completed or failed —
//! [`EngineStats::outstanding`] returns to zero once an engine drains —
//! and every rejected one is counted against a typed shed reason, so an
//! overloaded fleet loses nothing silently.

use std::sync::atomic::{AtomicU64, Ordering};

use super::Qos;

/// Lock-free counter cells, one set per engine worker.
#[derive(Debug, Default)]
pub(super) struct StatCells {
    submitted: [AtomicU64; Qos::CLASSES],
    shed: [AtomicU64; Qos::CLASSES],
    rejected_closed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    flushes: AtomicU64,
    max_depth: AtomicU64,
    latency_ns_sum: AtomicU64,
    latency_ns_max: AtomicU64,
}

impl StatCells {
    pub(super) fn record_submit(&self, qos: Qos, depth: usize) {
        self.record_submit_n(qos, 1, depth);
    }

    /// Counts `n` accepted submissions in one atomic add — the vectored
    /// submission path pays two atomics per *window*, not two per shot.
    pub(super) fn record_submit_n(&self, qos: Qos, n: usize, depth: usize) {
        self.submitted[qos as usize].fetch_add(n as u64, Ordering::Relaxed);
        self.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    pub(super) fn record_shed(&self, qos: Qos) {
        self.record_shed_n(qos, 1);
    }

    pub(super) fn record_shed_n(&self, qos: Qos, n: usize) {
        self.shed[qos as usize].fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(super) fn record_rejected_closed(&self) {
        self.record_rejected_closed_n(1);
    }

    pub(super) fn record_rejected_closed_n(&self, n: usize) {
        self.rejected_closed.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(super) fn record_flush(&self, batch: usize) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        let _ = batch;
    }

    /// Counts a whole flush's completions in one set of atomic adds —
    /// the resolve path pays three atomics per *flush*, not three per
    /// shot. Callers pre-aggregate the latency sum and max.
    pub(super) fn record_completed_batch(&self, n: u64, latency_ns_sum: u64, latency_ns_max: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
        self.latency_ns_sum
            .fetch_add(latency_ns_sum, Ordering::Relaxed);
        self.latency_ns_max
            .fetch_max(latency_ns_max, Ordering::Relaxed);
    }

    pub(super) fn record_failed(&self, count: usize) {
        self.failed.fetch_add(count as u64, Ordering::Relaxed);
    }

    pub(super) fn snapshot(&self) -> EngineStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let sum_ns = self.latency_ns_sum.load(Ordering::Relaxed);
        EngineStats {
            submitted: self.submitted.each_ref().map(|c| c.load(Ordering::Relaxed)),
            shed: self.shed.each_ref().map(|c| c.load(Ordering::Relaxed)),
            rejected_closed: self.rejected_closed.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            mean_latency_us: if completed == 0 {
                0.0
            } else {
                sum_ns as f64 / completed as f64 / 1e3
            },
            max_latency_us: self.latency_ns_max.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// A point-in-time snapshot of one worker's serving counters
/// ([`crate::ReadoutEngine::stats`]), or a fleet-wide sum
/// ([`crate::FleetEngine::aggregate_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Accepted submissions per QoS class ([`Qos`] discriminant order:
    /// realtime, standard, bulk).
    pub submitted: [u64; Qos::CLASSES],
    /// Admission-control rejections per QoS class (watermark or full
    /// queue; see [`crate::Rejected`]).
    pub shed: [u64; Qos::CLASSES],
    /// Submissions rejected because the worker had already shut down or
    /// failed.
    pub rejected_closed: u64,
    /// Tickets resolved with a verdict.
    pub completed: u64,
    /// Tickets failed by a worker fault (model panic or wrong-shape
    /// output) — resolved loudly, never lost.
    pub failed: u64,
    /// Micro-batches classified.
    pub flushes: u64,
    /// Deepest queue observed at submission time.
    pub max_depth: u64,
    /// Mean submit→verdict latency over completed tickets, microseconds
    /// (on the engine's [`super::Clock`]).
    pub mean_latency_us: f64,
    /// Worst submit→verdict latency, microseconds.
    pub max_latency_us: f64,
}

impl EngineStats {
    /// Accepted submissions across all QoS classes.
    pub fn total_submitted(&self) -> u64 {
        self.submitted.iter().sum()
    }

    /// Shed submissions across all QoS classes (excluding
    /// [`EngineStats::rejected_closed`]).
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Accepted submissions not yet resolved: the conservation check.
    /// Zero once an engine has drained — anything else means tickets
    /// were lost.
    pub fn outstanding(&self) -> u64 {
        self.total_submitted()
            .saturating_sub(self.completed + self.failed)
    }

    /// Mean classified shots per flush.
    pub fn mean_batch(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.completed as f64 / self.flushes as f64
        }
    }

    /// Element-wise sum, for fleet-wide aggregation. Latency fields
    /// combine as a completed-weighted mean and a max.
    pub fn merge(&self, other: &EngineStats) -> EngineStats {
        let completed = self.completed + other.completed;
        let mean_latency_us = if completed == 0 {
            0.0
        } else {
            (self.mean_latency_us * self.completed as f64
                + other.mean_latency_us * other.completed as f64)
                / completed as f64
        };
        EngineStats {
            submitted: [
                self.submitted[0] + other.submitted[0],
                self.submitted[1] + other.submitted[1],
                self.submitted[2] + other.submitted[2],
            ],
            shed: [
                self.shed[0] + other.shed[0],
                self.shed[1] + other.shed[1],
                self.shed[2] + other.shed[2],
            ],
            rejected_closed: self.rejected_closed + other.rejected_closed,
            completed,
            failed: self.failed + other.failed,
            flushes: self.flushes + other.flushes,
            max_depth: self.max_depth.max(other.max_depth),
            mean_latency_us,
            max_latency_us: self.max_latency_us.max(other.max_latency_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_conservation_and_latency() {
        let cells = StatCells::default();
        cells.record_submit(Qos::Realtime, 1);
        cells.record_submit(Qos::Standard, 2);
        cells.record_submit(Qos::Bulk, 3);
        cells.record_shed(Qos::Bulk);
        cells.record_flush(2);
        cells.record_completed_batch(2, 40_000, 30_000);
        cells.record_failed(1);

        let s = cells.snapshot();
        assert_eq!(s.total_submitted(), 3);
        assert_eq!(s.total_shed(), 1);
        assert_eq!(s.completed, 2);
        assert_eq!(s.failed, 1);
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.max_depth, 3);
        assert!((s.mean_latency_us - 20.0).abs() < 1e-9);
        assert!((s.max_latency_us - 30.0).abs() < 1e-9);
        assert!((s.mean_batch() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_counts_and_weights_latency() {
        let a = EngineStats {
            submitted: [1, 2, 3],
            completed: 2,
            mean_latency_us: 10.0,
            max_latency_us: 12.0,
            flushes: 1,
            ..EngineStats::default()
        };
        let b = EngineStats {
            submitted: [0, 1, 0],
            completed: 6,
            mean_latency_us: 30.0,
            max_latency_us: 50.0,
            flushes: 2,
            max_depth: 9,
            ..EngineStats::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.total_submitted(), 7);
        assert_eq!(m.completed, 8);
        assert_eq!(m.flushes, 3);
        assert_eq!(m.max_depth, 9);
        assert!((m.mean_latency_us - 25.0).abs() < 1e-9);
        assert!((m.max_latency_us - 50.0).abs() < 1e-9);
    }
}
