//! Engine and fleet unit tests. Everything deadline-related runs on a
//! [`ManualClock`] — time only moves when a test says so, so no
//! assertion races the real 200 µs flush window (the PR that introduced
//! these engines had wall-clock-based tests that flaked under load).

use super::fault::{FaultMode, FaultyDiscriminator, Gate};
use super::*;
use crate::{gather_shots, Discriminator};
use mlr_sim::{ChipConfig, TraceDataset};

/// A deterministic stand-in model: "level" = trace length modulo the
/// alphabet, so verdicts encode which shot produced them.
struct Echo;

impl Discriminator for Echo {
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        vec![raw.len() % 3; 2]
    }
    fn name(&self) -> &str {
        "ECHO"
    }
    fn n_qubits(&self) -> usize {
        2
    }
    fn weight_count(&self) -> usize {
        0
    }
}

/// [`Echo`] with a constant level offset — distinguishable fleet tenants.
struct EchoOffset(usize);

impl Discriminator for EchoOffset {
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        vec![(raw.len() + self.0) % 3; 2]
    }
    fn name(&self) -> &str {
        "ECHO-OFFSET"
    }
    fn n_qubits(&self) -> usize {
        2
    }
    fn weight_count(&self) -> usize {
        0
    }
}

/// An [`Echo`] that records the trace lengths of every batch it is asked
/// to classify — lets tests observe *flush composition*, not just
/// verdicts.
struct Recorder {
    batches: Arc<Mutex<Vec<Vec<usize>>>>,
}

impl Discriminator for Recorder {
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        vec![raw.len() % 3; 2]
    }
    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.batches
            .lock()
            .unwrap()
            .push(shots.iter().map(|s| s.len()).collect());
        shots.iter().map(|s| self.predict_shot(s)).collect()
    }
    fn name(&self) -> &str {
        "RECORDER"
    }
    fn n_qubits(&self) -> usize {
        2
    }
    fn weight_count(&self) -> usize {
        0
    }
}

/// An [`Echo`] whose batch path announces entry (opens `entered`) and
/// then blocks on `hold` — pins the worker inside `predict_batch` at a
/// moment the test chooses, with no sleeps.
struct GatedEcho {
    hold: Arc<Gate>,
    entered: Arc<Gate>,
}

impl Discriminator for GatedEcho {
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        vec![raw.len() % 3; 2]
    }
    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.entered.open();
        self.hold.pass();
        shots.iter().map(|s| self.predict_shot(s)).collect()
    }
    fn name(&self) -> &str {
        "GATED-ECHO"
    }
    fn n_qubits(&self) -> usize {
        2
    }
    fn weight_count(&self) -> usize {
        0
    }
}

fn trace(len: usize) -> Vec<Complex> {
    vec![Complex::new(1.0, -1.0); len]
}

fn manual() -> Arc<ManualClock> {
    Arc::new(ManualClock::new())
}

#[test]
#[ignore = "diagnostic timing probe, run with --release -- --ignored"]
fn overhead_probe() {
    let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
    let traces: Vec<Vec<Complex>> = (0..512).map(|_| trace(500)).collect();
    let shots: Vec<&[Complex]> = traces.iter().map(Vec::as_slice).collect();
    let _ = engine.classify_all(&shots); // warm
    let t = std::time::Instant::now();
    for _ in 0..20 {
        let _ = engine.classify_all(&shots);
    }
    let per_iter = t.elapsed().as_secs_f64() / 20.0;
    eprintln!(
        "pure engine overhead: {:.3} ms per 512 shots ({:.2} us/shot)",
        per_iter * 1e3,
        per_iter * 1e6 / 512.0
    );
}

#[test]
fn single_submission_resolves_on_deadline_advance() {
    let clock = manual();
    let engine = ReadoutEngine::with_clock(
        Box::new(Echo),
        EngineConfig {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            ..EngineConfig::default()
        },
        clock.clone(),
    );
    let ticket = engine.session().submit(&trace(7));
    // Time has not reached the deadline: a flush is *impossible*, so the
    // peek is deterministic no matter how threads are scheduled.
    clock.advance(Duration::from_micros(100));
    assert!(ticket.try_wait().is_none());
    // Crossing the deadline wakes the worker and flushes the lone shot.
    clock.advance(Duration::from_micros(150));
    assert_eq!(ticket.wait(), vec![1, 1]);
}

#[test]
fn verdicts_match_submission_not_arrival_order() {
    let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
    let session = engine.session();
    let tickets: Vec<(usize, Ticket)> = (0..200)
        .map(|i| (i, session.submit(&trace(i + 1))))
        .collect();
    for (i, ticket) in tickets {
        assert_eq!(ticket.wait(), vec![(i + 1) % 3; 2], "shot {i}");
    }
}

#[test]
fn concurrent_sessions_from_many_threads_agree_with_direct_batch() {
    let mut chip = ChipConfig::uniform(2);
    chip.n_samples = 80;
    let ds = TraceDataset::generate(&chip, 3, 6, 5);
    let split = ds.split(0.6, 0.0, 5);
    let spec = crate::DiscriminatorSpec::Discriminant(crate::DiscriminantKind::Lda);
    let model = crate::registry::fit(&spec, &ds, &split, 5);
    let all: Vec<usize> = (0..ds.len()).collect();
    let expected = model.predict_batch(&gather_shots(&ds, &all));

    let engine = ReadoutEngine::new(
        Box::new(model),
        EngineConfig {
            max_batch: 7, // deliberately unaligned with the shot count
            max_delay: Duration::from_micros(50),
            ..EngineConfig::default()
        },
    );
    let verdicts: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = all
            .chunks(13)
            .map(|chunk| {
                let session = engine.session();
                let ds = &ds;
                scope.spawn(move || {
                    let tickets: Vec<(usize, Ticket)> = chunk
                        .iter()
                        .map(|&i| (i, session.submit(ds.raw(i))))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|(i, t)| (i, t.wait()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut indexed: Vec<(usize, Vec<usize>)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread"))
            .collect();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, v)| v).collect()
    });
    assert_eq!(verdicts, expected);
}

#[test]
fn classify_all_matches_direct_predict_batch() {
    let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
    let traces: Vec<Vec<Complex>> = (1..40).map(trace).collect();
    let shots: Vec<&[Complex]> = traces.iter().map(Vec::as_slice).collect();
    assert_eq!(engine.classify_all(&shots), Echo.predict_batch(&shots));
}

#[test]
fn drop_resolves_outstanding_tickets() {
    // Frozen clock and an unreachable batch size: only the drop-drain can
    // resolve these tickets, so the test pins exactly that path.
    let engine = ReadoutEngine::with_clock(
        Box::new(Echo),
        EngineConfig {
            max_batch: 1000,
            max_queue: 1000,
            ..EngineConfig::default()
        },
        manual(),
    );
    let session = engine.session();
    let tickets: Vec<Ticket> = (1..20).map(|i| session.submit(&trace(i))).collect();
    drop(engine); // flushes the queue before joining the worker
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(ticket.wait(), vec![(i + 1) % 3; 2]);
    }
}

#[test]
#[should_panic(expected = "shut-down ReadoutEngine")]
fn submit_after_shutdown_panics() {
    let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
    let session = engine.session();
    drop(engine);
    drop(session.submit(&trace(3)));
}

#[test]
fn poisoned_queue_lock_does_not_wedge_later_submitters() {
    // The shutdown panic fires while the queue guard is held, poisoning
    // the mutex. Every *later* submitter must still fail with the same
    // clean panic — not a PoisonError, not a hang (the regression this
    // pins: one panicking caller must never wedge its siblings).
    let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
    let session = engine.session();
    drop(engine);
    for attempt in 0..2 {
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.submit(&trace(3))))
                .expect_err("submit on a shut-down engine must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(
            msg.contains("shut-down ReadoutEngine"),
            "attempt {attempt}: unexpected panic {msg:?}"
        );
    }
}

#[test]
fn resolving_a_poisoned_ticket_slot_still_wakes_waiters() {
    // Poison the slot mutex the way a panicking waiter would, then check
    // that the worker-side resolve path and a sibling waiter both recover.
    let slot = TicketState::new();
    let poisoner = Arc::clone(&slot);
    let _ = std::thread::spawn(move || {
        let _guard = poisoner.state.lock().unwrap();
        panic!("deliberate poison");
    })
    .join();
    assert!(slot.state.lock().is_err(), "mutex must be poisoned");

    let waiter_slot = Arc::clone(&slot);
    let waiter = std::thread::spawn(move || Ticket { slot: waiter_slot }.outcome());
    slot.resolve(vec![2, 1]);
    assert_eq!(waiter.join().expect("waiter thread"), Ok(vec![2, 1]));
}

#[test]
fn try_wait_is_nonblocking_and_nonconsuming() {
    // Frozen clock, batch of two: after one submission *nothing* can have
    // resolved (the deadline cannot pass), so the None peek is exact.
    let clock = manual();
    let engine = ReadoutEngine::with_clock(
        Box::new(Echo),
        EngineConfig {
            max_batch: 2,
            ..EngineConfig::default()
        },
        clock,
    );
    let session = engine.session();
    let first = session.submit(&trace(4));
    assert!(first.try_wait().is_none());
    let second = session.submit(&trace(5));
    assert_eq!(second.wait(), vec![2, 2]);
    // After the flush the first ticket resolves too — and peeking does
    // not consume it, so wait still returns the verdict.
    assert_eq!(first.try_wait(), Some(vec![1, 1]));
    assert_eq!(first.try_wait(), Some(vec![1, 1]));
    assert_eq!(first.wait(), vec![1, 1]);
}

#[test]
fn qos_lanes_flush_realtime_before_standard_before_bulk() {
    let batches = Arc::new(Mutex::new(Vec::new()));
    let clock = manual();
    let engine = ReadoutEngine::with_clock(
        Box::new(Recorder {
            batches: Arc::clone(&batches),
        }),
        EngineConfig {
            max_batch: 4,
            ..EngineConfig::default()
        },
        clock,
    );
    let bulk = engine.session_with(Qos::Bulk);
    let realtime = engine.session_with(Qos::Realtime);
    let standard = engine.session_with(Qos::Standard);
    assert_eq!(realtime.qos(), Qos::Realtime);
    // Frozen clock: the flush can only trigger on the 4th submission, so
    // all four are queued when the worker drains — and must come out in
    // priority order (realtime FIFO, then standard, then bulk), not
    // submission order.
    let tickets = [
        bulk.submit(&trace(1)),
        realtime.submit(&trace(2)),
        standard.submit(&trace(3)),
        realtime.submit(&trace(4)),
    ];
    for ticket in tickets {
        let _ = ticket.wait();
    }
    let seen = batches.lock().unwrap();
    assert_eq!(seen.as_slice(), &[vec![2, 4, 3, 1]]);
}

#[test]
fn admission_sheds_by_class_and_conserves_every_ticket() {
    let hold = Gate::new();
    let entered = Gate::new();
    let config = EngineConfig {
        max_batch: 1,
        max_queue: 8,
        standard_watermark: 6,
        bulk_watermark: 3,
        ..EngineConfig::default()
    };
    let engine = ReadoutEngine::with_clock(
        Box::new(GatedEcho {
            hold: Arc::clone(&hold),
            entered: Arc::clone(&entered),
        }),
        config,
        manual(),
    );
    assert_eq!(config.watermark(Qos::Realtime), 8);
    assert_eq!(config.watermark(Qos::Standard), 6);
    assert_eq!(config.watermark(Qos::Bulk), 3);

    // Pin the worker inside the model, then fill the queue behind it: the
    // depth the admission controller sees is now fully deterministic.
    let bulk = engine.session_with(Qos::Bulk);
    let standard = engine.session_with(Qos::Standard);
    let realtime = engine.session_with(Qos::Realtime);
    let mut tickets = vec![standard.submit(&trace(9))];
    entered.pass();

    for depth in 0..3 {
        tickets.push(
            bulk.try_submit(&trace(depth + 1))
                .unwrap_or_else(|r| panic!("bulk at depth {depth} rejected: {r}")),
        );
    }
    match bulk.try_submit(&trace(4)) {
        Err(Rejected::Shed {
            qos: Qos::Bulk,
            depth: 3,
            watermark: 3,
        }) => {}
        other => panic!("expected bulk shed, got {other:?}"),
    }
    for depth in 3..6 {
        tickets.push(standard.try_submit(&trace(depth + 1)).unwrap());
    }
    assert!(matches!(
        standard.try_submit(&trace(7)),
        Err(Rejected::Shed {
            qos: Qos::Standard,
            depth: 6,
            watermark: 6,
        })
    ));
    for depth in 6..8 {
        tickets.push(realtime.try_submit(&trace(depth + 1)).unwrap());
    }
    assert!(matches!(
        realtime.try_submit(&trace(9)),
        Err(Rejected::QueueFull { depth: 8 })
    ));

    // Release the worker: every accepted ticket must resolve (shed load
    // was refused up front, not lost).
    hold.open();
    let accepted = tickets.len();
    for ticket in tickets {
        assert!(ticket.outcome().is_ok());
    }
    let stats = engine.stats();
    assert_eq!(stats.submitted, [2, 4, 3]);
    assert_eq!(stats.shed, [1, 1, 1]);
    assert_eq!(stats.completed, accepted as u64);
    assert_eq!(stats.outstanding(), 0, "no ticket may be lost");
    assert_eq!(stats.max_depth, 8);
    assert_eq!(stats.flushes, 9);
}

#[test]
fn model_panic_fails_tickets_and_closes_engine_instead_of_hanging() {
    // Batch size 1: every submission flushes immediately, so the fault
    // fires on the exact batch the FaultyDiscriminator was told to hit.
    let engine = ReadoutEngine::with_clock(
        FaultyDiscriminator::boxed(Box::new(Echo), FaultMode::PanicOnFlush(1)),
        EngineConfig {
            max_batch: 1,
            ..EngineConfig::default()
        },
        manual(),
    );
    let session = engine.session();
    // A healthy batch still works.
    assert_eq!(session.submit(&trace(4)).wait(), vec![1, 1]);
    // The poisoned batch fails its ticket loudly...
    let bad = session.submit(&trace(13));
    assert_eq!(bad.outcome(), Err(TicketFailed));
    assert!(engine.is_failed());
    // ...blocking submission panics rather than accepting doomed work...
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.submit(&trace(4))));
    assert!(err.is_err(), "submit after a worker panic must panic");
    // ...and the admission path reports the same as a typed verdict.
    assert!(matches!(
        session.try_submit(&trace(4)),
        Err(Rejected::WorkerFailed)
    ));
    let stats = engine.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.rejected_closed, 1);
    assert_eq!(
        stats.outstanding(),
        0,
        "failed tickets are accounted, not lost"
    );
}

#[test]
fn panicking_waiter_does_not_wedge_sibling_tickets() {
    let clock = manual();
    let engine = ReadoutEngine::with_clock(
        FaultyDiscriminator::boxed(Box::new(Echo), FaultMode::PanicOnFlush(0)),
        EngineConfig {
            max_batch: 2,
            ..EngineConfig::default()
        },
        clock,
    );
    let session = engine.session();
    let first = session.submit(&trace(4));
    let second = session.submit(&trace(5)); // fills the batch -> flush -> panic
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || first.wait()));
    assert!(err.is_err(), "wait on a failed ticket must panic");
    // The sibling's outcome is still reachable after its neighbour's
    // waiter panicked — failure is per-ticket state, not shared poison.
    assert_eq!(second.outcome(), Err(TicketFailed));
}

#[test]
fn wrong_shape_outputs_fail_tickets_like_a_panic() {
    for mode in [FaultMode::TruncateBatch(0), FaultMode::WidenVerdicts(0)] {
        let engine = ReadoutEngine::with_clock(
            FaultyDiscriminator::boxed(Box::new(Echo), mode.clone()),
            EngineConfig {
                max_batch: 2,
                ..EngineConfig::default()
            },
            manual(),
        );
        let session = engine.session();
        let first = session.submit(&trace(4));
        let second = session.submit(&trace(5));
        // Silently zipping a short batch would strand `second` forever;
        // the worker must treat any shape mismatch as a model fault.
        assert_eq!(first.outcome(), Err(TicketFailed), "{mode:?}");
        assert_eq!(second.outcome(), Err(TicketFailed), "{mode:?}");
        assert!(engine.is_failed(), "{mode:?}");
        assert_eq!(engine.stats().failed, 2, "{mode:?}");
    }
}

#[test]
fn tickets_are_futures_resolving_to_outcomes() {
    let engine = ReadoutEngine::new(
        Box::new(Echo),
        EngineConfig {
            max_batch: 1,
            ..EngineConfig::default()
        },
    );
    let session = engine.session();
    let verdict = exec::block_on(async { session.submit(&trace(7)).await });
    assert_eq!(verdict, Ok(vec![1, 1]));

    // A failed worker resolves awaited tickets to the typed error.
    let faulty = ReadoutEngine::with_clock(
        FaultyDiscriminator::boxed(Box::new(Echo), FaultMode::PanicOnFlush(0)),
        EngineConfig {
            max_batch: 1,
            ..EngineConfig::default()
        },
        manual(),
    );
    let session = faulty.session();
    let outcome = exec::block_on(async { session.submit(&trace(4)).await });
    assert_eq!(outcome, Err(TicketFailed));
}

#[test]
fn latency_counters_read_the_injected_clock() {
    let clock = manual();
    let engine = ReadoutEngine::with_clock(
        Box::new(Echo),
        EngineConfig {
            max_batch: 2,
            ..EngineConfig::default()
        },
        clock.clone(),
    );
    let session = engine.session();
    let first = session.submit(&trace(4));
    clock.advance(Duration::from_micros(100));
    let second = session.submit(&trace(5)); // fills the batch at t=100us
    assert_eq!(first.wait(), vec![1, 1]);
    assert_eq!(second.wait(), vec![2, 2]);
    let stats = engine.stats();
    // first waited the full 100us, second flushed immediately: the
    // manual clock makes these latencies exact, not approximate.
    assert_eq!(stats.completed, 2);
    assert!((stats.mean_latency_us - 50.0).abs() < 1e-9, "{stats:?}");
    assert!((stats.max_latency_us - 100.0).abs() < 1e-9, "{stats:?}");
    assert_eq!(stats.flushes, 1);
    assert!((stats.mean_batch() - 2.0).abs() < 1e-9);
}

#[test]
fn qos_parses_and_displays() {
    for qos in Qos::ALL {
        assert_eq!(qos.name().parse::<Qos>().unwrap(), qos);
        assert_eq!(format!("{qos}"), qos.name());
    }
    assert!("turbo".parse::<Qos>().is_err());
}

#[test]
fn submit_all_matches_per_shot_submission_bit_for_bit() {
    let mut chip = ChipConfig::uniform(2);
    chip.n_samples = 60;
    let ds = TraceDataset::generate(&chip, 3, 5, 9);
    let split = ds.split(0.6, 0.0, 9);
    let spec = crate::DiscriminatorSpec::Discriminant(crate::DiscriminantKind::Lda);
    let model = crate::registry::fit(&spec, &ds, &split, 9);
    let all: Vec<usize> = (0..ds.len()).collect();
    let shots = gather_shots(&ds, &all);
    let expected = model.predict_batch(&shots);

    let engine = ReadoutEngine::new(
        Box::new(model),
        EngineConfig {
            max_batch: 7, // deliberately unaligned with the window size
            max_delay: Duration::from_micros(50),
            ..EngineConfig::default()
        },
    );
    let vectored = engine.session().submit_all(&shots).wait();
    assert_eq!(
        vectored, expected,
        "vectored verdicts must be bit-identical"
    );

    let session = engine.session();
    let tickets: Vec<Ticket> = shots.iter().map(|s| session.submit(s)).collect();
    let scalar: Vec<Vec<usize>> = tickets.into_iter().map(Ticket::wait).collect();
    assert_eq!(scalar, expected, "scalar verdicts must be bit-identical");
}

#[test]
fn shared_windows_are_zero_copy_and_bit_identical() {
    let clock = manual();
    let engine = ReadoutEngine::with_clock(
        Box::new(Echo),
        EngineConfig {
            max_batch: 64, // larger than the window: only the deadline can flush
            max_delay: Duration::from_micros(200),
            ..EngineConfig::default()
        },
        clock.clone(),
    );
    let traces: Vec<std::sync::Arc<[Complex]>> =
        (1..=6).map(|n| std::sync::Arc::from(trace(n))).collect();
    let borrowed: Vec<&[Complex]> = traces.iter().map(|t| &t[..]).collect();
    let expected = Echo.predict_batch(&borrowed);

    let ticket = engine.session().submit_all_shared(&traces);
    // The frozen clock pins every shot in the queue, where the engine
    // must hold a refcount on the caller's buffer — not a copy of it.
    for t in &traces {
        assert!(
            std::sync::Arc::strong_count(t) >= 2,
            "queued shared trace should be refcounted by the engine"
        );
    }
    clock.advance(Duration::from_micros(250));
    assert_eq!(
        ticket.wait(),
        expected,
        "shared verdicts must be bit-identical"
    );
    // Shared buffers are dropped before the wake (they are never
    // recycled into the spare pool), so ownership is already back with
    // the caller by the time `wait` returns.
    for t in &traces {
        assert_eq!(std::sync::Arc::strong_count(t), 1);
    }

    let retry = engine
        .session()
        .try_submit_all_shared(&traces)
        .expect("drained queue admits the whole window");
    clock.advance(Duration::from_micros(250));
    assert_eq!(
        retry.wait(),
        expected,
        "try-path shared verdicts must match"
    );
}

#[test]
fn empty_windows_resolve_immediately() {
    // Frozen clock: nothing can ever flush, so only the
    // empty-window-is-already-complete path can resolve these.
    let engine = ReadoutEngine::with_clock(Box::new(Echo), EngineConfig::default(), manual());
    let session = engine.session();
    let empty = session.submit_all(&[]);
    assert!(empty.is_empty());
    assert_eq!(empty.wait(), Vec::<Vec<usize>>::new());
    let ok = session
        .try_submit_all(&[])
        .expect("empty window always fits");
    assert_eq!(ok.outcome(), Ok(vec![]));
}

#[test]
fn submit_all_chunks_windows_larger_than_the_queue() {
    let engine = ReadoutEngine::new(
        Box::new(Echo),
        EngineConfig {
            max_batch: 1,
            max_queue: 2,
            standard_watermark: 2,
            bulk_watermark: 1,
            ..EngineConfig::default()
        },
    );
    let traces: Vec<Vec<Complex>> = (1..=9).map(trace).collect();
    let window: Vec<&[Complex]> = traces.iter().map(Vec::as_slice).collect();
    let expected = Echo.predict_batch(&window);
    // 9 shots through a queue of 2: submit_all must block-and-chunk
    // behind the worker, never shed, and still resolve in submission
    // order.
    assert_eq!(engine.session().submit_all(&window).wait(), expected);
    assert_eq!(engine.stats().total_submitted(), 9);
    assert_eq!(engine.stats().outstanding(), 0);
}

#[test]
fn try_submit_all_admits_a_prefix_and_sheds_the_rest_typed() {
    let hold = Gate::new();
    let entered = Gate::new();
    let config = EngineConfig {
        max_batch: 1,
        max_queue: 8,
        standard_watermark: 6,
        bulk_watermark: 3,
        ..EngineConfig::default()
    };
    let engine = ReadoutEngine::with_clock(
        Box::new(GatedEcho {
            hold: Arc::clone(&hold),
            entered: Arc::clone(&entered),
        }),
        config,
        manual(),
    );
    // Pin the worker inside the model so the queue depth the vectored
    // admission sees is fully deterministic.
    let first = engine.session().submit(&trace(9));
    entered.pass();

    let traces: Vec<Vec<Complex>> = (1..=5).map(trace).collect();
    let window: Vec<&[Complex]> = traces.iter().map(Vec::as_slice).collect();

    // Bulk watermark 3, empty queue: only a 3-shot prefix fits.
    let bulk = engine.session_with(Qos::Bulk);
    let shed = bulk.try_submit_all(&window).unwrap_err();
    assert_eq!(shed.admitted_count, 3);
    assert!(matches!(
        shed.reason,
        Rejected::Shed {
            qos: Qos::Bulk,
            depth: 3,
            watermark: 3,
        }
    ));
    let prefix = shed.admitted.expect("a prefix was admitted");
    assert_eq!(prefix.len(), 3);
    assert_eq!(prefix.pending(), 3);

    // At the watermark nothing fits: a fully-shed window carries no
    // ticket at all.
    let none = bulk.try_submit_all(&window).unwrap_err();
    assert!(none.admitted.is_none());
    assert_eq!(none.admitted_count, 0);

    // Realtime rides past the bulk watermark to the full-queue bound...
    let realtime = engine.session_with(Qos::Realtime);
    let full_window = realtime
        .try_submit_all(&window)
        .expect("5 realtime shots fit in the remaining 5 slots");
    // ...and the 9th slot is the hard bound even for realtime.
    let refused = realtime.try_submit_all(&window).unwrap_err();
    assert!(matches!(refused.reason, Rejected::QueueFull { depth: 8 }));

    // Release the worker: every admitted shot resolves, in submission
    // order, and shed load was refused up front — not lost.
    hold.open();
    assert_eq!(first.wait(), vec![0, 0]);
    assert_eq!(
        prefix.wait(),
        vec![vec![1, 1], vec![2, 2], vec![0, 0]],
        "prefix verdicts come back in submission order"
    );
    assert_eq!(full_window.wait(), Echo.predict_batch(&window));
    let stats = engine.stats();
    assert_eq!(stats.submitted, [5, 1, 3]);
    assert_eq!(stats.shed, [5, 0, 7]);
    assert_eq!(stats.completed, 9);
    assert_eq!(stats.outstanding(), 0, "no vectored ticket may be lost");
}

#[test]
fn panic_mid_window_fails_the_whole_batch_ticket() {
    // Window of 4 over micro-batches of 2: the first flush classifies,
    // the second panics. A half-resolved window is not a usable readout
    // result, so the whole BatchTicket fails — loudly, never a hang.
    let engine = ReadoutEngine::with_clock(
        FaultyDiscriminator::boxed(Box::new(Echo), FaultMode::PanicOnFlush(1)),
        EngineConfig {
            max_batch: 2,
            ..EngineConfig::default()
        },
        manual(),
    );
    let session = engine.session();
    let traces: Vec<Vec<Complex>> = (1..=4).map(trace).collect();
    let window: Vec<&[Complex]> = traces.iter().map(Vec::as_slice).collect();
    let ticket = session.submit_all(&window);
    assert_eq!(ticket.outcome(), Err(TicketFailed));
    assert!(engine.is_failed());
    let stats = engine.stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.outstanding(), 0, "failed shots are accounted");
}

#[test]
fn batch_tickets_are_futures_resolving_to_outcomes() {
    let engine = ReadoutEngine::new(
        Box::new(Echo),
        EngineConfig {
            max_batch: 2,
            ..EngineConfig::default()
        },
    );
    let traces: Vec<Vec<Complex>> = (1..=4).map(trace).collect();
    let window: Vec<&[Complex]> = traces.iter().map(Vec::as_slice).collect();
    let session = engine.session();
    let verdicts = exec::block_on(async { session.submit_all(&window).await });
    assert_eq!(verdicts, Ok(Echo.predict_batch(&window)));

    // A failed worker resolves awaited windows to the typed error.
    let faulty = ReadoutEngine::with_clock(
        FaultyDiscriminator::boxed(Box::new(Echo), FaultMode::PanicOnFlush(0)),
        EngineConfig {
            max_batch: 4,
            ..EngineConfig::default()
        },
        manual(),
    );
    let session = faulty.session();
    let outcome = exec::block_on(async { session.submit_all(&window).await });
    assert_eq!(outcome, Err(TicketFailed));
}

#[test]
fn fleet_routes_by_fingerprint_and_bounds_model_count() {
    let fleet = FleetEngine::with_clock(
        FleetConfig {
            engine: EngineConfig {
                max_batch: 1,
                ..EngineConfig::default()
            },
            model_dir: std::path::PathBuf::from("this-dir-does-not-exist"),
            max_models: 2,
            ..FleetConfig::default()
        },
        manual(),
    );
    assert!(fleet.is_empty());
    fleet.register(1, Box::new(EchoOffset(0))).unwrap();
    fleet.register(2, Box::new(EchoOffset(1))).unwrap();
    let s1 = fleet.session_by_fingerprint(1, Qos::Standard).unwrap();
    let s2 = fleet.session_by_fingerprint(2, Qos::Bulk).unwrap();
    // Same trace, different tenants, different verdicts: routing is real.
    assert_eq!(s1.submit(&trace(4)).wait(), vec![1, 1]);
    assert_eq!(s2.submit(&trace(4)).wait(), vec![2, 2]);

    // The fleet refuses a third model rather than growing without bound —
    // before it even looks at the (nonexistent) model directory.
    assert!(matches!(
        fleet.register(3, Box::new(EchoOffset(2))),
        Err(FleetError::FleetFull { limit: 2, .. })
    ));
    assert!(matches!(
        fleet.session_by_fingerprint(3, Qos::Standard),
        Err(FleetError::FleetFull { limit: 2, .. })
    ));

    let rows = fleet.stats();
    assert_eq!(rows.len(), 2);
    assert_eq!((rows[0].fingerprint, rows[1].fingerprint), (1, 2));
    assert!(rows.iter().all(|r| !r.failed && r.stats.completed == 1));
    let agg = fleet.aggregate_stats();
    assert_eq!(agg.total_submitted(), 2);
    assert_eq!(agg.completed, 2);
    assert_eq!(agg.outstanding(), 0);

    // Retiring frees the slot.
    assert!(fleet.retire(1));
    assert!(!fleet.retire(1));
    fleet.register(3, Box::new(EchoOffset(2))).unwrap();
    assert_eq!(fleet.len(), 2);
}

#[test]
fn fleet_worker_failure_is_contained_to_its_model() {
    let fleet = FleetEngine::with_clock(
        FleetConfig {
            engine: EngineConfig {
                max_batch: 1,
                ..EngineConfig::default()
            },
            ..FleetConfig::default()
        },
        manual(),
    );
    fleet.register(7, Box::new(EchoOffset(0))).unwrap();
    fleet
        .register(
            8,
            FaultyDiscriminator::boxed(Box::new(EchoOffset(0)), FaultMode::PanicOnFlush(0)),
        )
        .unwrap();
    let healthy = fleet.session_by_fingerprint(7, Qos::Standard).unwrap();
    let doomed = fleet.session_by_fingerprint(8, Qos::Standard).unwrap();

    assert_eq!(doomed.submit(&trace(4)).outcome(), Err(TicketFailed));
    // The faulty tenant is failed and refuses work; the healthy tenant
    // never notices.
    assert!(matches!(
        doomed.try_submit(&trace(4)),
        Err(Rejected::WorkerFailed)
    ));
    assert_eq!(healthy.submit(&trace(4)).wait(), vec![1, 1]);

    let rows = fleet.stats();
    let failed_row = rows.iter().find(|r| r.fingerprint == 8).unwrap();
    let healthy_row = rows.iter().find(|r| r.fingerprint == 7).unwrap();
    assert!(failed_row.failed && failed_row.stats.failed == 1);
    assert!(!healthy_row.failed && healthy_row.stats.completed == 1);
    assert_eq!(fleet.aggregate_stats().outstanding(), 0);
}

#[test]
fn fleet_lazily_loads_saved_models_and_matches_direct() {
    let mut chip = ChipConfig::uniform(2);
    chip.n_samples = 80;
    let ds = TraceDataset::generate(&chip, 3, 6, 5);
    let split = ds.split(0.6, 0.0, 5);
    let spec = crate::DiscriminatorSpec::Discriminant(crate::DiscriminantKind::Lda);
    let model = crate::registry::fit(&spec, &ds, &split, 5);
    let all: Vec<usize> = (0..ds.len()).collect();
    let expected = model.predict_batch(&gather_shots(&ds, &all));

    let dir = std::env::temp_dir().join(format!("mlr-fleet-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    model
        .save_json_file(dir.join("mlr-model-0123456789abcdef.json"))
        .unwrap();

    let fleet = FleetEngine::new(FleetConfig {
        engine: EngineConfig {
            max_batch: 7,
            max_delay: Duration::from_micros(50),
            ..EngineConfig::default()
        },
        model_dir: dir.clone(),
        ..FleetConfig::default()
    });
    // First session loads from disk and spins the worker up...
    let session = fleet.session(&spec).unwrap();
    assert_eq!(fleet.len(), 1);
    // ...a second request routes to the same worker, no reload.
    let _again = fleet.session(&spec).unwrap();
    assert_eq!(fleet.len(), 1);

    let tickets: Vec<Ticket> = all.iter().map(|&i| session.submit(ds.raw(i))).collect();
    let verdicts: Vec<Vec<usize>> = tickets.into_iter().map(Ticket::wait).collect();
    assert_eq!(verdicts, expected, "fleet serving must be bit-identical");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_reports_unknown_models_with_the_scanned_dir() {
    let dir = std::env::temp_dir().join(format!("mlr-fleet-empty-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fleet = FleetEngine::new(FleetConfig {
        model_dir: dir.clone(),
        ..FleetConfig::default()
    });
    match fleet.session_by_fingerprint(0xDEAD_BEEF, Qos::Standard) {
        Err(FleetError::UnknownModel {
            fingerprint,
            dir: scanned,
        }) => {
            assert_eq!(fingerprint, 0xDEAD_BEEF);
            assert_eq!(scanned, dir);
        }
        other => panic!("expected UnknownModel, got {:?}", other.map(|_| ())),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_config_default_workers_track_host_parallelism() {
    let workers = FleetConfig::default().workers;
    // Floored at two so one blocking tenant cannot stall the fleet even
    // on a single-core host; otherwise every advertised hardware thread.
    assert!(workers >= 2);
    if let Ok(cores) = std::thread::available_parallelism() {
        assert_eq!(workers, cores.get().max(2));
    }
}

#[test]
fn fleet_config_reads_env_overrides() {
    std::env::set_var("MLR_FLEET_MAX_MODELS", "3");
    std::env::set_var("MLR_FLEET_MAX_QUEUE", "32");
    std::env::set_var("MLR_FLEET_MAX_BATCH", "16");
    std::env::set_var("MLR_FLEET_WORKERS", "4");
    std::env::set_var("MLR_FLEET_EVICT", "lru");
    let config = FleetConfig::from_env();
    std::env::remove_var("MLR_FLEET_MAX_MODELS");
    std::env::remove_var("MLR_FLEET_MAX_QUEUE");
    std::env::remove_var("MLR_FLEET_MAX_BATCH");
    std::env::remove_var("MLR_FLEET_WORKERS");
    std::env::remove_var("MLR_FLEET_EVICT");
    assert_eq!(config.max_models, 3);
    assert_eq!(config.engine.max_queue, 32);
    assert_eq!(config.engine.max_batch, 16);
    assert_eq!(config.workers, 4);
    assert_eq!(config.evict, EvictPolicy::Lru);
    // Watermarks scale with the queue, not the defaults.
    assert_eq!(config.engine.standard_watermark, 28);
    assert_eq!(config.engine.bulk_watermark, 16);
    // An unset policy variable leaves the conservative default.
    assert_eq!(FleetConfig::from_env().evict, EvictPolicy::Refuse);
    assert!("lru".parse::<EvictPolicy>().is_ok());
    assert!("sometimes".parse::<EvictPolicy>().is_err());
}

#[test]
fn fleet_lru_evicts_the_coldest_idle_model_and_conserves_its_counters() {
    let clock = manual();
    let fleet = FleetEngine::with_clock(
        FleetConfig {
            engine: EngineConfig {
                max_batch: 1,
                ..EngineConfig::default()
            },
            max_models: 2,
            evict: EvictPolicy::Lru,
            ..FleetConfig::default()
        },
        clock.clone(),
    );
    fleet.register(1, Box::new(EchoOffset(0))).unwrap();
    fleet.register(2, Box::new(EchoOffset(1))).unwrap();
    let s1 = fleet.session_by_fingerprint(1, Qos::Standard).unwrap();
    let s2 = fleet.session_by_fingerprint(2, Qos::Standard).unwrap();
    assert_eq!(s1.submit(&trace(4)).wait(), vec![1, 1]);
    assert_eq!(s2.submit(&trace(4)).wait(), vec![2, 2]);

    // Step time, then touch model 1: model 2 is now strictly the coldest,
    // on ManualClock-stamped access times — no wall-clock ambiguity.
    clock.advance(Duration::from_micros(10));
    let _warm = fleet.session_by_fingerprint(1, Qos::Standard).unwrap();
    fleet
        .register(3, Box::new(EchoOffset(2)))
        .expect("LRU eviction makes room instead of FleetFull");
    assert_eq!(fleet.len(), 2);
    let fingerprints: Vec<u64> = fleet.stats().iter().map(|r| r.fingerprint).collect();
    assert_eq!(fingerprints, vec![1, 3], "model 2 was the LRU victim");

    // The evicted tenant's counters survive in the aggregate: eviction
    // churn never loses a count...
    let agg = fleet.aggregate_stats();
    assert_eq!(agg.completed, 2);
    assert_eq!(agg.outstanding(), 0);
    // ...and sessions held on the victim see a clean shutdown, not a hang.
    assert!(matches!(
        s2.try_submit(&trace(4)),
        Err(Rejected::ShuttingDown)
    ));
    assert_eq!(
        fleet
            .session_by_fingerprint(3, Qos::Standard)
            .unwrap()
            .submit(&trace(4))
            .wait(),
        vec![0, 0]
    );
}

#[test]
fn fleet_full_names_the_coldest_evictable_model() {
    let clock = manual();
    let fleet = FleetEngine::with_clock(
        FleetConfig {
            max_models: 1,
            ..FleetConfig::default()
        },
        clock.clone(),
    );
    fleet.register(0xAB, Box::new(EchoOffset(0))).unwrap();
    clock.advance(Duration::from_micros(5));
    let err = fleet.register(0xCD, Box::new(EchoOffset(1))).unwrap_err();
    match &err {
        FleetError::FleetFull {
            limit: 1,
            coldest: Some(candidate),
        } => {
            assert_eq!(candidate.fingerprint, 0xAB);
            assert_eq!(candidate.idle_for, Duration::from_micros(5));
        }
        other => panic!("expected FleetFull with a candidate, got {other:?}"),
    }
    // Regression-pin the message shape: the limit, the coldest
    // fingerprint, its idle age, and the knob that would evict it.
    let msg = err.to_string();
    assert!(msg.contains("maximum of 1 models"), "{msg}");
    assert!(msg.contains("00000000000000ab"), "{msg}");
    assert!(msg.contains("idle 5 µs"), "{msg}");
    assert!(msg.contains("MLR_FLEET_EVICT=lru"), "{msg}");
}

#[test]
fn eviction_refuses_models_pinned_by_tickets_in_flight() {
    let hold = Gate::new();
    let entered = Gate::new();
    let fleet = FleetEngine::with_clock(
        FleetConfig {
            engine: EngineConfig {
                max_batch: 1,
                ..EngineConfig::default()
            },
            max_models: 1,
            evict: EvictPolicy::Lru,
            ..FleetConfig::default()
        },
        manual(),
    );
    fleet
        .register(
            1,
            Box::new(GatedEcho {
                hold: Arc::clone(&hold),
                entered: Arc::clone(&entered),
            }),
        )
        .unwrap();
    let session = fleet.session_by_fingerprint(1, Qos::Standard).unwrap();
    let inflight = session.submit(&trace(4));
    entered.pass(); // the pool thread is now pinned inside the model

    // Even under LRU the sole tenant is not idle: its in-flight ticket
    // pins it, so the fleet refuses — with no candidate to name.
    match fleet.register(2, Box::new(EchoOffset(0))).unwrap_err() {
        FleetError::FleetFull {
            limit: 1,
            coldest: None,
        } => {}
        other => panic!("expected FleetFull with no candidate, got {other:?}"),
    }
    let msg = fleet
        .register(2, Box::new(EchoOffset(0)))
        .unwrap_err()
        .to_string();
    assert!(msg.contains("nothing is evictable"), "{msg}");

    // Once the ticket resolves the tenant is idle again and eviction
    // proceeds.
    hold.open();
    assert_eq!(inflight.wait(), vec![1, 1]);
    fleet
        .register(2, Box::new(EchoOffset(0)))
        .expect("drained tenant is evictable");
    assert_eq!(fleet.len(), 1);
    assert_eq!(fleet.stats()[0].fingerprint, 2);
    assert_eq!(fleet.aggregate_stats().completed, 1);
}
