//! Deterministic fault injection for the serving layer.
//!
//! A serving fleet must keep its failure promises: a model that panics,
//! stalls, or returns garbage fails *its own* tickets loudly and leaves
//! every other worker untouched. [`FaultyDiscriminator`] wraps any real
//! discriminator and injects exactly one such fault, on exactly the
//! flush the test chooses — and "stalls" are built on a [`Gate`]
//! (condvar latch) rather than sleeps, so the fault-injection tests are
//! deterministic under any scheduler.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use mlr_num::Complex;

use crate::spec::BoxedDiscriminator;
use crate::Discriminator;

/// A reusable open/closed latch: [`Gate::pass`] blocks while the gate is
/// closed, [`Gate::open`] releases every blocked caller at once.
///
/// The deterministic stand-in for "this model is slow": a test holds a
/// gated model's gate closed, floods the engine to a chosen queue depth,
/// then opens the gate — no wall-clock sleeps, no racing a scheduler.
#[derive(Debug, Default)]
pub struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    /// A closed gate.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Opens the gate and wakes everything blocked in [`Gate::pass`].
    pub fn open(&self) {
        *lock(&self.open) = true;
        self.cv.notify_all();
    }

    /// Closes the gate again; subsequent [`Gate::pass`] calls block.
    pub fn close(&self) {
        *lock(&self.open) = false;
    }

    /// Blocks until the gate is open.
    pub fn pass(&self) {
        let mut open = lock(&self.open);
        while !*open {
            open = self
                .cv
                .wait(open)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Which fault to inject, and on which `predict_batch` call (0-based —
/// faults target the serving path, which only ever classifies through
/// [`Discriminator::predict_batch`]).
#[derive(Debug, Clone)]
pub enum FaultMode {
    /// Panic on the `n`-th batch; earlier batches classify normally. The
    /// engine must fail that batch's tickets and close, not hang.
    PanicOnFlush(usize),
    /// On the `n`-th batch, return one verdict too few — the
    /// wrong-*batch*-shape fault. The engine must treat it exactly like a
    /// panic (silently zipping would strand the last ticket forever).
    TruncateBatch(usize),
    /// On the `n`-th batch, return verdicts one level too wide per shot —
    /// the wrong-*verdict*-shape fault.
    WidenVerdicts(usize),
    /// Block every batch on the gate until the test opens it: the
    /// deterministic "slow model". Classification is unchanged once the
    /// gate opens.
    Hold(Arc<Gate>),
}

/// A wrapper that serves exactly like its inner discriminator until the
/// configured [`FaultMode`] triggers; see the [module docs](self).
pub struct FaultyDiscriminator {
    inner: BoxedDiscriminator,
    mode: FaultMode,
    name: String,
    batches: AtomicUsize,
}

impl FaultyDiscriminator {
    /// Wraps `inner`, injecting `mode` on the serving path.
    pub fn new(inner: BoxedDiscriminator, mode: FaultMode) -> Self {
        let name = format!("FAULTY({})", inner.name());
        Self {
            inner,
            mode,
            name,
            batches: AtomicUsize::new(0),
        }
    }

    /// Boxed constructor, ready for [`crate::ReadoutEngine::new`].
    pub fn boxed(inner: BoxedDiscriminator, mode: FaultMode) -> BoxedDiscriminator {
        Box::new(Self::new(inner, mode))
    }

    /// How many batches the serving path has asked this model for.
    pub fn batches_seen(&self) -> usize {
        self.batches.load(Ordering::Relaxed)
    }
}

impl Discriminator for FaultyDiscriminator {
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        // Faults are injected on the serving (batch) path only; the
        // per-shot path stays honest so tests can compute expectations.
        self.inner.predict_shot(raw)
    }

    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        let call = self.batches.fetch_add(1, Ordering::Relaxed);
        match &self.mode {
            FaultMode::PanicOnFlush(n) if call == *n => {
                panic!("injected fault: model panic on batch {call}")
            }
            FaultMode::TruncateBatch(n) if call == *n => {
                let mut verdicts = self.inner.predict_batch(shots);
                verdicts.pop();
                verdicts
            }
            FaultMode::WidenVerdicts(n) if call == *n => {
                let mut verdicts = self.inner.predict_batch(shots);
                for verdict in &mut verdicts {
                    verdict.push(0);
                }
                verdicts
            }
            FaultMode::Hold(gate) => {
                gate.pass();
                self.inner.predict_batch(shots)
            }
            _ => self.inner.predict_batch(shots),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn n_qubits(&self) -> usize {
        self.inner.n_qubits()
    }

    fn weight_count(&self) -> usize {
        self.inner.weight_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes the length of each trace as a single-qubit verdict.
    struct Echo;

    impl Discriminator for Echo {
        fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
            vec![raw.len()]
        }
        fn name(&self) -> &str {
            "ECHO"
        }
        fn n_qubits(&self) -> usize {
            1
        }
        fn weight_count(&self) -> usize {
            0
        }
    }

    #[test]
    fn faults_trigger_only_on_their_batch() {
        let faulty = FaultyDiscriminator::new(Box::new(Echo), FaultMode::TruncateBatch(1));
        let shot = vec![Complex::ZERO; 3];
        let shots: Vec<&[Complex]> = vec![&shot, &shot];
        assert_eq!(faulty.predict_batch(&shots).len(), 2);
        assert_eq!(faulty.predict_batch(&shots).len(), 1, "truncated batch");
        assert_eq!(faulty.predict_batch(&shots).len(), 2, "healthy again");
        assert_eq!(faulty.batches_seen(), 3);
        assert_eq!(faulty.name(), "FAULTY(ECHO)");
        assert_eq!(faulty.predict_shot(&shot), vec![3], "per-shot path honest");
    }

    #[test]
    fn widen_verdicts_changes_shape_not_count() {
        let faulty = FaultyDiscriminator::new(Box::new(Echo), FaultMode::WidenVerdicts(0));
        let shot = vec![Complex::ZERO; 2];
        let shots: Vec<&[Complex]> = vec![&shot];
        let verdicts = faulty.predict_batch(&shots);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].len(), 2, "one level too wide");
    }

    #[test]
    fn gate_blocks_until_opened() {
        let gate = Gate::new();
        let faulty = Arc::new(FaultyDiscriminator::new(
            Box::new(Echo),
            FaultMode::Hold(Arc::clone(&gate)),
        ));
        let worker = {
            let faulty = Arc::clone(&faulty);
            std::thread::spawn(move || {
                let shot = vec![Complex::ZERO; 4];
                let shots: Vec<&[Complex]> = vec![&shot];
                faulty.predict_batch(&shots)
            })
        };
        // The worker cannot classify before the gate opens; once it does,
        // the held batch completes with correct verdicts.
        gate.open();
        assert_eq!(worker.join().unwrap(), vec![vec![4]]);
    }
}
