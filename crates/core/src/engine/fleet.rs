//! Multi-model serving: per-fingerprint tenant queues drained by a
//! shared bounded worker pool, with models loaded lazily from the
//! registry cache and (optionally) evicted LRU.
//!
//! A [`FleetEngine`] is a map from [`DiscriminatorSpec`] fingerprint to a
//! serving `Tenant` queue, behind one front door: ask for a
//! [`FleetEngine::session`] on a spec and the fleet either routes to the
//! already-serving tenant or loads the model from the `MLR_MODEL_DIR`
//! envelope cache ([`crate::registry::find_in_dir`]) and installs one.
//! Every tenant's queue is drained by the **same** pool of
//! [`FleetConfig::workers`] threads (`MLR_FLEET_WORKERS`), round-robin
//! across tenants and lane-priority within each (see `super::pool`) —
//! so all sessions of one fingerprint merge into one `predict_batch`
//! call, and serving `n` models costs `workers` threads, not `n`.
//!
//! Tenants stay fault-isolated despite the shared threads — a model that
//! panics or mis-shapes a batch fails its own tickets and refuses further
//! work ([`super::Rejected::WorkerFailed`]), while every other tenant
//! keeps serving; a model that *blocks* pins at most the one pool thread
//! that claimed its batch. The fault-injection tests pin both.
//!
//! The fleet adds one admission layer of its own: at most
//! [`FleetConfig::max_models`] tenants. Past the bound the fleet either
//! refuses ([`FleetError::FleetFull`], which names the coldest evictable
//! tenant so callers can act) or — under [`EvictPolicy::Lru`]
//! (`MLR_FLEET_EVICT=lru`) — retires the least-recently-used *idle*
//! tenant to make room. Access times are stamped on session opens and
//! submissions from the engine [`Clock`]; tenants with tickets in flight
//! are never eviction candidates. Counters aggregate across live and
//! retired tenants ([`FleetEngine::aggregate_stats`]) for
//! `mlr serve-stats`, so eviction churn never loses a count.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::model_io::ModelIoError;
use crate::registry;
use crate::spec::BoxedDiscriminator;
use crate::DiscriminatorSpec;

use super::pool::WorkerPool;
use super::{Clock, EngineConfig, EngineStats, Qos, Session, Tenant, WallClock};

/// What the fleet does when [`FleetEngine::register`] or a lazy load
/// needs a slot past [`FleetConfig::max_models`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictPolicy {
    /// Refuse with [`FleetError::FleetFull`] (the pre-eviction behaviour,
    /// and the default).
    #[default]
    Refuse,
    /// Retire the least-recently-used **idle** tenant to make room
    /// (`MLR_FLEET_EVICT=lru`). Tenants with queued work, a batch being
    /// classified, or unresolved tickets are pinned and never evicted; if
    /// nothing is idle the fleet still refuses.
    Lru,
}

impl std::str::FromStr for EvictPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lru" => Ok(EvictPolicy::Lru),
            "refuse" | "off" | "none" => Ok(EvictPolicy::Refuse),
            other => Err(format!(
                "unknown eviction policy '{other}' (expected lru or refuse)"
            )),
        }
    }
}

/// Sizing and model-source policy of a [`FleetEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Batching and admission policy applied to every tenant queue.
    pub engine: EngineConfig,
    /// Directory scanned for saved model envelopes on a fingerprint miss
    /// (the `MLR_MODEL_DIR` cache written by `mlr-bench`).
    pub model_dir: PathBuf,
    /// Hard bound on concurrently served models; what happens past it is
    /// [`FleetConfig::evict`]'s call.
    pub max_models: usize,
    /// Worker threads in the shared pool draining every tenant
    /// (`MLR_FLEET_WORKERS`). Defaults to the machine's available
    /// parallelism (at least two, so one blocking tenant cannot stall the
    /// whole fleet even on a single-core box); clamped to at least one
    /// when overridden.
    pub workers: usize,
    /// Behaviour at the [`FleetConfig::max_models`] bound
    /// (`MLR_FLEET_EVICT`).
    pub evict: EvictPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            model_dir: PathBuf::from("models"),
            max_models: 8,
            workers: default_workers(),
            evict: EvictPolicy::Refuse,
        }
    }
}

/// Default shared-pool size: every hardware thread the host advertises,
/// floored at two. Serving is throughput work — leaving cores idle by
/// default only made sense when the pool was shared by a single tenant —
/// but the floor keeps the one-blocking-tenant isolation guarantee on
/// single-core machines, and `MLR_FLEET_WORKERS` still pins any size
/// (down to one) explicitly.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2)
        .max(2)
}

impl FleetConfig {
    /// The deployment-facing constructor: defaults overridden by the
    /// `MLR_MODEL_DIR` (model cache directory), `MLR_FLEET_MAX_MODELS`
    /// (tenant bound), `MLR_FLEET_WORKERS` (shared pool size),
    /// `MLR_FLEET_EVICT` (`lru` to retire cold idle tenants at the
    /// bound), `MLR_FLEET_MAX_QUEUE` and `MLR_FLEET_MAX_BATCH`
    /// (per-tenant queue sizing, see [`EngineConfig::with_queue`])
    /// environment variables. Unparsable values fall back to defaults —
    /// serving starts conservatively rather than not at all.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(dir) = std::env::var_os("MLR_MODEL_DIR") {
            config.model_dir = PathBuf::from(dir);
        }
        if let Some(n) = env_usize("MLR_FLEET_MAX_MODELS") {
            config.max_models = n.max(1);
        }
        if let Some(n) = env_usize("MLR_FLEET_WORKERS") {
            config.workers = n.max(1);
        }
        if let Ok(policy) = std::env::var("MLR_FLEET_EVICT") {
            if let Ok(policy) = policy.parse() {
                config.evict = policy;
            }
        }
        if let Some(n) = env_usize("MLR_FLEET_MAX_QUEUE") {
            config.engine = EngineConfig::with_queue(n);
        }
        if let Some(n) = env_usize("MLR_FLEET_MAX_BATCH") {
            config.engine.max_batch = n.max(1);
            config.engine.max_queue = config.engine.max_queue.max(config.engine.max_batch);
        }
        config
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The coldest idle tenant at the moment a [`FleetError::FleetFull`] was
/// raised: what [`EvictPolicy::Lru`] would have retired to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionCandidate {
    /// The idle tenant's spec fingerprint.
    pub fingerprint: u64,
    /// How long since its last session open or submission, on the
    /// fleet's [`Clock`].
    pub idle_for: Duration,
}

/// Why the fleet could not open a session on a spec.
#[derive(Debug)]
pub enum FleetError {
    /// No serving tenant matches the fingerprint and no envelope in
    /// [`FleetConfig::model_dir`] does either.
    UnknownModel {
        /// The requested spec fingerprint.
        fingerprint: u64,
        /// The directory that was scanned.
        dir: PathBuf,
    },
    /// A matching envelope exists but failed to load, or the model
    /// directory is unreadable.
    ModelIo(ModelIoError),
    /// The fleet already serves [`FleetConfig::max_models`] models and
    /// the eviction policy did not (or could not) make room.
    FleetFull {
        /// The configured bound.
        limit: usize,
        /// The coldest idle tenant — what LRU eviction would retire —
        /// or `None` when every tenant is pinned by work in flight.
        coldest: Option<EvictionCandidate>,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownModel { fingerprint, dir } => write!(
                f,
                "no worker or saved model for spec fingerprint {fingerprint:016x} in {}",
                dir.display()
            ),
            FleetError::ModelIo(e) => write!(f, "model load failed: {e}"),
            FleetError::FleetFull { limit, coldest } => {
                write!(f, "fleet already serves its maximum of {limit} models")?;
                match coldest {
                    Some(c) => write!(
                        f,
                        "; coldest idle model {:016x} (idle {} µs) is evictable under MLR_FLEET_EVICT=lru",
                        c.fingerprint,
                        c.idle_for.as_micros()
                    ),
                    None => write!(f, "; every model has tickets in flight — nothing is evictable"),
                }
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::ModelIo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelIoError> for FleetError {
    fn from(e: ModelIoError) -> Self {
        FleetError::ModelIo(e)
    }
}

/// One fleet tenant's identity and serving counters, as reported by
/// [`FleetEngine::stats`] (and printed by `mlr serve-stats`).
#[derive(Debug, Clone)]
pub struct ModelServeStats {
    /// The tenant's key: [`DiscriminatorSpec::fingerprint`].
    pub fingerprint: u64,
    /// The served design's name ([`crate::Discriminator::name`]).
    pub family: String,
    /// Whether this tenant died to a model fault.
    pub failed: bool,
    /// The tenant's counters.
    pub stats: EngineStats,
}

struct FleetTenant {
    tenant: Arc<Tenant>,
    family: String,
}

/// The multi-model serving fleet; see the [module docs](self).
pub struct FleetEngine {
    config: FleetConfig,
    clock: Arc<dyn Clock>,
    tenants: Mutex<HashMap<u64, FleetTenant>>,
    /// Counters of retired/evicted tenants, folded into
    /// [`FleetEngine::aggregate_stats`] so churn never loses a count.
    retired: Mutex<EngineStats>,
    pool: WorkerPool,
}

impl FleetEngine {
    /// An empty fleet timed by the production [`WallClock`]; tenants
    /// appear on demand.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_clock(config, Arc::new(WallClock::new()))
    }

    /// [`FleetEngine::new`] with an injected time source, shared by the
    /// worker pool and every tenant the fleet installs (one
    /// [`super::ManualClock`] can drive all flush deadlines — and all
    /// LRU access stamps — in tests).
    pub fn with_clock(config: FleetConfig, clock: Arc<dyn Clock>) -> Self {
        let pool = WorkerPool::new(config.workers, Arc::clone(&clock), "mlr-fleet-worker");
        Self {
            config,
            clock,
            tenants: Mutex::new(HashMap::new()),
            retired: Mutex::new(EngineStats::default()),
            pool,
        }
    }

    /// The fleet's sizing policy.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Installs an already-built model under `fingerprint`, serving it
    /// immediately — the test/bench path that skips the disk. Replaces
    /// (and drains) any tenant already serving the key.
    ///
    /// # Errors
    ///
    /// [`FleetError::FleetFull`] when the fleet is at
    /// [`FleetConfig::max_models`], `fingerprint` is new, and the
    /// eviction policy found nothing to retire.
    pub fn register(&self, fingerprint: u64, model: BoxedDiscriminator) -> Result<(), FleetError> {
        let family = model.name().to_owned();
        let tenant = Tenant::new(model, self.config.engine, Arc::clone(&self.clock));
        tenant.touch();
        let mut outgoing = Vec::new();
        {
            let mut tenants = lock(&self.tenants);
            if !tenants.contains_key(&fingerprint) {
                if let Some(evicted) = self.make_room(&mut tenants)? {
                    outgoing.push(evicted);
                }
            }
            if let Some(replaced) = tenants.insert(
                fingerprint,
                FleetTenant {
                    tenant: Arc::clone(&tenant),
                    family,
                },
            ) {
                outgoing.push(replaced);
            }
            self.pool.core().add(fingerprint, tenant);
        }
        for old in outgoing {
            self.retire_tenant(old);
        }
        Ok(())
    }

    /// Opens a [`Qos::Standard`] session on the tenant serving `spec`,
    /// lazily loading the model from [`FleetConfig::model_dir`] if none
    /// serves it yet.
    ///
    /// # Errors
    ///
    /// [`FleetError`] when the model cannot be found, loaded, or admitted.
    pub fn session(&self, spec: &DiscriminatorSpec) -> Result<Session, FleetError> {
        self.session_with(spec, Qos::Standard)
    }

    /// [`FleetEngine::session`] with an explicit [`Qos`] class.
    ///
    /// # Errors
    ///
    /// As for [`FleetEngine::session`].
    pub fn session_with(&self, spec: &DiscriminatorSpec, qos: Qos) -> Result<Session, FleetError> {
        self.session_by_fingerprint(spec.fingerprint(), qos)
    }

    /// Opens a session keyed directly by spec fingerprint (the wire-level
    /// form a serving front end routes on). A fingerprint miss first
    /// secures a slot — erroring with [`FleetError::FleetFull`] (or
    /// evicting, under [`EvictPolicy::Lru`]) *before* touching the disk —
    /// then scans [`FleetConfig::model_dir`] for a matching envelope
    /// ([`registry::find_in_dir`]); the load happens under the fleet
    /// lock, so concurrent first requests for the same model fit it once.
    ///
    /// # Errors
    ///
    /// [`FleetError`] when the model cannot be found, loaded, or admitted.
    pub fn session_by_fingerprint(
        &self,
        fingerprint: u64,
        qos: Qos,
    ) -> Result<Session, FleetError> {
        let mut tenants = lock(&self.tenants);
        if let Some(serving) = tenants.get(&fingerprint) {
            serving.tenant.touch();
            return Ok(Session::open(
                Arc::clone(&serving.tenant),
                self.pool.core(),
                qos,
            ));
        }
        let evicted = self.make_room(&mut tenants)?;
        let result = registry::find_in_dir(&self.config.model_dir, fingerprint)
            .map_err(FleetError::from)
            .and_then(|found| {
                found.ok_or_else(|| FleetError::UnknownModel {
                    fingerprint,
                    dir: self.config.model_dir.clone(),
                })
            })
            .map(|model| {
                let family = model.spec().family_name().to_owned();
                let tenant =
                    Tenant::new(Box::new(model), self.config.engine, Arc::clone(&self.clock));
                tenant.touch();
                tenants.insert(
                    fingerprint,
                    FleetTenant {
                        tenant: Arc::clone(&tenant),
                        family,
                    },
                );
                self.pool.core().add(fingerprint, Arc::clone(&tenant));
                Session::open(tenant, self.pool.core(), qos)
            });
        drop(tenants);
        // An eviction made for a load that then failed still retires
        // cleanly — the candidate was idle, so nothing is lost but cache
        // warmth.
        if let Some(old) = evicted {
            self.retire_tenant(old);
        }
        result
    }

    /// Secures one free tenant slot while holding the fleet lock: a no-op
    /// below [`FleetConfig::max_models`]; at the bound, retires the
    /// coldest idle tenant (LRU by access stamp) under
    /// [`EvictPolicy::Lru`] and returns it for the caller to drain, or
    /// refuses with a [`FleetError::FleetFull`] that names that
    /// candidate.
    fn make_room(
        &self,
        tenants: &mut HashMap<u64, FleetTenant>,
    ) -> Result<Option<FleetTenant>, FleetError> {
        if tenants.len() < self.config.max_models {
            return Ok(None);
        }
        // Ties on the access stamp break by fingerprint so eviction order
        // is deterministic under a frozen ManualClock.
        let coldest = tenants
            .iter()
            .filter(|(_, t)| t.tenant.is_idle())
            .min_by_key(|(&fp, t)| (t.tenant.last_access_nanos(), fp))
            .map(|(&fp, _)| fp);
        match (self.config.evict, coldest) {
            (EvictPolicy::Lru, Some(fingerprint)) => {
                let old = tenants
                    .remove(&fingerprint)
                    .expect("coldest fingerprint is present");
                self.pool.core().remove(fingerprint);
                Ok(Some(old))
            }
            (_, coldest) => Err(FleetError::FleetFull {
                limit: self.config.max_models,
                coldest: coldest.map(|fingerprint| EvictionCandidate {
                    fingerprint,
                    idle_for: self.clock.now().saturating_sub(Duration::from_nanos(
                        tenants[&fingerprint].tenant.last_access_nanos(),
                    )),
                }),
            }),
        }
    }

    /// Closes a tenant removed from the roster, flushes whatever its
    /// queue still holds on *this* thread, and folds its counters into
    /// the retired aggregate.
    fn retire_tenant(&self, old: FleetTenant) {
        old.tenant.close();
        old.tenant.drain_after_close();
        let snapshot = old.tenant.stats();
        let mut retired = lock(&self.retired);
        *retired = retired.merge(&snapshot);
    }

    /// Number of models currently served.
    pub fn len(&self) -> usize {
        lock(&self.tenants).len()
    }

    /// Whether no tenant is serving yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-tenant serving counters, sorted by fingerprint for stable
    /// output.
    pub fn stats(&self) -> Vec<ModelServeStats> {
        let tenants = lock(&self.tenants);
        let mut rows: Vec<ModelServeStats> = tenants
            .iter()
            .map(|(&fingerprint, serving)| ModelServeStats {
                fingerprint,
                family: serving.family.clone(),
                failed: serving.tenant.is_failed(),
                stats: serving.tenant.stats(),
            })
            .collect();
        rows.sort_by_key(|row| row.fingerprint);
        rows
    }

    /// Fleet-wide counter sum ([`EngineStats::merge`] over every live
    /// tenant, plus everything retired or evicted since the fleet
    /// started) — the conservation-audit view.
    pub fn aggregate_stats(&self) -> EngineStats {
        let live = lock(&self.tenants)
            .values()
            .fold(EngineStats::default(), |acc, serving| {
                acc.merge(&serving.tenant.stats())
            });
        live.merge(&lock(&self.retired))
    }

    /// Retires the tenant serving `fingerprint` (draining its queue on
    /// this thread), freeing its [`FleetConfig::max_models`] slot.
    /// Returns whether one was serving. Outstanding tickets still
    /// resolve; sessions held on the retired tenant see it as shut down,
    /// and its counters stay in [`FleetEngine::aggregate_stats`].
    pub fn retire(&self, fingerprint: u64) -> bool {
        let old = lock(&self.tenants).remove(&fingerprint);
        match old {
            Some(old) => {
                self.pool.core().remove(fingerprint);
                self.retire_tenant(old);
                true
            }
            None => false,
        }
    }
}

// Dropping the fleet drops its `WorkerPool`, which closes every roster
// tenant, flushes the remaining queues, and joins the threads.

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
