//! Multi-model serving: one micro-batching worker per discriminator
//! spec, spun up lazily from the registry cache.
//!
//! A [`FleetEngine`] is a map from [`DiscriminatorSpec`] fingerprint to a
//! running [`ReadoutEngine`], behind one front door: ask for a
//! [`FleetEngine::session`] on a spec and the fleet either routes to the
//! already-running worker or loads the model from the `MLR_MODEL_DIR`
//! envelope cache ([`crate::registry::find_in_dir`]) and spins one up.
//! Workers are fully isolated — a model that panics or mis-shapes a
//! batch fails its own tickets and refuses further work
//! ([`super::Rejected::WorkerFailed`]), while every other worker keeps
//! serving; the fault-injection tests pin this.
//!
//! The fleet adds one admission layer of its own: at most
//! [`FleetConfig::max_models`] workers ([`FleetError::FleetFull`]), on
//! top of each worker's per-queue watermarks. Counters aggregate across
//! workers ([`FleetEngine::aggregate_stats`]) for `mlr serve-stats`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::model_io::ModelIoError;
use crate::registry;
use crate::spec::BoxedDiscriminator;
use crate::DiscriminatorSpec;

use super::{Clock, EngineConfig, EngineStats, Qos, ReadoutEngine, Session, WallClock};

/// Sizing and model-source policy of a [`FleetEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Batching and admission policy applied to every worker.
    pub engine: EngineConfig,
    /// Directory scanned for saved model envelopes on a fingerprint miss
    /// (the `MLR_MODEL_DIR` cache written by `mlr-bench`).
    pub model_dir: PathBuf,
    /// Hard bound on concurrently served models; further specs are
    /// refused with [`FleetError::FleetFull`] rather than spawning
    /// without limit.
    pub max_models: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            model_dir: PathBuf::from("models"),
            max_models: 8,
        }
    }
}

impl FleetConfig {
    /// The deployment-facing constructor: defaults overridden by the
    /// `MLR_MODEL_DIR` (model cache directory), `MLR_FLEET_MAX_MODELS`
    /// (worker bound), `MLR_FLEET_MAX_QUEUE` and `MLR_FLEET_MAX_BATCH`
    /// (per-worker queue sizing, see [`EngineConfig::with_queue`])
    /// environment variables. Unparsable values fall back to defaults —
    /// serving starts conservatively rather than not at all.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(dir) = std::env::var_os("MLR_MODEL_DIR") {
            config.model_dir = PathBuf::from(dir);
        }
        if let Some(n) = env_usize("MLR_FLEET_MAX_MODELS") {
            config.max_models = n.max(1);
        }
        if let Some(n) = env_usize("MLR_FLEET_MAX_QUEUE") {
            config.engine = EngineConfig::with_queue(n);
        }
        if let Some(n) = env_usize("MLR_FLEET_MAX_BATCH") {
            config.engine.max_batch = n.max(1);
            config.engine.max_queue = config.engine.max_queue.max(config.engine.max_batch);
        }
        config
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Why the fleet could not open a session on a spec.
#[derive(Debug)]
pub enum FleetError {
    /// No running worker serves the fingerprint and no envelope in
    /// [`FleetConfig::model_dir`] matches it.
    UnknownModel {
        /// The requested spec fingerprint.
        fingerprint: u64,
        /// The directory that was scanned.
        dir: PathBuf,
    },
    /// A matching envelope exists but failed to load, or the model
    /// directory is unreadable.
    ModelIo(ModelIoError),
    /// The fleet already serves [`FleetConfig::max_models`] models.
    FleetFull {
        /// The configured bound.
        limit: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownModel { fingerprint, dir } => write!(
                f,
                "no worker or saved model for spec fingerprint {fingerprint:016x} in {}",
                dir.display()
            ),
            FleetError::ModelIo(e) => write!(f, "model load failed: {e}"),
            FleetError::FleetFull { limit } => {
                write!(f, "fleet already serves its maximum of {limit} models")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::ModelIo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelIoError> for FleetError {
    fn from(e: ModelIoError) -> Self {
        FleetError::ModelIo(e)
    }
}

/// One fleet worker's identity and serving counters, as reported by
/// [`FleetEngine::stats`] (and printed by `mlr serve-stats`).
#[derive(Debug, Clone)]
pub struct ModelServeStats {
    /// The worker's key: [`DiscriminatorSpec::fingerprint`].
    pub fingerprint: u64,
    /// The served design's name ([`crate::Discriminator::name`]).
    pub family: String,
    /// Whether this worker died to a model fault.
    pub failed: bool,
    /// The worker's counters.
    pub stats: EngineStats,
}

struct FleetWorker {
    engine: ReadoutEngine,
    family: String,
}

/// The multi-model serving fleet; see the [module docs](self).
pub struct FleetEngine {
    config: FleetConfig,
    clock: Arc<dyn Clock>,
    workers: Mutex<HashMap<u64, FleetWorker>>,
}

impl FleetEngine {
    /// An empty fleet timed by the production [`WallClock`]; workers
    /// appear on demand.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_clock(config, Arc::new(WallClock::new()))
    }

    /// [`FleetEngine::new`] with an injected time source, shared by every
    /// worker the fleet spins up (one [`super::ManualClock`] can drive
    /// all flush deadlines in tests).
    pub fn with_clock(config: FleetConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            config,
            clock,
            workers: Mutex::new(HashMap::new()),
        }
    }

    /// The fleet's sizing policy.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Installs an already-built model under `fingerprint`, spinning up
    /// its worker immediately — the test/bench path that skips the disk.
    /// Replaces (and drains) any worker already serving the key.
    ///
    /// # Errors
    ///
    /// [`FleetError::FleetFull`] when the fleet is at
    /// [`FleetConfig::max_models`] and `fingerprint` is new.
    pub fn register(&self, fingerprint: u64, model: BoxedDiscriminator) -> Result<(), FleetError> {
        let family = model.name().to_owned();
        let mut workers = lock(&self.workers);
        if workers.len() >= self.config.max_models && !workers.contains_key(&fingerprint) {
            return Err(FleetError::FleetFull {
                limit: self.config.max_models,
            });
        }
        let engine = ReadoutEngine::with_clock(model, self.config.engine, Arc::clone(&self.clock));
        workers.insert(fingerprint, FleetWorker { engine, family });
        Ok(())
    }

    /// Opens a [`Qos::Standard`] session on the worker serving `spec`,
    /// lazily loading the model from [`FleetConfig::model_dir`] if no
    /// worker runs yet.
    ///
    /// # Errors
    ///
    /// [`FleetError`] when the model cannot be found, loaded, or admitted.
    pub fn session(&self, spec: &DiscriminatorSpec) -> Result<Session, FleetError> {
        self.session_with(spec, Qos::Standard)
    }

    /// [`FleetEngine::session`] with an explicit [`Qos`] class.
    ///
    /// # Errors
    ///
    /// As for [`FleetEngine::session`].
    pub fn session_with(&self, spec: &DiscriminatorSpec, qos: Qos) -> Result<Session, FleetError> {
        self.session_by_fingerprint(spec.fingerprint(), qos)
    }

    /// Opens a session keyed directly by spec fingerprint (the wire-level
    /// form a serving front end routes on). A fingerprint miss scans
    /// [`FleetConfig::model_dir`] for a matching envelope
    /// ([`registry::find_in_dir`]); the load happens under the fleet lock,
    /// so concurrent first requests for the same model fit it once.
    ///
    /// # Errors
    ///
    /// [`FleetError`] when the model cannot be found, loaded, or admitted.
    pub fn session_by_fingerprint(
        &self,
        fingerprint: u64,
        qos: Qos,
    ) -> Result<Session, FleetError> {
        let mut workers = lock(&self.workers);
        if let Some(worker) = workers.get(&fingerprint) {
            return Ok(worker.engine.session_with(qos));
        }
        if workers.len() >= self.config.max_models {
            return Err(FleetError::FleetFull {
                limit: self.config.max_models,
            });
        }
        let model =
            registry::find_in_dir(&self.config.model_dir, fingerprint)?.ok_or_else(|| {
                FleetError::UnknownModel {
                    fingerprint,
                    dir: self.config.model_dir.clone(),
                }
            })?;
        let family = model.spec().family_name().to_owned();
        let engine =
            ReadoutEngine::with_clock(Box::new(model), self.config.engine, Arc::clone(&self.clock));
        let session = engine.session_with(qos);
        workers.insert(fingerprint, FleetWorker { engine, family });
        Ok(session)
    }

    /// Number of models currently served.
    pub fn len(&self) -> usize {
        lock(&self.workers).len()
    }

    /// Whether no worker is running yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-worker serving counters, sorted by fingerprint for stable
    /// output.
    pub fn stats(&self) -> Vec<ModelServeStats> {
        let workers = lock(&self.workers);
        let mut rows: Vec<ModelServeStats> = workers
            .iter()
            .map(|(&fingerprint, worker)| ModelServeStats {
                fingerprint,
                family: worker.family.clone(),
                failed: worker.engine.is_failed(),
                stats: worker.engine.stats(),
            })
            .collect();
        rows.sort_by_key(|row| row.fingerprint);
        rows
    }

    /// Fleet-wide counter sum ([`EngineStats::merge`] over every worker).
    pub fn aggregate_stats(&self) -> EngineStats {
        lock(&self.workers)
            .values()
            .fold(EngineStats::default(), |acc, worker| {
                acc.merge(&worker.engine.stats())
            })
    }

    /// Drops the worker serving `fingerprint` (draining its queue),
    /// freeing its [`FleetConfig::max_models`] slot. Returns whether a
    /// worker was running. Outstanding tickets still resolve; sessions
    /// held on the retired worker see it as shut down.
    pub fn retire(&self, fingerprint: u64) -> bool {
        lock(&self.workers).remove(&fingerprint).is_some()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
