//! The shared worker pool: a bounded set of threads draining every
//! tenant's queue.
//!
//! PR 8's fleet spawned one worker thread per model, so per-model thread
//! overhead scaled with the roster and cheap plan-fused tenants paid a
//! full lock/wake round-trip per ticket. The pool inverts that: `MLR_FLEET_WORKERS`
//! threads scan a shared roster **round-robin across tenants** (a rotating
//! cursor, so no tenant is structurally favoured) and drain each claimed
//! tenant **lane-priority within the tenant** (realtime before standard
//! before bulk — [`super::Queue::drain_batch`] unchanged). All sessions of
//! the same fingerprint land in the same tenant queue, so one
//! `predict_batch` call serves them together.
//!
//! Fairness under faults: a tenant whose model blocks (e.g. a
//! [`super::fault::FaultyDiscriminator`] holding a [`super::fault::Gate`])
//! pins only the one thread that claimed its batch — the `draining` flag
//! keeps other threads off that tenant, and they keep serving healthy
//! fingerprints. The workspace's fault tests pin this with zero sleeps.
//!
//! Wakes are a single [`Condvar`] shared by all threads and subscribed to
//! the engine [`Clock`] (a [`super::ManualClock`] advance re-evaluates
//! every flush deadline). Submitters call [`PoolCore::wake_one`] only on
//! wake-worthy queue transitions (see [`super::wake_worthy`]).

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use super::clock::Clock;
use super::{lock_recovering, Tenant};

/// The state shared between pool threads and every [`super::Session`]:
/// the tenant roster and the wake condvar.
pub(crate) struct PoolCore {
    roster: Mutex<Roster>,
    /// The pool-wide wake signal: new drainable work, shutdown, or a
    /// [`Clock`] advance. `Arc` so the clock can hold a `Weak`
    /// subscription.
    wake: Arc<Condvar>,
    clock: Arc<dyn Clock>,
}

struct Roster {
    /// `(fingerprint, tenant)` sorted by fingerprint, so scan order — and
    /// therefore flush order under contention — is deterministic.
    tenants: Vec<(u64, Arc<Tenant>)>,
    /// Round-robin scan cursor: each drain starts scanning *after* the
    /// last tenant served, so a chatty tenant cannot starve its
    /// neighbours.
    cursor: usize,
    closed: bool,
}

impl PoolCore {
    /// Wakes one pool thread. Synchronises on the roster mutex first so a
    /// thread between "found nothing drainable" and "wait" cannot miss
    /// the signal (the classic lost-wakeup window).
    pub(crate) fn wake_one(&self) {
        drop(lock_recovering(&self.roster));
        self.wake.notify_one();
    }

    /// Adds (or replaces) a tenant under its fingerprint; returns the
    /// replaced tenant, if any, so the fleet can retire it.
    pub(crate) fn add(&self, key: u64, tenant: Arc<Tenant>) -> Option<Arc<Tenant>> {
        let replaced = {
            let mut roster = lock_recovering(&self.roster);
            match roster.tenants.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => Some(std::mem::replace(&mut roster.tenants[i].1, tenant)),
                Err(i) => {
                    roster.tenants.insert(i, (key, tenant));
                    None
                }
            }
        };
        self.wake.notify_all();
        replaced
    }

    /// Removes a tenant from the roster (its queued work is no longer the
    /// pool's responsibility — the caller drains it).
    pub(crate) fn remove(&self, key: u64) -> Option<Arc<Tenant>> {
        let mut roster = lock_recovering(&self.roster);
        match roster.tenants.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => {
                let (_, tenant) = roster.tenants.remove(i);
                if roster.cursor > i {
                    roster.cursor -= 1;
                }
                Some(tenant)
            }
            Err(_) => None,
        }
    }
}

/// A bounded pool of worker threads over a [`PoolCore`]. Dropping it
/// closes every roster tenant, drains their queues, and joins the
/// threads — outstanding tickets still resolve.
pub(crate) struct WorkerPool {
    core: Arc<PoolCore>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads.max(1)` workers named `{name}-{i}`, subscribed to
    /// `clock` so injected time drives flush deadlines.
    pub(crate) fn new(threads: usize, clock: Arc<dyn Clock>, name: &str) -> Self {
        let wake = Arc::new(Condvar::new());
        clock.subscribe(&wake);
        let core = Arc::new(PoolCore {
            roster: Mutex::new(Roster {
                tenants: Vec::new(),
                cursor: 0,
                closed: false,
            }),
            wake,
            clock,
        });
        let threads = (0..threads.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || pool_loop(&core))
                    .expect("spawn pool worker thread")
            })
            .collect();
        Self { core, threads }
    }

    pub(crate) fn core(&self) -> Arc<PoolCore> {
        Arc::clone(&self.core)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut roster = lock_recovering(&self.core.roster);
            roster.closed = true;
            // Close every tenant so their remaining queues become
            // flushable regardless of deadlines (a frozen ManualClock
            // must not strand a sub-batch tail at shutdown).
            for (_, tenant) in &roster.tenants {
                tenant.close();
            }
        }
        self.core.wake.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker loop: claim a drainable tenant (round-robin), classify its
/// batch outside the roster lock, repeat; otherwise sleep until the
/// earliest flush deadline (or indefinitely under a manual clock, which
/// wakes us on `advance`).
fn pool_loop(core: &PoolCore) {
    let mut roster = lock_recovering(&core.roster);
    loop {
        let now = core.clock.now();
        let n = roster.tenants.len();
        let mut claimed = None;
        for k in 0..n {
            let idx = (roster.cursor + 1 + k) % n;
            let tenant = Arc::clone(&roster.tenants[idx].1);
            if let Some(batch) = tenant.try_begin_drain(now) {
                roster.cursor = idx;
                claimed = Some((tenant, batch));
                break;
            }
        }
        if let Some((tenant, batch)) = claimed {
            // Classify with the roster unlocked: sibling threads keep
            // scanning, submitters keep enqueueing.
            drop(roster);
            tenant.classify_and_resolve(batch, true);
            roster = lock_recovering(&core.roster);
            continue;
        }
        // Nothing drainable. Work out whether we're done, and if not how
        // long to sleep: until the earliest pending flush deadline.
        let mut queued = 0usize;
        let mut deadline: Option<Duration> = None;
        for (_, tenant) in &roster.tenants {
            let (len, d) = tenant.pending_deadline();
            queued += len;
            deadline = match (deadline, d) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        if roster.closed && queued == 0 {
            // Cascade the shutdown: a sibling may be in an untimed wait
            // while we observed the queues empty.
            core.wake.notify_all();
            return;
        }
        match deadline {
            None => {
                roster = core
                    .wake
                    .wait(roster)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            Some(deadline) => match core.clock.timeout_until(deadline) {
                // Manual clock: `advance` notifies the subscribed
                // condvar, so an untimed wait is safe and deterministic.
                None => {
                    roster = core
                        .wake
                        .wait(roster)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Some(timeout) if timeout.is_zero() => {
                    // Deadline already due under a wall clock: rescan.
                    continue;
                }
                Some(timeout) => {
                    roster = core
                        .wake
                        .wait_timeout(roster, timeout)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0;
                }
            },
        }
    }
}
