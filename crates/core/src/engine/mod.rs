//! The serving layer of the model lifecycle: micro-batching inference
//! engines over trained discriminators, and the multi-model fleet that
//! scales them.
//!
//! The batch path ([`crate::Discriminator::predict_batch`]) is ~2.4× faster per
//! shot than the per-shot loop, but it wants shots *in bulk* — while a
//! control system (or a fleet of concurrent callers) produces them one at
//! a time. [`ReadoutEngine`] closes that gap the way production model
//! servers do: callers [`Session::submit`] individual shots from any
//! thread and get a [`Ticket`] back; a dedicated worker coalesces queued
//! shots until either `max_batch` is reached or the oldest submission has
//! waited `max_delay`, issues **one** `predict_batch` call for the whole
//! micro-batch, and resolves every ticket with its per-qubit verdict.
//! [`FleetEngine`] (in [`fleet`]) runs one such worker per model,
//! keyed by [`crate::DiscriminatorSpec`] fingerprint and lazily loaded
//! from the `MLR_MODEL_DIR` registry cache.
//!
//! Verdicts are identical to calling `predict_batch` directly — batching
//! only changes *when* shots are grouped, never the decision; the
//! workspace's tests pin this for arbitrary submission orders, thread
//! counts and model mixes. For plan-served families the worker's
//! `predict_batch` call executes the compiled single-pass inference plan
//! ([`crate::CompiledPlan`]), so the engine inherits the fused
//! standardize+head kernels for free.
//!
//! Three serving concerns layer on top of the micro-batcher:
//!
//! * **QoS** ([`Qos`]): each session carries a priority class; when the
//!   queue holds more than one flush's worth of work, realtime shots
//!   flush ahead of standard ahead of bulk.
//! * **Admission control** ([`Session::try_submit`]): instead of the
//!   blocking backpressure of [`Session::submit`], non-blocking
//!   submission sheds load with a typed [`Rejected`] verdict once the
//!   queue crosses the class's watermark ([`EngineConfig`]), so an
//!   overloaded worker degrades by refusing bulk work, not by stalling
//!   everyone.
//! * **Observability** ([`EngineStats`]): request/shed/latency counters
//!   per worker, surfaced by `mlr serve-stats` and summed fleet-wide.
//!
//! Time is injectable ([`Clock`]): production engines read a
//! [`WallClock`], tests drive flush deadlines with a [`ManualClock`] so
//! nothing races the real 200 µs window. Faults are injectable too
//! ([`fault::FaultyDiscriminator`]): a panicking, blocking or
//! wrong-shaped model fails its own tickets loudly — never hangs them —
//! and never touches another worker.
//!
//! # Examples
//!
//! ```no_run
//! use mlr_core::{registry, DiscriminatorSpec, EngineConfig, ReadoutEngine};
//! use mlr_sim::{ChipConfig, TraceDataset};
//!
//! let dataset = TraceDataset::generate(&ChipConfig::five_qubit_paper(), 3, 50, 7);
//! let split = dataset.paper_split(7);
//! let model = registry::fit(&DiscriminatorSpec::default(), &dataset, &split, 7);
//! let engine = ReadoutEngine::new(Box::new(model), EngineConfig::default());
//! let session = engine.session();
//! let ticket = session.submit(dataset.raw(0));
//! println!("verdict: {:?}", ticket.wait());
//! ```

mod clock;
pub mod fault;
pub mod fleet;
mod stats;

pub use clock::{Clock, ManualClock, WallClock};
pub use fleet::{FleetConfig, FleetEngine, FleetError, ModelServeStats};
pub use stats::EngineStats;

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;
use std::time::Duration;

use mlr_num::Complex;

use crate::spec::BoxedDiscriminator;
use stats::StatCells;

/// Locks a mutex, recovering from poisoning: every engine state
/// transition completes atomically under the guard, so state behind a
/// poisoned lock is still consistent (poisoning here only means some
/// *caller* panicked while holding it — e.g. a deliberate
/// submit-after-shutdown panic, or a waiter that panicked between lock
/// and wait).
fn lock_recovering<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-session priority class of the micro-batcher.
///
/// Priorities decide two things: flush order when the queue holds more
/// than one batch of work (realtime first), and the admission watermark
/// at which [`Session::try_submit`] starts shedding the class
/// ([`EngineConfig::watermark`] — bulk sheds earliest, realtime only when
/// the queue is full).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(usize)]
pub enum Qos {
    /// Feedback-latency-critical shots: flushed first, shed last.
    Realtime = 0,
    /// The default class.
    #[default]
    Standard = 1,
    /// Throughput-oriented background work: first to be shed under load.
    Bulk = 2,
}

impl Qos {
    /// Number of priority classes.
    pub const CLASSES: usize = 3;

    /// All classes, highest priority first.
    pub const ALL: [Qos; Qos::CLASSES] = [Qos::Realtime, Qos::Standard, Qos::Bulk];

    /// Lower-case class name (`realtime` / `standard` / `bulk`).
    pub fn name(self) -> &'static str {
        match self {
            Qos::Realtime => "realtime",
            Qos::Standard => "standard",
            Qos::Bulk => "bulk",
        }
    }
}

impl fmt::Display for Qos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Qos {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "realtime" => Ok(Qos::Realtime),
            "standard" => Ok(Qos::Standard),
            "bulk" => Ok(Qos::Bulk),
            other => Err(format!(
                "unknown QoS class '{other}' (expected realtime, standard or bulk)"
            )),
        }
    }
}

/// Micro-batching and admission policy of a [`ReadoutEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Flush as soon as this many shots are queued. 64 matches the batch
    /// kernels' sweet spot on the 5-qubit chip (see the
    /// `engine_throughput` bench).
    pub max_batch: usize,
    /// Flush when the oldest queued shot has waited this long (on the
    /// engine's [`Clock`]), so a lone shot is never stranded behind an
    /// empty queue.
    pub max_delay: Duration,
    /// Hard queue bound: [`Session::submit`] blocks (and
    /// [`Session::try_submit`] rejects with [`Rejected::QueueFull`])
    /// while this many shots are already queued. Bounds the engine's
    /// memory to `max_queue` traces and keeps the recycled trace buffers
    /// cache-resident (an unbounded queue measurably slows the inference
    /// it feeds — see the `engine_throughput` bench). Clamped up to at
    /// least `max_batch`.
    pub max_queue: usize,
    /// Admission watermark for [`Qos::Standard`] `try_submit`s: reject
    /// with [`Rejected::Shed`] once the queue depth reaches this.
    /// Clamped to `max_queue`.
    pub standard_watermark: usize,
    /// Admission watermark for [`Qos::Bulk`] `try_submit`s — lower than
    /// `standard_watermark`, so bulk load sheds first.
    pub bulk_watermark: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::with_queue(128)
    }
}

impl EngineConfig {
    /// The default policy scaled to a hard queue bound of `max_queue`:
    /// micro-batches of 64 (clamped to the queue), a 200 µs flush
    /// deadline, standard admission at 7/8 of the queue and bulk
    /// admission at half of it.
    pub fn with_queue(max_queue: usize) -> Self {
        let max_queue = max_queue.max(1);
        Self {
            max_batch: 64.min(max_queue),
            max_delay: Duration::from_micros(200),
            max_queue,
            standard_watermark: (max_queue - max_queue / 8).max(1),
            bulk_watermark: (max_queue / 2).max(1),
        }
    }

    /// Queue depth at which a [`Session::try_submit`] of class `qos` is
    /// shed: the class watermark, except realtime which is only refused
    /// by the full queue.
    pub fn watermark(&self, qos: Qos) -> usize {
        let cap = self.max_queue.max(self.max_batch);
        match qos {
            Qos::Realtime => cap,
            Qos::Standard => self.standard_watermark.min(cap),
            Qos::Bulk => self.bulk_watermark.min(cap),
        }
    }
}

/// Why [`Session::try_submit`] refused a shot — the typed load-shedding
/// verdicts of the admission controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The queue is at its hard [`EngineConfig::max_queue`] bound; even
    /// realtime work is refused rather than buffered without limit.
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// The queue crossed this class's admission watermark; higher-priority
    /// classes may still be admitted.
    Shed {
        /// The rejected class.
        qos: Qos,
        /// Queue depth at rejection time.
        depth: usize,
        /// The class's watermark ([`EngineConfig::watermark`]).
        watermark: usize,
    },
    /// The worker died classifying an earlier batch (model panic or
    /// wrong-shape output); this model serves nothing further.
    WorkerFailed,
    /// The engine is shutting down cleanly.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth } => write!(f, "queue full at depth {depth}"),
            Rejected::Shed {
                qos,
                depth,
                watermark,
            } => write!(
                f,
                "{qos} load shed at depth {depth} (watermark {watermark})"
            ),
            Rejected::WorkerFailed => write!(f, "worker failed"),
            Rejected::ShuttingDown => write!(f, "engine shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// The verdict for this shot was lost to a worker fault (the model
/// panicked or returned wrong-shaped output while classifying its
/// micro-batch). Returned by [`Ticket::outcome`] and the ticket's
/// [`Future`] impl; [`Ticket::wait`] panics instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TicketFailed;

impl fmt::Display for TicketFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "readout worker failed before this shot's micro-batch was classified"
        )
    }
}

impl std::error::Error for TicketFailed {}

/// One queued shot: the owned trace, the slot its verdict lands in, and
/// when it entered the queue (anchors the flush deadline and the latency
/// counters, on the engine's [`Clock`]).
struct Job {
    trace: Vec<Complex>,
    slot: Arc<TicketState>,
    submitted_at: Duration,
}

/// Shared resolution state behind a [`Ticket`].
struct TicketState {
    state: Mutex<TicketInner>,
    ready: Condvar,
}

impl TicketState {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(TicketInner {
                verdict: None,
                waiting: false,
                failed: false,
                waker: None,
            }),
            ready: Condvar::new(),
        })
    }

    /// Resolves the slot with a verdict, waking a blocked or async waiter.
    fn resolve(&self, verdict: Vec<usize>) {
        let (waiting, waker) = {
            let mut inner = lock_recovering(&self.state);
            inner.verdict = Some(verdict);
            (inner.waiting, inner.waker.take())
        };
        // The wake syscall is only worth it when the holder is (or is
        // about to be) blocked in `wait`; under bulk submission most
        // tickets are resolved before anyone waits on them.
        if waiting {
            self.ready.notify_all();
        }
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// Marks the slot failed (worker fault), waking any waiter so it can
    /// propagate instead of hanging.
    fn fail(&self) {
        let waker = {
            let mut inner = lock_recovering(&self.state);
            inner.failed = true;
            inner.waker.take()
        };
        self.ready.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

struct TicketInner {
    verdict: Option<Vec<usize>>,
    /// Whether the ticket holder is (about to be) blocked in [`Ticket::wait`];
    /// lets the resolver skip the wake syscall for tickets nobody is
    /// waiting on yet — the common case under bulk submission.
    waiting: bool,
    /// Set when the worker died (the model panicked or mis-shaped a
    /// batch) before this shot could be classified; waiters propagate
    /// instead of hanging.
    failed: bool,
    /// Waker of a task awaiting this ticket through its [`Future`] impl.
    waker: Option<Waker>,
}

/// A pending verdict for one submitted shot.
///
/// Resolves once the engine's worker has flushed the micro-batch
/// containing the shot. Consume it synchronously with [`Ticket::wait`] /
/// [`Ticket::outcome`], peek with [`Ticket::try_wait`], or `.await` it —
/// a ticket is a [`Future`] (its condvar slot doubles as the waker slot),
/// which is what the fleet's async front end builds on.
pub struct Ticket {
    slot: Arc<TicketState>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = lock_recovering(&self.slot.state);
        f.debug_struct("Ticket")
            .field("resolved", &inner.verdict.is_some())
            .field("failed", &inner.failed)
            .finish()
    }
}

impl Ticket {
    /// Blocks until the verdict is available and returns the per-qubit
    /// level decisions, in qubit order.
    ///
    /// # Panics
    ///
    /// Panics if the engine's worker died (the model panicked) before
    /// this shot's micro-batch was classified — the verdict will never
    /// arrive, and hanging forever would hide the failure. Use
    /// [`Ticket::outcome`] to handle that case as a value instead.
    pub fn wait(self) -> Vec<usize> {
        match self.outcome() {
            Ok(verdict) => verdict,
            // Panic with no lock held: a panicking waiter must not
            // poison state shared with sibling tickets or the worker.
            Err(TicketFailed) => {
                panic!("ReadoutEngine worker panicked; this shot's verdict was lost")
            }
        }
    }

    /// Blocks until the shot is classified (`Ok`) or its worker fails
    /// (`Err`), never panicking: the non-blocking-policy twin of
    /// [`Ticket::wait`].
    pub fn outcome(self) -> Result<Vec<usize>, TicketFailed> {
        let mut guard = lock_recovering(&self.slot.state);
        loop {
            if let Some(verdict) = guard.verdict.take() {
                return Ok(verdict);
            }
            if guard.failed {
                // Surface the failure outside the lock (see `wait`).
                drop(guard);
                return Err(TicketFailed);
            }
            guard.waiting = true;
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Returns a copy of the verdict if it is already available, without
    /// blocking or consuming it — [`Ticket::wait`] still works afterwards.
    pub fn try_wait(&self) -> Option<Vec<usize>> {
        lock_recovering(&self.slot.state).verdict.clone()
    }
}

impl Future for Ticket {
    type Output = Result<Vec<usize>, TicketFailed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = lock_recovering(&self.slot.state);
        if let Some(verdict) = inner.verdict.take() {
            return Poll::Ready(Ok(verdict));
        }
        if inner.failed {
            return Poll::Ready(Err(TicketFailed));
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Submission queue shared between sessions and the worker.
struct Shared {
    queue: Mutex<Queue>,
    /// Signals the worker: new work or shutdown. `Arc` so a
    /// [`ManualClock`] can subscribe it for deterministic deadline wakes.
    wake: Arc<Condvar>,
    /// Signals submitters blocked on the [`EngineConfig::max_queue`]
    /// backpressure bound: space freed or shutdown.
    space: Condvar,
    /// The engine's time source (flush deadlines, latency counters).
    clock: Arc<dyn Clock>,
    /// Serving counters, updated lock-free on the submit/resolve paths.
    stats: StatCells,
    /// The batching policy, mirrored out of the config so submitters know
    /// when a notify is worth a syscall and what each class's admission
    /// watermark is.
    config: EngineConfig,
}

struct Queue {
    /// One FIFO lane per [`Qos`] class, drained highest priority first.
    lanes: [VecDeque<Job>; Qos::CLASSES],
    /// Total queued jobs across lanes.
    len: usize,
    /// Recycled trace buffers: flushed jobs return their `Vec<Complex>`
    /// here and submissions refill from it, so a busy engine stops
    /// touching the allocator (and keeps its working set at roughly one
    /// micro-batch of traces instead of one per queued shot — cache
    /// pressure directly measurable in the `engine_throughput` bench).
    spare_buffers: Vec<Vec<Complex>>,
    closed: bool,
    /// `closed` because the worker died (model fault), not a clean
    /// shutdown — distinguishes [`Rejected::WorkerFailed`] from
    /// [`Rejected::ShuttingDown`].
    failed: bool,
}

impl Queue {
    /// Submission timestamp of the oldest queued job across all lanes
    /// (the flush-deadline anchor).
    fn oldest_submission(&self) -> Option<Duration> {
        self.lanes
            .iter()
            .filter_map(|lane| lane.front().map(|job| job.submitted_at))
            .min()
    }

    /// Drains up to `max` jobs, highest-priority lanes first, FIFO within
    /// a lane.
    fn drain_batch(&mut self, max: usize) -> Vec<Job> {
        let mut batch = Vec::with_capacity(max.min(self.len));
        for lane in &mut self.lanes {
            while batch.len() < max {
                match lane.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }
        self.len -= batch.len();
        batch
    }
}

/// A cloneable handle for submitting shots to a [`ReadoutEngine`] from any
/// thread, carrying its [`Qos`] class.
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    qos: Qos,
}

impl Session {
    /// This session's priority class.
    pub fn qos(&self) -> Qos {
        self.qos
    }

    /// Enqueues one raw multiplexed trace for classification; the returned
    /// [`Ticket`] resolves to the per-qubit verdict once the micro-batch
    /// containing it is flushed.
    ///
    /// This is the *cooperative backpressure* path: it blocks while the
    /// queue is at [`EngineConfig::max_queue`], bypassing the admission
    /// watermarks. Use [`Session::try_submit`] for the non-blocking,
    /// load-shedding path.
    ///
    /// The trace is copied into the engine (submission outlives the
    /// caller's borrow).
    ///
    /// # Panics
    ///
    /// Panics if the engine has shut down (the [`ReadoutEngine`] was
    /// dropped while this session survived it, or its worker died).
    pub fn submit(&self, raw: &[Complex]) -> Ticket {
        let slot = TicketState::new();
        let must_wake = {
            let mut queue = lock_recovering(&self.shared.queue);
            // Backpressure: wait for queue space rather than buffering
            // without bound (see `EngineConfig::max_queue`).
            while queue.len >= self.shared.config.max_queue && !queue.closed {
                queue = self
                    .shared
                    .space
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            assert!(!queue.closed, "submit on a shut-down ReadoutEngine");
            self.enqueue(&mut queue, raw, &slot)
        };
        if must_wake {
            self.shared.wake.notify_one();
        }
        Ticket { slot }
    }

    /// Non-blocking admission-controlled submission: enqueues the trace
    /// if this session's class is below its watermark
    /// ([`EngineConfig::watermark`]), otherwise sheds it with a typed
    /// [`Rejected`] verdict. Never blocks, never panics — the fleet
    /// front door.
    ///
    /// # Errors
    ///
    /// [`Rejected`] describes why the shot was refused; the caller can
    /// retry later, downgrade, or drop the work.
    pub fn try_submit(&self, raw: &[Complex]) -> Result<Ticket, Rejected> {
        let slot = TicketState::new();
        let must_wake = {
            let mut queue = lock_recovering(&self.shared.queue);
            if queue.closed {
                self.shared.stats.record_rejected_closed();
                return Err(if queue.failed {
                    Rejected::WorkerFailed
                } else {
                    Rejected::ShuttingDown
                });
            }
            let depth = queue.len;
            let watermark = self.shared.config.watermark(self.qos);
            if depth >= watermark {
                self.shared.stats.record_shed(self.qos);
                return Err(if depth >= self.shared.config.max_queue {
                    Rejected::QueueFull { depth }
                } else {
                    Rejected::Shed {
                        qos: self.qos,
                        depth,
                        watermark,
                    }
                });
            }
            self.enqueue(&mut queue, raw, &slot)
        };
        if must_wake {
            self.shared.wake.notify_one();
        }
        Ok(Ticket { slot })
    }

    /// Pushes the job into this session's lane; returns whether the
    /// worker needs a wake.
    fn enqueue(&self, queue: &mut Queue, raw: &[Complex], slot: &Arc<TicketState>) -> bool {
        let mut trace = queue.spare_buffers.pop().unwrap_or_default();
        trace.clear();
        trace.extend_from_slice(raw);
        queue.lanes[self.qos as usize].push_back(Job {
            trace,
            slot: Arc::clone(slot),
            submitted_at: self.shared.clock.now(),
        });
        queue.len += 1;
        self.shared.stats.record_submit(self.qos, queue.len);
        // Wake the worker only on the transitions it can act on: the
        // queue becoming non-empty (it may be idle-waiting) or
        // crossing the flush size (it may be deadline-waiting; it
        // never waits with a full batch queued, so the == transition
        // is hit exactly once per flush). Anything else would wake it
        // just to go back to sleep — on a busy engine that is one
        // context switch per shot, and it dominates serving overhead.
        queue.len == 1 || queue.len == self.shared.config.max_batch
    }
}

/// The micro-batching serving front door; see the [module docs](self).
///
/// Owns the trained model (any [`crate::Discriminator`], typically a
/// [`crate::TrainedModel`] from the registry) and one worker thread.
/// Dropping the engine flushes the remaining queue and joins the worker;
/// outstanding tickets still resolve.
pub struct ReadoutEngine {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    config: EngineConfig,
}

impl ReadoutEngine {
    /// Spawns the engine's worker around a trained model, timed by the
    /// production [`WallClock`].
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.max_queue` is zero.
    pub fn new(model: BoxedDiscriminator, config: EngineConfig) -> Self {
        Self::with_clock(model, config, Arc::new(WallClock::new()))
    }

    /// [`ReadoutEngine::new`] with an injected time source — a
    /// [`ManualClock`] makes every flush deadline deterministic in tests.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.max_queue` is zero.
    pub fn with_clock(
        model: BoxedDiscriminator,
        mut config: EngineConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.max_queue > 0, "max_queue must be positive");
        config.max_queue = config.max_queue.max(config.max_batch);
        let wake = Arc::new(Condvar::new());
        clock.subscribe(&wake);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                lanes: std::array::from_fn(|_| VecDeque::new()),
                len: 0,
                spare_buffers: Vec::new(),
                closed: false,
                failed: false,
            }),
            wake,
            space: Condvar::new(),
            clock,
            stats: StatCells::default(),
            config,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("mlr-readout-engine".to_owned())
            .spawn(move || worker_loop(model, &worker_shared, config))
            .expect("spawn engine worker");
        Self {
            shared,
            worker: Some(worker),
            config,
        }
    }

    /// The engine's batching policy (after clamping).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Opens a [`Qos::Standard`] submission handle; sessions are cheap to
    /// clone and safe to use from many threads at once.
    pub fn session(&self) -> Session {
        self.session_with(Qos::Standard)
    }

    /// Opens a submission handle with an explicit priority class.
    pub fn session_with(&self, qos: Qos) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
            qos,
        }
    }

    /// A snapshot of this worker's serving counters.
    pub fn stats(&self) -> EngineStats {
        self.shared.stats.snapshot()
    }

    /// Whether the worker died to a model fault (every subsequent
    /// submission is refused; outstanding tickets were failed loudly).
    pub fn is_failed(&self) -> bool {
        lock_recovering(&self.shared.queue).failed
    }

    /// Convenience: submit a batch of shots through one session and wait
    /// for all verdicts, in input order.
    pub fn classify_all(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        let session = self.session();
        let tickets: Vec<Ticket> = shots.iter().map(|raw| session.submit(raw)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }
}

impl Drop for ReadoutEngine {
    fn drop(&mut self) {
        {
            let mut queue = lock_recovering(&self.shared.queue);
            queue.closed = true;
        }
        self.shared.wake.notify_all();
        self.shared.space.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The worker: wait for work, coalesce a micro-batch (up to `max_batch`
/// shots or `max_delay` past the oldest submission, on the engine's
/// [`Clock`]), classify it in one `predict_batch` call, resolve the
/// tickets; on shutdown drain whatever is queued. A model fault — a panic
/// *or* a wrong-shape output (batch or per-shot verdict length mismatch)
/// — fails all outstanding tickets loudly and closes the engine (see the
/// fault-injection tests).
fn worker_loop(model: BoxedDiscriminator, shared: &Shared, config: EngineConfig) {
    let n_qubits = model.n_qubits();
    loop {
        let batch = {
            let mut queue = lock_recovering(&shared.queue);
            // Phase 1: sleep until there is at least one job (or shutdown).
            while queue.len == 0 && !queue.closed {
                queue = shared
                    .wake
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if queue.len == 0 && queue.closed {
                return;
            }
            // Phase 2: the oldest job's *submission* starts the flush
            // clock (so a shot queued while the previous batch was being
            // classified does not have its wait restarted); top the batch
            // up until it is full, the deadline passes, or shutdown.
            while queue.len < config.max_batch && !queue.closed {
                let deadline =
                    queue.oldest_submission().expect("nonempty queue") + config.max_delay;
                if shared.clock.now() >= deadline {
                    break;
                }
                queue = match shared.clock.timeout_until(deadline) {
                    // Manual clock: untimed wait — new work, shutdown or
                    // a clock advance are the only wake sources, so the
                    // deadline re-check races nothing.
                    None => shared
                        .wake
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                    Some(timeout) => {
                        let (guard, _timeout) = shared
                            .wake
                            .wait_timeout(queue, timeout)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        guard
                    }
                };
            }
            queue.drain_batch(config.max_batch)
        };

        let shots: Vec<&[Complex]> = batch.iter().map(|job| job.trace.as_slice()).collect();
        let verdicts =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.predict_batch(&shots)));
        drop(shots);
        // A panic and a wrong-shape output are the same fault: this
        // model can no longer be trusted to resolve tickets.
        let verdicts = match verdicts {
            Ok(verdicts)
                if verdicts.len() == batch.len()
                    && verdicts.iter().all(|v| v.len() == n_qubits) =>
            {
                verdicts
            }
            _ => {
                // Fail loudly instead of hanging: mark every outstanding
                // ticket failed, close the engine, and wake everyone —
                // waiters see the failure, submitters are refused.
                let queued = {
                    let mut queue = lock_recovering(&shared.queue);
                    queue.closed = true;
                    queue.failed = true;
                    queue.len = 0;
                    std::mem::replace(&mut queue.lanes, std::array::from_fn(|_| VecDeque::new()))
                };
                // Count before waking anyone: a waiter that sees its
                // ticket fail must already find the failure in the stats.
                let jobs: Vec<Job> = batch
                    .into_iter()
                    .chain(queued.into_iter().flatten())
                    .collect();
                shared.stats.record_failed(jobs.len());
                for job in jobs {
                    job.slot.fail();
                }
                shared.wake.notify_all();
                shared.space.notify_all();
                return;
            }
        };
        shared.stats.record_flush(batch.len());
        let resolved_at = shared.clock.now();
        let mut buffers = Vec::with_capacity(batch.len());
        for (job, verdict) in batch.into_iter().zip(verdicts) {
            // Stats before the wake: a caller returning from `wait` must
            // already see its own completion counted.
            shared
                .stats
                .record_completed(resolved_at.saturating_sub(job.submitted_at));
            job.slot.resolve(verdict);
            buffers.push(job.trace);
        }
        // Hand the flushed traces back to the submission pool (bounded at
        // the queue depth so an idle engine does not pin memory) and let
        // backpressured submitters move up.
        {
            let mut queue = lock_recovering(&shared.queue);
            let cap = config.max_queue;
            while queue.spare_buffers.len() < cap {
                match buffers.pop() {
                    Some(buf) => queue.spare_buffers.push(buf),
                    None => break,
                }
            }
        }
        shared.space.notify_all();
    }
}

#[cfg(test)]
mod tests;
