//! The serving layer of the model lifecycle: micro-batching inference
//! engines over trained discriminators, and the multi-model fleet that
//! scales them.
//!
//! The batch path ([`crate::Discriminator::predict_batch`]) is ~2.4× faster per
//! shot than the per-shot loop, but it wants shots *in bulk* — while a
//! control system (or a fleet of concurrent callers) produces them one at
//! a time. [`ReadoutEngine`] closes that gap the way production model
//! servers do: callers [`Session::submit`] individual shots from any
//! thread and get a [`Ticket`] back; a worker coalesces queued shots
//! until either `max_batch` is reached or the oldest submission has
//! waited `max_delay`, issues **one** `predict_batch` call for the whole
//! micro-batch, and resolves every ticket with its per-qubit verdict.
//!
//! When the caller already holds a *window* of shots — a feedline's worth
//! of multiplexed readout, not one shot at a time — [`Session::submit_all`]
//! enqueues the whole window under **one** lock acquisition and one wake
//! and returns a [`BatchTicket`] that resolves to every verdict in
//! submission order ([`Session::try_submit_all`] is its non-blocking,
//! partial-shedding twin). Vectored submission collapses the per-ticket
//! lock/wake overhead that otherwise caps cheap plan-fused tenants.
//!
//! Workers live in a shared `pool`: a bounded set of threads drains
//! every tenant's queue — lane-priority within a tenant, round-robin
//! across tenants — so [`FleetEngine`] (in [`fleet`]) serves many models
//! from `MLR_FLEET_WORKERS` threads instead of one thread per model,
//! merging all sessions of the same fingerprint into one `predict_batch`
//! call. A [`ReadoutEngine`] is simply a pool of one thread over one
//! tenant.
//!
//! Verdicts are identical to calling `predict_batch` directly — batching
//! only changes *when* shots are grouped, never the decision; the
//! workspace's tests pin this for arbitrary submission orders, thread
//! counts, window sizes and model mixes. For plan-served families the
//! worker's `predict_batch` call executes the compiled single-pass
//! inference plan ([`crate::CompiledPlan`]), so the engine inherits the
//! fused standardize+head kernels for free.
//!
//! Three serving concerns layer on top of the micro-batcher:
//!
//! * **QoS** ([`Qos`]): each session carries a priority class; when the
//!   queue holds more than one flush's worth of work, realtime shots
//!   flush ahead of standard ahead of bulk.
//! * **Admission control** ([`Session::try_submit`]): instead of the
//!   blocking backpressure of [`Session::submit`], non-blocking
//!   submission sheds load with a typed [`Rejected`] verdict once the
//!   queue crosses the class's watermark ([`EngineConfig`]), so an
//!   overloaded worker degrades by refusing bulk work, not by stalling
//!   everyone. [`Session::try_submit_all`] admits the window prefix that
//!   fits and sheds the rest with a typed [`PartialShed`].
//! * **Observability** ([`EngineStats`]): request/shed/latency counters
//!   per worker, surfaced by `mlr serve-stats` and summed fleet-wide.
//!
//! Time is injectable ([`Clock`]): production engines read a
//! [`WallClock`], tests drive flush deadlines with a [`ManualClock`] so
//! nothing races the real 200 µs window. Faults are injectable too
//! ([`fault::FaultyDiscriminator`]): a panicking, blocking or
//! wrong-shaped model fails its own tickets loudly — never hangs them —
//! and never touches another worker.
//!
//! # Examples
//!
//! ```no_run
//! use mlr_core::{registry, DiscriminatorSpec, EngineConfig, ReadoutEngine};
//! use mlr_sim::{ChipConfig, TraceDataset};
//!
//! let dataset = TraceDataset::generate(&ChipConfig::five_qubit_paper(), 3, 50, 7);
//! let split = dataset.paper_split(7);
//! let model = registry::fit(&DiscriminatorSpec::default(), &dataset, &split, 7);
//! let engine = ReadoutEngine::new(Box::new(model), EngineConfig::default());
//! let session = engine.session();
//! let ticket = session.submit(dataset.raw(0));
//! println!("verdict: {:?}", ticket.wait());
//! ```

mod clock;
pub mod fault;
pub mod fleet;
mod pool;
mod stats;

pub use clock::{Clock, ManualClock, WallClock};
pub use fleet::{
    EvictPolicy, EvictionCandidate, FleetConfig, FleetEngine, FleetError, ModelServeStats,
};
pub use stats::EngineStats;

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use mlr_num::Complex;

use crate::spec::BoxedDiscriminator;
use pool::{PoolCore, WorkerPool};
use stats::StatCells;

/// Locks a mutex, recovering from poisoning: every engine state
/// transition completes atomically under the guard, so state behind a
/// poisoned lock is still consistent (poisoning here only means some
/// *caller* panicked while holding it — e.g. a deliberate
/// submit-after-shutdown panic, or a waiter that panicked between lock
/// and wait).
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-session priority class of the micro-batcher.
///
/// Priorities decide two things: flush order when the queue holds more
/// than one batch of work (realtime first), and the admission watermark
/// at which [`Session::try_submit`] starts shedding the class
/// ([`EngineConfig::watermark`] — bulk sheds earliest, realtime only when
/// the queue is full).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(usize)]
pub enum Qos {
    /// Feedback-latency-critical shots: flushed first, shed last.
    Realtime = 0,
    /// The default class.
    #[default]
    Standard = 1,
    /// Throughput-oriented background work: first to be shed under load.
    Bulk = 2,
}

impl Qos {
    /// Number of priority classes.
    pub const CLASSES: usize = 3;

    /// All classes, highest priority first.
    pub const ALL: [Qos; Qos::CLASSES] = [Qos::Realtime, Qos::Standard, Qos::Bulk];

    /// Lower-case class name (`realtime` / `standard` / `bulk`).
    pub fn name(self) -> &'static str {
        match self {
            Qos::Realtime => "realtime",
            Qos::Standard => "standard",
            Qos::Bulk => "bulk",
        }
    }
}

impl fmt::Display for Qos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Qos {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "realtime" => Ok(Qos::Realtime),
            "standard" => Ok(Qos::Standard),
            "bulk" => Ok(Qos::Bulk),
            other => Err(format!(
                "unknown QoS class '{other}' (expected realtime, standard or bulk)"
            )),
        }
    }
}

/// Micro-batching and admission policy of a [`ReadoutEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Flush as soon as this many shots are queued. 64 matches the batch
    /// kernels' sweet spot on the 5-qubit chip (see the
    /// `engine_throughput` bench).
    pub max_batch: usize,
    /// Flush when the oldest queued shot has waited this long (on the
    /// engine's [`Clock`]), so a lone shot is never stranded behind an
    /// empty queue.
    pub max_delay: Duration,
    /// Hard queue bound: [`Session::submit`] blocks (and
    /// [`Session::try_submit`] rejects with [`Rejected::QueueFull`])
    /// while this many shots are already queued. Bounds the engine's
    /// memory to `max_queue` traces and keeps the recycled trace buffers
    /// cache-resident (an unbounded queue measurably slows the inference
    /// it feeds — see the `engine_throughput` bench). Clamped up to at
    /// least `max_batch`.
    pub max_queue: usize,
    /// Admission watermark for [`Qos::Standard`] `try_submit`s: reject
    /// with [`Rejected::Shed`] once the queue depth reaches this.
    /// Clamped to `max_queue`.
    pub standard_watermark: usize,
    /// Admission watermark for [`Qos::Bulk`] `try_submit`s — lower than
    /// `standard_watermark`, so bulk load sheds first.
    pub bulk_watermark: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::with_queue(128)
    }
}

impl EngineConfig {
    /// The default policy scaled to a hard queue bound of `max_queue`:
    /// micro-batches of 64 (clamped to the queue), a 200 µs flush
    /// deadline, standard admission at 7/8 of the queue and bulk
    /// admission at half of it.
    pub fn with_queue(max_queue: usize) -> Self {
        let max_queue = max_queue.max(1);
        Self {
            max_batch: 64.min(max_queue),
            max_delay: Duration::from_micros(200),
            max_queue,
            standard_watermark: (max_queue - max_queue / 8).max(1),
            bulk_watermark: (max_queue / 2).max(1),
        }
    }

    /// Queue depth at which a [`Session::try_submit`] of class `qos` is
    /// shed: the class watermark, except realtime which is only refused
    /// by the full queue.
    pub fn watermark(&self, qos: Qos) -> usize {
        let cap = self.max_queue.max(self.max_batch);
        match qos {
            Qos::Realtime => cap,
            Qos::Standard => self.standard_watermark.min(cap),
            Qos::Bulk => self.bulk_watermark.min(cap),
        }
    }
}

/// Why [`Session::try_submit`] refused a shot — the typed load-shedding
/// verdicts of the admission controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The queue is at its hard [`EngineConfig::max_queue`] bound; even
    /// realtime work is refused rather than buffered without limit.
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// The queue crossed this class's admission watermark; higher-priority
    /// classes may still be admitted.
    Shed {
        /// The rejected class.
        qos: Qos,
        /// Queue depth at rejection time.
        depth: usize,
        /// The class's watermark ([`EngineConfig::watermark`]).
        watermark: usize,
    },
    /// The worker died classifying an earlier batch (model panic or
    /// wrong-shape output); this model serves nothing further.
    WorkerFailed,
    /// The engine is shutting down cleanly.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth } => write!(f, "queue full at depth {depth}"),
            Rejected::Shed {
                qos,
                depth,
                watermark,
            } => write!(
                f,
                "{qos} load shed at depth {depth} (watermark {watermark})"
            ),
            Rejected::WorkerFailed => write!(f, "worker failed"),
            Rejected::ShuttingDown => write!(f, "engine shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// The verdict for this shot was lost to a worker fault (the model
/// panicked or returned wrong-shaped output while classifying its
/// micro-batch). Returned by [`Ticket::outcome`] and the ticket's
/// [`Future`] impl; [`Ticket::wait`] panics instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TicketFailed;

impl fmt::Display for TicketFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "readout worker failed before this shot's micro-batch was classified"
        )
    }
}

impl std::error::Error for TicketFailed {}

/// One queued shot: its sample storage, the slot its verdict lands in,
/// and when it entered the queue (anchors the flush deadline and the
/// latency counters, on the engine's [`Clock`]).
pub(crate) struct Job {
    trace: TraceBuf,
    slot: VerdictSlot,
    submitted_at: Duration,
}

/// A queued shot's sample storage. Scalar and borrowed-window submission
/// copy the caller's slice into an engine-owned (recycled) buffer; the
/// `*_shared` vectored paths enqueue an [`Arc`] clone of caller-owned
/// storage instead — for fast plan-fused models the 4 KB-per-shot copy
/// *is* the serving overhead, and sharing removes it.
pub(crate) enum TraceBuf {
    Owned(Vec<Complex>),
    Shared(Arc<[Complex]>),
}

impl TraceBuf {
    fn as_slice(&self) -> &[Complex] {
        match self {
            TraceBuf::Owned(trace) => trace,
            TraceBuf::Shared(trace) => trace,
        }
    }
}

/// Where a flushed job's verdict lands: a scalar [`Ticket`] slot, or one
/// index of a vectored [`BatchTicket`] window.
enum VerdictSlot {
    Single(Arc<TicketState>),
    Window {
        batch: Arc<BatchState>,
        index: usize,
    },
}

impl VerdictSlot {
    fn fail(&self) {
        match self {
            VerdictSlot::Single(slot) => slot.fail(),
            VerdictSlot::Window { batch, .. } => batch.fail(),
        }
    }
}

/// Shared resolution state behind a [`Ticket`].
struct TicketState {
    state: Mutex<TicketInner>,
    ready: Condvar,
}

impl TicketState {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(TicketInner {
                verdict: None,
                waiting: false,
                failed: false,
                waker: None,
            }),
            ready: Condvar::new(),
        })
    }

    /// Resolves the slot with a verdict, waking a blocked or async waiter.
    fn resolve(&self, verdict: Vec<usize>) {
        let (waiting, waker) = {
            let mut inner = lock_recovering(&self.state);
            inner.verdict = Some(verdict);
            (inner.waiting, inner.waker.take())
        };
        // The wake syscall is only worth it when the holder is (or is
        // about to be) blocked in `wait`; under bulk submission most
        // tickets are resolved before anyone waits on them.
        if waiting {
            self.ready.notify_all();
        }
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// Marks the slot failed (worker fault), waking any waiter so it can
    /// propagate instead of hanging.
    fn fail(&self) {
        let waker = {
            let mut inner = lock_recovering(&self.state);
            inner.failed = true;
            inner.waker.take()
        };
        self.ready.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

struct TicketInner {
    verdict: Option<Vec<usize>>,
    /// Whether the ticket holder is (about to be) blocked in [`Ticket::wait`];
    /// lets the resolver skip the wake syscall for tickets nobody is
    /// waiting on yet — the common case under bulk submission.
    waiting: bool,
    /// Set when the worker died (the model panicked or mis-shaped a
    /// batch) before this shot could be classified; waiters propagate
    /// instead of hanging.
    failed: bool,
    /// Waker of a task awaiting this ticket through its [`Future`] impl.
    waker: Option<Waker>,
}

/// A pending verdict for one submitted shot.
///
/// Resolves once the engine's worker has flushed the micro-batch
/// containing the shot. Consume it synchronously with [`Ticket::wait`] /
/// [`Ticket::outcome`], peek with [`Ticket::try_wait`], or `.await` it —
/// a ticket is a [`Future`] (its condvar slot doubles as the waker slot),
/// which is what the fleet's async front end builds on.
pub struct Ticket {
    slot: Arc<TicketState>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = lock_recovering(&self.slot.state);
        f.debug_struct("Ticket")
            .field("resolved", &inner.verdict.is_some())
            .field("failed", &inner.failed)
            .finish()
    }
}

impl Ticket {
    /// Blocks until the verdict is available and returns the per-qubit
    /// level decisions, in qubit order.
    ///
    /// # Panics
    ///
    /// Panics if the engine's worker died (the model panicked) before
    /// this shot's micro-batch was classified — the verdict will never
    /// arrive, and hanging forever would hide the failure. Use
    /// [`Ticket::outcome`] to handle that case as a value instead.
    pub fn wait(self) -> Vec<usize> {
        match self.outcome() {
            Ok(verdict) => verdict,
            // Panic with no lock held: a panicking waiter must not
            // poison state shared with sibling tickets or the worker.
            Err(TicketFailed) => {
                panic!("ReadoutEngine worker panicked; this shot's verdict was lost")
            }
        }
    }

    /// Blocks until the shot is classified (`Ok`) or its worker fails
    /// (`Err`), never panicking: the non-blocking-policy twin of
    /// [`Ticket::wait`].
    pub fn outcome(self) -> Result<Vec<usize>, TicketFailed> {
        let mut guard = lock_recovering(&self.slot.state);
        loop {
            if let Some(verdict) = guard.verdict.take() {
                return Ok(verdict);
            }
            if guard.failed {
                // Surface the failure outside the lock (see `wait`).
                drop(guard);
                return Err(TicketFailed);
            }
            guard.waiting = true;
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Returns a copy of the verdict if it is already available, without
    /// blocking or consuming it — [`Ticket::wait`] still works afterwards.
    pub fn try_wait(&self) -> Option<Vec<usize>> {
        lock_recovering(&self.slot.state).verdict.clone()
    }
}

impl Future for Ticket {
    type Output = Result<Vec<usize>, TicketFailed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = lock_recovering(&self.slot.state);
        if let Some(verdict) = inner.verdict.take() {
            return Poll::Ready(Ok(verdict));
        }
        if inner.failed {
            return Poll::Ready(Err(TicketFailed));
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Shared resolution state behind a [`BatchTicket`]: one slot per shot of
/// the window, a remaining-count, and one condvar/waker for the whole
/// window.
struct BatchState {
    state: Mutex<BatchInner>,
    ready: Condvar,
}

struct BatchInner {
    /// Per-shot verdicts, indexed by submission order within the window.
    verdicts: Vec<Option<Vec<usize>>>,
    /// Unresolved slots; the window completes when this reaches zero.
    remaining: usize,
    /// A worker fault hit (at least) one shot of the window: the whole
    /// window's verdict set is unusable, so the ticket fails as a unit.
    failed: bool,
    /// Whether the holder is (about to be) blocked in [`BatchTicket::wait`].
    waiting: bool,
    /// Waker of a task awaiting the window through its [`Future`] impl.
    waker: Option<Waker>,
}

impl BatchState {
    fn new(len: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(BatchInner {
                verdicts: vec![None; len],
                remaining: len,
                failed: false,
                waiting: false,
                waker: None,
            }),
            ready: Condvar::new(),
        })
    }

    /// Lands a whole run of verdicts from one flush under a single lock
    /// acquisition — a 64-shot flush of one window pays one lock on the
    /// resolve path, not 64 — and wakes the holder only when the last
    /// slot fills: one wake per window, not per shot.
    fn resolve_many(&self, run: Vec<(usize, Vec<usize>)>) {
        let (done, waiting, waker) = {
            let mut inner = lock_recovering(&self.state);
            for (index, verdict) in run {
                if inner.verdicts[index].is_none() {
                    inner.remaining -= 1;
                }
                inner.verdicts[index] = Some(verdict);
            }
            let done = inner.remaining == 0;
            let waker = if done { inner.waker.take() } else { None };
            (done, inner.waiting, waker)
        };
        if done {
            if waiting {
                self.ready.notify_all();
            }
            if let Some(waker) = waker {
                waker.wake();
            }
        }
    }

    /// Fails the whole window (worker fault on any of its shots), waking
    /// waiters immediately.
    fn fail(&self) {
        let waker = {
            let mut inner = lock_recovering(&self.state);
            inner.failed = true;
            inner.waker.take()
        };
        self.ready.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// The pending verdicts for one vectored window submitted with
/// [`Session::submit_all`] / [`Session::try_submit_all`].
///
/// Resolves once every shot of the window has been classified — the
/// verdicts come back in submission order regardless of how the worker
/// grouped the window into micro-batches. Like [`Ticket`], it is also a
/// [`Future`]. If a worker fault hits *any* shot of the window, the whole
/// ticket fails ([`TicketFailed`]): a partially-classified window is not
/// a usable readout result.
pub struct BatchTicket {
    slot: Arc<BatchState>,
}

impl fmt::Debug for BatchTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = lock_recovering(&self.slot.state);
        f.debug_struct("BatchTicket")
            .field("len", &inner.verdicts.len())
            .field("pending", &inner.remaining)
            .field("failed", &inner.failed)
            .finish()
    }
}

impl BatchTicket {
    /// Number of shots in the window.
    pub fn len(&self) -> usize {
        lock_recovering(&self.slot.state).verdicts.len()
    }

    /// Whether the window holds no shots (an empty window resolves
    /// immediately).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shots of the window still awaiting a verdict.
    pub fn pending(&self) -> usize {
        lock_recovering(&self.slot.state).remaining
    }

    /// Blocks until every shot of the window is classified and returns
    /// the per-shot verdicts in submission order.
    ///
    /// # Panics
    ///
    /// Panics if the worker died before the window completed (see
    /// [`Ticket::wait`]); use [`BatchTicket::outcome`] to handle the
    /// failure as a value.
    pub fn wait(self) -> Vec<Vec<usize>> {
        match self.outcome() {
            Ok(verdicts) => verdicts,
            Err(TicketFailed) => {
                panic!("ReadoutEngine worker panicked; this window's verdicts were lost")
            }
        }
    }

    /// Blocks until the window completes (`Ok`, verdicts in submission
    /// order) or its worker fails (`Err`), never panicking.
    pub fn outcome(self) -> Result<Vec<Vec<usize>>, TicketFailed> {
        let mut guard = lock_recovering(&self.slot.state);
        loop {
            if guard.failed {
                drop(guard);
                return Err(TicketFailed);
            }
            if guard.remaining == 0 {
                let verdicts = guard
                    .verdicts
                    .iter_mut()
                    .map(|slot| slot.take().unwrap_or_default())
                    .collect();
                return Ok(verdicts);
            }
            guard.waiting = true;
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Future for BatchTicket {
    type Output = Result<Vec<Vec<usize>>, TicketFailed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = lock_recovering(&self.slot.state);
        if inner.failed {
            return Poll::Ready(Err(TicketFailed));
        }
        if inner.remaining == 0 {
            let verdicts = inner
                .verdicts
                .iter_mut()
                .map(|slot| slot.take().unwrap_or_default())
                .collect();
            return Poll::Ready(Ok(verdicts));
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// What [`Session::try_submit_all`] did with a window it could not admit
/// in full: the prefix that fit (if any) and the typed reason the first
/// refused shot was shed.
#[derive(Debug)]
pub struct PartialShed {
    /// Ticket covering the admitted window *prefix*, in submission order;
    /// `None` when the queue had no room for even one shot.
    pub admitted: Option<BatchTicket>,
    /// Shots admitted (the prefix length; the rest of the window was
    /// shed).
    pub admitted_count: usize,
    /// Why the first refused shot was shed — the same typed verdicts as
    /// [`Session::try_submit`].
    pub reason: Rejected,
}

/// One tenant of the worker [`pool`]: a model, its lane-prioritised
/// submission queue, and its serving counters. A [`ReadoutEngine`] owns
/// exactly one; a [`FleetEngine`] keeps one per fingerprint.
pub(crate) struct Tenant {
    queue: Mutex<Queue>,
    /// Signals submitters blocked on the [`EngineConfig::max_queue`]
    /// backpressure bound: space freed or shutdown.
    space: Condvar,
    /// The engine's time source (flush deadlines, latency counters).
    clock: Arc<dyn Clock>,
    /// Serving counters, updated lock-free on the submit/resolve paths.
    stats: StatCells,
    /// The batching policy (clamped: `max_queue >= max_batch`).
    config: EngineConfig,
    /// The served model. [`crate::Discriminator`] is `Sync`, so any pool
    /// thread may call `predict_batch` on it.
    model: BoxedDiscriminator,
    /// Cached `model.n_qubits()` for the output shape check.
    n_qubits: usize,
    /// Nanoseconds (on the engine clock) of the last session open or
    /// submission — the fleet's LRU eviction stamp.
    last_access: AtomicU64,
}

struct Queue {
    /// One FIFO lane per [`Qos`] class, drained highest priority first.
    lanes: [VecDeque<Job>; Qos::CLASSES],
    /// Total queued jobs across lanes.
    len: usize,
    /// Recycled trace buffers: flushed jobs return their `Vec<Complex>`
    /// here and submissions refill from it, so a busy engine stops
    /// touching the allocator (and keeps its working set at roughly one
    /// micro-batch of traces instead of one per queued shot — cache
    /// pressure directly measurable in the `engine_throughput` bench).
    spare_buffers: Vec<Vec<Complex>>,
    /// A pool thread is classifying a batch drained from this queue;
    /// exactly one drainer per tenant at a time keeps flush order
    /// deterministic and pins the tenant against eviction.
    draining: bool,
    closed: bool,
    /// `closed` because the worker died (model fault), not a clean
    /// shutdown — distinguishes [`Rejected::WorkerFailed`] from
    /// [`Rejected::ShuttingDown`].
    failed: bool,
}

impl Queue {
    /// Submission timestamp of the oldest queued job across all lanes
    /// (the flush-deadline anchor).
    fn oldest_submission(&self) -> Option<Duration> {
        self.lanes
            .iter()
            .filter_map(|lane| lane.front().map(|job| job.submitted_at))
            .min()
    }

    /// Drains up to `max` jobs, highest-priority lanes first, FIFO within
    /// a lane.
    fn drain_batch(&mut self, max: usize) -> Vec<Job> {
        let mut batch = Vec::with_capacity(max.min(self.len));
        for lane in &mut self.lanes {
            while batch.len() < max {
                match lane.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }
        self.len -= batch.len();
        batch
    }
}

/// Whether an enqueue that moved the queue from `pre` to `post` jobs must
/// wake a pool thread. Only the transitions a worker can act on are worth
/// the syscall: the queue becoming non-empty (a thread may be
/// idle-waiting) or crossing the flush size (a thread may be
/// deadline-waiting; threads rescan after every drain, so the crossing is
/// hit exactly once per flush). Anything else would wake a thread just to
/// go back to sleep — on a busy engine that is one context switch per
/// shot, and it dominates serving overhead.
fn wake_worthy(pre: usize, post: usize, max_batch: usize) -> bool {
    (pre == 0 && post > 0) || (pre < max_batch && post >= max_batch)
}

impl Tenant {
    /// Builds a tenant around a model, clamping the config like
    /// [`ReadoutEngine::with_clock`] documents.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.max_queue` is zero.
    fn new(
        model: BoxedDiscriminator,
        mut config: EngineConfig,
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.max_queue > 0, "max_queue must be positive");
        config.max_queue = config.max_queue.max(config.max_batch);
        let n_qubits = model.n_qubits();
        Arc::new(Self {
            queue: Mutex::new(Queue {
                lanes: std::array::from_fn(|_| VecDeque::new()),
                len: 0,
                spare_buffers: Vec::new(),
                draining: false,
                closed: false,
                failed: false,
            }),
            space: Condvar::new(),
            clock,
            stats: StatCells::default(),
            config,
            model,
            n_qubits,
            last_access: AtomicU64::new(0),
        })
    }

    pub(crate) fn config(&self) -> EngineConfig {
        self.config
    }

    pub(crate) fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    pub(crate) fn is_failed(&self) -> bool {
        lock_recovering(&self.queue).failed
    }

    /// Stamps the LRU clock: called on session open (the submit paths
    /// stamp from the enqueue timestamp instead).
    pub(crate) fn touch(&self) {
        self.stamp_access(self.clock.now());
    }

    fn stamp_access(&self, at: Duration) {
        let nanos = u64::try_from(at.as_nanos()).unwrap_or(u64::MAX);
        self.last_access.store(nanos, Ordering::Relaxed);
    }

    /// The LRU stamp, in nanoseconds on the engine clock.
    pub(crate) fn last_access_nanos(&self) -> u64 {
        self.last_access.load(Ordering::Relaxed)
    }

    /// Whether nothing pins this tenant: no queued work, no batch being
    /// classified, no unresolved ticket. Only idle tenants are LRU
    /// eviction candidates — tickets in flight pin their worker.
    pub(crate) fn is_idle(&self) -> bool {
        let queue = lock_recovering(&self.queue);
        !queue.draining && queue.len == 0 && self.stats.snapshot().outstanding() == 0
    }

    /// Closes the queue: submissions are refused from here on. Queued
    /// work is *not* dropped — a pool thread (or
    /// [`Tenant::drain_after_close`]) still flushes it.
    pub(crate) fn close(&self) {
        {
            let mut queue = lock_recovering(&self.queue);
            queue.closed = true;
        }
        self.space.notify_all();
    }

    /// If this tenant has a flushable batch (full, past deadline, or
    /// closed) and no other thread is draining it, claims it: marks the
    /// queue draining and returns the batch. The caller must hand the
    /// batch to [`Tenant::classify_and_resolve`] with
    /// `clear_draining = true`.
    pub(crate) fn try_begin_drain(&self, now: Duration) -> Option<Vec<Job>> {
        let mut queue = lock_recovering(&self.queue);
        if queue.draining || queue.len == 0 {
            return None;
        }
        let deadline_hit = queue
            .oldest_submission()
            .is_some_and(|oldest| now >= oldest + self.config.max_delay);
        if !(queue.closed || queue.len >= self.config.max_batch || deadline_hit) {
            return None;
        }
        queue.draining = true;
        Some(queue.drain_batch(self.config.max_batch))
    }

    /// Queue length, plus the flush deadline if the queue holds
    /// not-yet-drainable work (the pool's sleep bound). `None` deadline
    /// when empty, closed, or another thread is already draining.
    pub(crate) fn pending_deadline(&self) -> (usize, Option<Duration>) {
        let queue = lock_recovering(&self.queue);
        let deadline = if queue.len > 0 && !queue.draining && !queue.closed {
            queue
                .oldest_submission()
                .map(|oldest| oldest + self.config.max_delay)
        } else {
            None
        };
        (queue.len, deadline)
    }

    /// Classifies one drained batch in a single `predict_batch` call and
    /// resolves its tickets; on a model fault (panic *or* wrong-shape
    /// output) fails every outstanding ticket loudly and closes the
    /// tenant. `clear_draining` is set by pool threads that claimed the
    /// batch via [`Tenant::try_begin_drain`].
    pub(crate) fn classify_and_resolve(&self, batch: Vec<Job>, clear_draining: bool) {
        let shots: Vec<&[Complex]> = batch.iter().map(|job| job.trace.as_slice()).collect();
        let verdicts = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.model.predict_batch(&shots)
        }));
        drop(shots);
        // A panic and a wrong-shape output are the same fault: this
        // model can no longer be trusted to resolve tickets.
        let verdicts = match verdicts {
            Ok(verdicts)
                if verdicts.len() == batch.len()
                    && verdicts.iter().all(|v| v.len() == self.n_qubits) =>
            {
                verdicts
            }
            _ => {
                self.fail_with(batch, clear_draining);
                return;
            }
        };
        self.stats.record_flush(batch.len());
        let resolved_at = self.clock.now();
        let n = batch.len() as u64;
        let mut latency_sum = 0u64;
        let mut latency_max = 0u64;
        let mut resolved = Vec::with_capacity(batch.len());
        let mut buffers = Vec::with_capacity(batch.len());
        for (job, verdict) in batch.into_iter().zip(verdicts) {
            let ns = u64::try_from(resolved_at.saturating_sub(job.submitted_at).as_nanos())
                .unwrap_or(u64::MAX);
            latency_sum = latency_sum.saturating_add(ns);
            latency_max = latency_max.max(ns);
            resolved.push((job.slot, verdict));
            // Shared traces belong to the submitter; only engine-owned
            // buffers go back to the recycle pool.
            if let TraceBuf::Owned(buf) = job.trace {
                buffers.push(buf);
            }
        }
        // Stats before the wake: a caller returning from `wait` must
        // already see its own completion counted.
        self.stats
            .record_completed_batch(n, latency_sum, latency_max);
        // Hand the flushed traces back to the submission pool (bounded at
        // the queue depth so an idle engine does not pin memory) and
        // release the drain claim *before* resolving: a holder returning
        // from `wait` must already find the tenant idle (the fleet's
        // eviction pin reads exactly this).
        {
            let mut queue = lock_recovering(&self.queue);
            if clear_draining {
                queue.draining = false;
            }
            let cap = self.config.max_queue;
            while queue.spare_buffers.len() < cap {
                match buffers.pop() {
                    Some(buf) => queue.spare_buffers.push(buf),
                    None => break,
                }
            }
        }
        // Resolve in runs: consecutive shots of the same vectored window
        // land under one BatchState lock via `resolve_many`; scalar
        // tickets resolve individually as before.
        type Run = (Arc<BatchState>, Vec<(usize, Vec<usize>)>);
        let mut pending: Option<Run> = None;
        for (slot, verdict) in resolved {
            match slot {
                VerdictSlot::Single(ticket) => {
                    if let Some((prev, run)) = pending.take() {
                        prev.resolve_many(run);
                    }
                    ticket.resolve(verdict);
                }
                VerdictSlot::Window { batch, index } => match &mut pending {
                    Some((current, run)) if Arc::ptr_eq(current, &batch) => {
                        run.push((index, verdict));
                    }
                    _ => {
                        if let Some((prev, run)) = pending.take() {
                            prev.resolve_many(run);
                        }
                        pending = Some((batch, vec![(index, verdict)]));
                    }
                },
            }
        }
        if let Some((batch, run)) = pending.take() {
            batch.resolve_many(run);
        }
        // Backpressured submitters move up.
        self.space.notify_all();
    }

    /// The fail-loudly path: mark every outstanding ticket failed, close
    /// the tenant, and wake everyone — waiters see the failure,
    /// submitters are refused.
    fn fail_with(&self, batch: Vec<Job>, clear_draining: bool) {
        let queued = {
            let mut queue = lock_recovering(&self.queue);
            queue.closed = true;
            queue.failed = true;
            queue.len = 0;
            if clear_draining {
                queue.draining = false;
            }
            std::mem::replace(&mut queue.lanes, std::array::from_fn(|_| VecDeque::new()))
        };
        // Count before waking anyone: a waiter that sees its ticket fail
        // must already find the failure in the stats.
        let jobs: Vec<Job> = batch
            .into_iter()
            .chain(queued.into_iter().flatten())
            .collect();
        self.stats.record_failed(jobs.len());
        for job in jobs {
            job.slot.fail();
        }
        self.space.notify_all();
    }

    /// Synchronously flushes everything still queued on a closed tenant —
    /// the fleet's retire/evict path runs this on the caller's thread so
    /// a retired tenant's tickets resolve even after it leaves the pool
    /// roster. Safe alongside a pool thread finishing its last claimed
    /// batch: each job is drained exactly once, and concurrent
    /// `predict_batch` calls are fine (`Discriminator: Sync`).
    pub(crate) fn drain_after_close(&self) {
        loop {
            let batch = {
                let mut queue = lock_recovering(&self.queue);
                if queue.len == 0 {
                    break;
                }
                queue.drain_batch(self.config.max_batch)
            };
            self.classify_and_resolve(batch, false);
        }
    }
}

/// A cloneable handle for submitting shots to a [`ReadoutEngine`] or
/// [`FleetEngine`] tenant from any thread, carrying its [`Qos`] class.
#[derive(Clone)]
pub struct Session {
    tenant: Arc<Tenant>,
    pool: Arc<PoolCore>,
    qos: Qos,
}

impl Session {
    pub(crate) fn open(tenant: Arc<Tenant>, pool: Arc<PoolCore>, qos: Qos) -> Self {
        Self { tenant, pool, qos }
    }

    /// This session's priority class.
    pub fn qos(&self) -> Qos {
        self.qos
    }

    /// Enqueues one raw multiplexed trace for classification; the returned
    /// [`Ticket`] resolves to the per-qubit verdict once the micro-batch
    /// containing it is flushed.
    ///
    /// This is the *cooperative backpressure* path: it blocks while the
    /// queue is at [`EngineConfig::max_queue`], bypassing the admission
    /// watermarks. Use [`Session::try_submit`] for the non-blocking,
    /// load-shedding path.
    ///
    /// The trace is copied into the engine (submission outlives the
    /// caller's borrow).
    ///
    /// # Panics
    ///
    /// Panics if the engine has shut down (the [`ReadoutEngine`] was
    /// dropped while this session survived it, or its worker died).
    pub fn submit(&self, raw: &[Complex]) -> Ticket {
        let slot = TicketState::new();
        let must_wake = {
            let mut queue = lock_recovering(&self.tenant.queue);
            // Backpressure: wait for queue space rather than buffering
            // without bound (see `EngineConfig::max_queue`).
            while queue.len >= self.tenant.config.max_queue && !queue.closed {
                queue = self
                    .tenant
                    .space
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            assert!(!queue.closed, "submit on a shut-down ReadoutEngine");
            let pre = queue.len;
            let trace = raw.to_buf(&mut queue);
            let submitted_at = self.stamp_now();
            self.enqueue(
                &mut queue,
                trace,
                VerdictSlot::Single(Arc::clone(&slot)),
                submitted_at,
            );
            self.tenant.stats.record_submit(self.qos, queue.len);
            wake_worthy(pre, queue.len, self.tenant.config.max_batch)
        };
        if must_wake {
            self.pool.wake_one();
        }
        Ticket { slot }
    }

    /// Non-blocking admission-controlled submission: enqueues the trace
    /// if this session's class is below its watermark
    /// ([`EngineConfig::watermark`]), otherwise sheds it with a typed
    /// [`Rejected`] verdict. Never blocks, never panics — the fleet
    /// front door.
    ///
    /// # Errors
    ///
    /// [`Rejected`] describes why the shot was refused; the caller can
    /// retry later, downgrade, or drop the work.
    pub fn try_submit(&self, raw: &[Complex]) -> Result<Ticket, Rejected> {
        let slot = TicketState::new();
        let must_wake = {
            let mut queue = lock_recovering(&self.tenant.queue);
            if queue.closed {
                self.tenant.stats.record_rejected_closed();
                return Err(if queue.failed {
                    Rejected::WorkerFailed
                } else {
                    Rejected::ShuttingDown
                });
            }
            let depth = queue.len;
            let watermark = self.tenant.config.watermark(self.qos);
            if depth >= watermark {
                self.tenant.stats.record_shed(self.qos);
                return Err(if depth >= self.tenant.config.max_queue {
                    Rejected::QueueFull { depth }
                } else {
                    Rejected::Shed {
                        qos: self.qos,
                        depth,
                        watermark,
                    }
                });
            }
            let pre = queue.len;
            let trace = raw.to_buf(&mut queue);
            let submitted_at = self.stamp_now();
            self.enqueue(
                &mut queue,
                trace,
                VerdictSlot::Single(Arc::clone(&slot)),
                submitted_at,
            );
            self.tenant.stats.record_submit(self.qos, queue.len);
            wake_worthy(pre, queue.len, self.tenant.config.max_batch)
        };
        if must_wake {
            self.pool.wake_one();
        }
        Ok(Ticket { slot })
    }

    /// Vectored submission: enqueues a whole window of shots under one
    /// lock acquisition and (at most) one worker wake per queue refill,
    /// instead of a lock+wake pair per shot. The returned [`BatchTicket`]
    /// resolves to every verdict in submission order.
    ///
    /// Like [`Session::submit`] this is the blocking-backpressure path: a
    /// window larger than the queue's free space is enqueued in chunks,
    /// waiting for the worker to make room — the caller never sheds.
    ///
    /// # Panics
    ///
    /// Panics if the engine has shut down (see [`Session::submit`]); any
    /// already-enqueued prefix of the window is still classified or
    /// failed, never lost.
    pub fn submit_all(&self, window: &[&[Complex]]) -> BatchTicket {
        self.submit_all_inner(window)
    }

    /// Zero-copy [`Session::submit_all`]: the window shares the caller's
    /// [`Arc`]-owned shot storage instead of copying each trace into the
    /// queue. For plan-fused models whose per-shot compute is comparable
    /// to a trace memcpy, the copy *is* the serving overhead — this is
    /// the path that lets cheap tenants track their direct-equivalent
    /// rate. The engine drops its refcounts as each flush resolves.
    ///
    /// # Panics
    ///
    /// Panics if the engine has shut down, exactly like
    /// [`Session::submit_all`].
    pub fn submit_all_shared(&self, window: &[Arc<[Complex]>]) -> BatchTicket {
        self.submit_all_inner(window)
    }

    fn submit_all_inner<T: TraceSource>(&self, window: &[T]) -> BatchTicket {
        let batch = BatchState::new(window.len());
        let mut next = 0;
        while next < window.len() {
            let must_wake = {
                let mut queue = lock_recovering(&self.tenant.queue);
                while queue.len >= self.tenant.config.max_queue && !queue.closed {
                    queue = self
                        .tenant
                        .space
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                assert!(!queue.closed, "submit on a shut-down ReadoutEngine");
                let room = self.tenant.config.max_queue - queue.len;
                let take = room.min(window.len() - next);
                let pre = queue.len;
                let submitted_at = self.stamp_now();
                for offset in 0..take {
                    let trace = window[next + offset].to_buf(&mut queue);
                    self.enqueue(
                        &mut queue,
                        trace,
                        VerdictSlot::Window {
                            batch: Arc::clone(&batch),
                            index: next + offset,
                        },
                        submitted_at,
                    );
                }
                next += take;
                self.tenant.stats.record_submit_n(self.qos, take, queue.len);
                wake_worthy(pre, queue.len, self.tenant.config.max_batch)
            };
            if must_wake {
                self.pool.wake_one();
            }
        }
        BatchTicket { slot: batch }
    }

    /// Non-blocking vectored submission: admits the longest window
    /// *prefix* that fits under this class's watermark
    /// ([`EngineConfig::watermark`]) — still one lock acquisition and at
    /// most one wake — and sheds the rest with a typed [`PartialShed`].
    ///
    /// # Errors
    ///
    /// [`PartialShed`] when any shot was refused: it carries the ticket
    /// for the admitted prefix (if any) plus the same typed
    /// [`Rejected`] reason [`Session::try_submit`] would give the first
    /// refused shot. A fully-admitted window returns `Ok`.
    pub fn try_submit_all(&self, window: &[&[Complex]]) -> Result<BatchTicket, PartialShed> {
        self.try_submit_all_inner(window)
    }

    /// Zero-copy [`Session::try_submit_all`]: admission control and typed
    /// partial shedding over windows that share the caller's
    /// [`Arc`]-owned shot storage (see [`Session::submit_all_shared`]).
    ///
    /// # Errors
    ///
    /// [`PartialShed`] exactly as [`Session::try_submit_all`].
    pub fn try_submit_all_shared(
        &self,
        window: &[Arc<[Complex]>],
    ) -> Result<BatchTicket, PartialShed> {
        self.try_submit_all_inner(window)
    }

    fn try_submit_all_inner<T: TraceSource>(
        &self,
        window: &[T],
    ) -> Result<BatchTicket, PartialShed> {
        let n = window.len();
        let (result, must_wake) = {
            let mut queue = lock_recovering(&self.tenant.queue);
            if queue.closed {
                self.tenant.stats.record_rejected_closed_n(n);
                return Err(PartialShed {
                    admitted: None,
                    admitted_count: 0,
                    reason: if queue.failed {
                        Rejected::WorkerFailed
                    } else {
                        Rejected::ShuttingDown
                    },
                });
            }
            let watermark = self.tenant.config.watermark(self.qos);
            let take = watermark.saturating_sub(queue.len).min(n);
            let batch = BatchState::new(take);
            let pre = queue.len;
            if take > 0 {
                let submitted_at = self.stamp_now();
                for (offset, raw) in window.iter().enumerate().take(take) {
                    let trace = raw.to_buf(&mut queue);
                    self.enqueue(
                        &mut queue,
                        trace,
                        VerdictSlot::Window {
                            batch: Arc::clone(&batch),
                            index: offset,
                        },
                        submitted_at,
                    );
                }
            }
            if take > 0 {
                self.tenant.stats.record_submit_n(self.qos, take, queue.len);
            }
            let must_wake = wake_worthy(pre, queue.len, self.tenant.config.max_batch);
            let ticket = BatchTicket { slot: batch };
            if take == n {
                (Ok(ticket), must_wake)
            } else {
                self.tenant.stats.record_shed_n(self.qos, n - take);
                let depth = queue.len;
                let reason = if depth >= self.tenant.config.max_queue {
                    Rejected::QueueFull { depth }
                } else {
                    Rejected::Shed {
                        qos: self.qos,
                        depth,
                        watermark,
                    }
                };
                (
                    Err(PartialShed {
                        admitted: (take > 0).then_some(ticket),
                        admitted_count: take,
                        reason,
                    }),
                    must_wake,
                )
            }
        };
        if must_wake {
            self.pool.wake_one();
        }
        result
    }

    /// Reads the clock once and stamps the tenant's LRU access time:
    /// vectored windows pay one clock read per chunk, not per shot.
    fn stamp_now(&self) -> Duration {
        let now = self.tenant.clock.now();
        self.tenant.stamp_access(now);
        now
    }

    /// Pushes one job into this session's lane. Callers stamp the clock
    /// ([`Session::stamp_now`]), record stats and decide the wake.
    fn enqueue(
        &self,
        queue: &mut Queue,
        trace: TraceBuf,
        slot: VerdictSlot,
        submitted_at: Duration,
    ) {
        queue.lanes[self.qos as usize].push_back(Job {
            trace,
            slot,
            submitted_at,
        });
        queue.len += 1;
    }
}

/// Internal: how each submission path materialises a queued [`TraceBuf`].
/// Borrowed slices copy into a recycled engine-owned buffer; `Arc` shots
/// clone the refcount and share the caller's storage zero-copy.
trait TraceSource {
    fn to_buf(&self, queue: &mut Queue) -> TraceBuf;
}

impl TraceSource for &[Complex] {
    fn to_buf(&self, queue: &mut Queue) -> TraceBuf {
        let mut trace = queue.spare_buffers.pop().unwrap_or_default();
        trace.clear();
        trace.extend_from_slice(self);
        TraceBuf::Owned(trace)
    }
}

impl TraceSource for Arc<[Complex]> {
    fn to_buf(&self, _queue: &mut Queue) -> TraceBuf {
        TraceBuf::Shared(Arc::clone(self))
    }
}

/// The micro-batching serving front door; see the [module docs](self).
///
/// Owns the trained model (any [`crate::Discriminator`], typically a
/// [`crate::TrainedModel`] from the registry) and a single-thread worker
/// `pool`. Dropping the engine flushes the remaining queue and joins
/// the worker; outstanding tickets still resolve.
pub struct ReadoutEngine {
    tenant: Arc<Tenant>,
    pool: WorkerPool,
    config: EngineConfig,
}

impl ReadoutEngine {
    /// Spawns the engine's worker around a trained model, timed by the
    /// production [`WallClock`].
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.max_queue` is zero.
    pub fn new(model: BoxedDiscriminator, config: EngineConfig) -> Self {
        Self::with_clock(model, config, Arc::new(WallClock::new()))
    }

    /// [`ReadoutEngine::new`] with an injected time source — a
    /// [`ManualClock`] makes every flush deadline deterministic in tests.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.max_queue` is zero.
    pub fn with_clock(
        model: BoxedDiscriminator,
        config: EngineConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let tenant = Tenant::new(model, config, Arc::clone(&clock));
        let config = tenant.config();
        let pool = WorkerPool::new(1, clock, "mlr-readout-engine");
        pool.core().add(0, Arc::clone(&tenant));
        Self {
            tenant,
            pool,
            config,
        }
    }

    /// The engine's batching policy (after clamping).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Opens a [`Qos::Standard`] submission handle; sessions are cheap to
    /// clone and safe to use from many threads at once.
    pub fn session(&self) -> Session {
        self.session_with(Qos::Standard)
    }

    /// Opens a submission handle with an explicit priority class.
    pub fn session_with(&self, qos: Qos) -> Session {
        Session::open(Arc::clone(&self.tenant), self.pool.core(), qos)
    }

    /// A snapshot of this worker's serving counters.
    pub fn stats(&self) -> EngineStats {
        self.tenant.stats()
    }

    /// Whether the worker died to a model fault (every subsequent
    /// submission is refused; outstanding tickets were failed loudly).
    pub fn is_failed(&self) -> bool {
        self.tenant.is_failed()
    }

    /// Convenience: submit a batch of shots through one session and wait
    /// for all verdicts, in input order — one vectored
    /// [`Session::submit_all`] under the hood.
    pub fn classify_all(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.session().submit_all(shots).wait()
    }
}

// No Drop impl needed: dropping `pool` (a `WorkerPool`) closes every
// roster tenant, drains the queues, and joins the threads.

#[cfg(test)]
mod tests;
