//! The serving layer of the model lifecycle: a micro-batching inference
//! engine over any trained discriminator.
//!
//! The batch path ([`crate::Discriminator::predict_batch`]) is ~2.4× faster per
//! shot than the per-shot loop, but it wants shots *in bulk* — while a
//! control system (or a fleet of concurrent callers) produces them one at
//! a time. [`ReadoutEngine`] closes that gap the way production model
//! servers do: callers [`Session::submit`] individual shots from any
//! thread and get a [`Ticket`] back; a dedicated worker coalesces queued
//! shots until either `max_batch` is reached or the oldest submission has
//! waited `max_delay`, issues **one** `predict_batch` call for the whole
//! micro-batch, and resolves every ticket with its per-qubit verdict.
//!
//! Verdicts are identical to calling `predict_batch` directly — batching
//! only changes *when* shots are grouped, never the decision; the
//! workspace's tests pin this for arbitrary submission orders and thread
//! counts. For plan-served families (OURS, OURS-INT, HERQULES) the
//! worker's `predict_batch` call executes the compiled single-pass
//! inference plan ([`crate::CompiledPlan`]), so the engine inherits the
//! fused standardize+head kernels for free. Throughput at saturation
//! stays within ~10 % of one big direct
//! batch call (see the `engine_throughput` bench): almost every cycle is
//! still spent inside the same fused batch kernels, and the machinery
//! around them — conditional worker wakeups, a bounded backpressured
//! queue, recycled trace buffers — is tuned so the per-shot cost is the
//! one unavoidable trace copy plus a couple of uncontended lock
//! acquisitions.
//!
//! # Examples
//!
//! ```no_run
//! use mlr_core::{registry, DiscriminatorSpec, EngineConfig, ReadoutEngine};
//! use mlr_sim::{ChipConfig, TraceDataset};
//!
//! let dataset = TraceDataset::generate(&ChipConfig::five_qubit_paper(), 3, 50, 7);
//! let split = dataset.paper_split(7);
//! let model = registry::fit(&DiscriminatorSpec::default(), &dataset, &split, 7);
//! let engine = ReadoutEngine::new(Box::new(model), EngineConfig::default());
//! let session = engine.session();
//! let ticket = session.submit(dataset.raw(0));
//! println!("verdict: {:?}", ticket.wait());
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mlr_num::Complex;

use crate::spec::BoxedDiscriminator;

/// Locks a mutex, recovering from poisoning: every engine state
/// transition completes atomically under the guard, so state behind a
/// poisoned lock is still consistent (poisoning here only means some
/// *caller* panicked while holding it — e.g. a deliberate
/// submit-after-shutdown panic).
fn lock_recovering<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Micro-batching policy of a [`ReadoutEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Flush as soon as this many shots are queued. 64 matches the batch
    /// kernels' sweet spot on the 5-qubit chip (see the
    /// `engine_throughput` bench).
    pub max_batch: usize,
    /// Flush when the oldest queued shot has waited this long, so a lone
    /// shot is never stranded behind an empty queue.
    pub max_delay: Duration,
    /// Backpressure bound: [`Session::submit`] blocks while this many
    /// shots are already queued. Bounds the engine's memory to
    /// `max_queue` traces and keeps the recycled trace buffers
    /// cache-resident (an unbounded queue measurably slows the inference
    /// it feeds — see the `engine_throughput` bench). Must be at least
    /// `max_batch`.
    pub max_queue: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            max_queue: 128,
        }
    }
}

/// One queued shot: the owned trace, the slot its verdict lands in, and
/// when it entered the queue (anchors the flush deadline).
struct Job {
    trace: Vec<Complex>,
    slot: Arc<TicketState>,
    submitted_at: Instant,
}

/// Shared resolution state behind a [`Ticket`].
struct TicketState {
    state: Mutex<TicketInner>,
    ready: Condvar,
}

struct TicketInner {
    verdict: Option<Vec<usize>>,
    /// Whether the ticket holder is (about to be) blocked in [`Ticket::wait`];
    /// lets the resolver skip the wake syscall for tickets nobody is
    /// waiting on yet — the common case under bulk submission.
    waiting: bool,
    /// Set when the worker died (the model panicked) before this shot
    /// could be classified; waiters propagate instead of hanging.
    failed: bool,
}

/// A pending verdict for one submitted shot.
///
/// Resolves once the engine's worker has flushed the micro-batch
/// containing the shot; [`Ticket::wait`] blocks until then.
pub struct Ticket {
    slot: Arc<TicketState>,
}

impl Ticket {
    /// Blocks until the verdict is available and returns the per-qubit
    /// level decisions, in qubit order.
    ///
    /// # Panics
    ///
    /// Panics if the engine's worker died (the model panicked) before
    /// this shot's micro-batch was classified — the verdict will never
    /// arrive, and hanging forever would hide the failure.
    pub fn wait(self) -> Vec<usize> {
        let mut guard = lock_recovering(&self.slot.state);
        loop {
            if let Some(verdict) = guard.verdict.take() {
                return verdict;
            }
            assert!(
                !guard.failed,
                "ReadoutEngine worker panicked; this shot's verdict was lost"
            );
            guard.waiting = true;
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Returns a copy of the verdict if it is already available, without
    /// blocking or consuming it — [`Ticket::wait`] still works afterwards.
    pub fn try_wait(&self) -> Option<Vec<usize>> {
        lock_recovering(&self.slot.state).verdict.clone()
    }
}

/// Submission queue shared between sessions and the worker.
struct Shared {
    queue: Mutex<Queue>,
    /// Signals the worker: new work or shutdown.
    wake: Condvar,
    /// Signals submitters blocked on the [`EngineConfig::max_queue`]
    /// backpressure bound: space freed or shutdown.
    space: Condvar,
    /// The flush size and queue bound, mirrored out of the config so
    /// submitters know when a notify is worth a syscall.
    max_batch: usize,
    max_queue: usize,
}

struct Queue {
    jobs: VecDeque<Job>,
    /// Recycled trace buffers: flushed jobs return their `Vec<Complex>`
    /// here and submissions refill from it, so a busy engine stops
    /// touching the allocator (and keeps its working set at roughly one
    /// micro-batch of traces instead of one per queued shot — cache
    /// pressure directly measurable in the `engine_throughput` bench).
    spare_buffers: Vec<Vec<Complex>>,
    closed: bool,
}

/// A cloneable handle for submitting shots to a [`ReadoutEngine`] from any
/// thread.
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
}

impl Session {
    /// Enqueues one raw multiplexed trace for classification; the returned
    /// [`Ticket`] resolves to the per-qubit verdict once the micro-batch
    /// containing it is flushed.
    ///
    /// The trace is copied into the engine (submission outlives the
    /// caller's borrow).
    ///
    /// # Panics
    ///
    /// Panics if the engine has shut down (the [`ReadoutEngine`] was
    /// dropped while this session survived it).
    pub fn submit(&self, raw: &[Complex]) -> Ticket {
        let slot = Arc::new(TicketState {
            state: Mutex::new(TicketInner {
                verdict: None,
                waiting: false,
                failed: false,
            }),
            ready: Condvar::new(),
        });
        let must_wake = {
            let mut queue = lock_recovering(&self.shared.queue);
            // Backpressure: wait for queue space rather than buffering
            // without bound (see `EngineConfig::max_queue`).
            while queue.jobs.len() >= self.shared.max_queue && !queue.closed {
                queue = self
                    .shared
                    .space
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            assert!(!queue.closed, "submit on a shut-down ReadoutEngine");
            let mut trace = queue.spare_buffers.pop().unwrap_or_default();
            trace.clear();
            trace.extend_from_slice(raw);
            queue.jobs.push_back(Job {
                trace,
                slot: Arc::clone(&slot),
                submitted_at: Instant::now(),
            });
            // Wake the worker only on the transitions it can act on: the
            // queue becoming non-empty (it may be idle-waiting) or
            // crossing the flush size (it may be deadline-waiting; it
            // never waits with a full batch queued, so the == transition
            // is hit exactly once per flush). Anything else would wake it
            // just to go back to sleep — on a busy engine that is one
            // context switch per shot, and it dominates serving overhead.
            let len = queue.jobs.len();
            len == 1 || len == self.shared.max_batch
        };
        if must_wake {
            self.shared.wake.notify_one();
        }
        Ticket { slot }
    }
}

/// The micro-batching serving front door; see the [module docs](self).
///
/// Owns the trained model (any [`crate::Discriminator`], typically a
/// [`crate::TrainedModel`] from the registry) and one worker thread.
/// Dropping the engine flushes the remaining queue and joins the worker;
/// outstanding tickets still resolve.
pub struct ReadoutEngine {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    config: EngineConfig,
}

impl ReadoutEngine {
    /// Spawns the engine's worker around a trained model.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` is zero.
    pub fn new(model: BoxedDiscriminator, config: EngineConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.max_queue > 0, "max_queue must be positive");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                spare_buffers: Vec::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            space: Condvar::new(),
            max_batch: config.max_batch,
            max_queue: config.max_queue.max(config.max_batch),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("mlr-readout-engine".to_owned())
            .spawn(move || worker_loop(model, &worker_shared, config))
            .expect("spawn engine worker");
        Self {
            shared,
            worker: Some(worker),
            config,
        }
    }

    /// The engine's batching policy.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Opens a submission handle; sessions are cheap to clone and safe to
    /// use from many threads at once.
    pub fn session(&self) -> Session {
        Session {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Convenience: submit a batch of shots through one session and wait
    /// for all verdicts, in input order.
    pub fn classify_all(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        let session = self.session();
        let tickets: Vec<Ticket> = shots.iter().map(|raw| session.submit(raw)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }
}

impl Drop for ReadoutEngine {
    fn drop(&mut self) {
        {
            let mut queue = lock_recovering(&self.shared.queue);
            queue.closed = true;
        }
        self.shared.wake.notify_all();
        self.shared.space.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The worker: wait for work, coalesce a micro-batch (up to `max_batch`
/// shots or `max_delay` past the oldest submission), classify it in one
/// `predict_batch` call, resolve the tickets; on shutdown drain whatever
/// is queued. A model panic fails all outstanding tickets and closes the
/// engine (see the test `model_panic_fails_tickets_and_closes_engine…`).
fn worker_loop(model: BoxedDiscriminator, shared: &Shared, config: EngineConfig) {
    loop {
        let batch = {
            let mut queue = lock_recovering(&shared.queue);
            // Phase 1: sleep until there is at least one job (or shutdown).
            while queue.jobs.is_empty() && !queue.closed {
                queue = shared
                    .wake
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if queue.jobs.is_empty() && queue.closed {
                return;
            }
            // Phase 2: the oldest job's *submission* starts the flush
            // clock (so a shot queued while the previous batch was being
            // classified does not have its wait restarted); top the batch
            // up until it is full, the deadline passes, or shutdown.
            let deadline =
                queue.jobs.front().expect("nonempty queue").submitted_at + config.max_delay;
            while queue.jobs.len() < config.max_batch && !queue.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = shared
                    .wake
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
            let take = queue.jobs.len().min(config.max_batch);
            queue.jobs.drain(..take).collect::<Vec<Job>>()
        };

        let shots: Vec<&[Complex]> = batch.iter().map(|job| job.trace.as_slice()).collect();
        let verdicts = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model.predict_batch(&shots)
        })) {
            Ok(verdicts) => verdicts,
            Err(_) => {
                // The model panicked (e.g. a trace whose length does not
                // match its chip). Fail loudly instead of hanging: mark
                // every outstanding ticket failed, close the engine, and
                // wake everyone — waiters panic in `wait`, submitters
                // panic on the closed queue.
                drop(shots);
                let queued = {
                    let mut queue = lock_recovering(&shared.queue);
                    queue.closed = true;
                    std::mem::take(&mut queue.jobs)
                };
                for job in batch.into_iter().chain(queued) {
                    let mut inner = lock_recovering(&job.slot.state);
                    inner.failed = true;
                    drop(inner);
                    job.slot.ready.notify_all();
                }
                shared.wake.notify_all();
                shared.space.notify_all();
                return;
            }
        };
        drop(shots);
        let mut buffers = Vec::with_capacity(batch.len());
        for (job, verdict) in batch.into_iter().zip(verdicts) {
            let waiting = {
                let mut inner = lock_recovering(&job.slot.state);
                inner.verdict = Some(verdict);
                inner.waiting
            };
            // The wake syscall is only worth it when the holder is (or is
            // about to be) blocked in `wait`; under bulk submission most
            // tickets are resolved before anyone waits on them.
            if waiting {
                job.slot.ready.notify_all();
            }
            buffers.push(job.trace);
        }
        // Hand the flushed traces back to the submission pool (bounded at
        // the queue depth so an idle engine does not pin memory) and let
        // backpressured submitters move up.
        {
            let mut queue = lock_recovering(&shared.queue);
            let cap = shared.max_queue;
            while queue.spare_buffers.len() < cap {
                match buffers.pop() {
                    Some(buf) => queue.spare_buffers.push(buf),
                    None => break,
                }
            }
        }
        shared.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gather_shots, Discriminator};
    use mlr_sim::{ChipConfig, TraceDataset};

    /// A deterministic stand-in model: "level" = trace length modulo the
    /// alphabet, so verdicts encode which shot produced them.
    struct Echo;

    impl Discriminator for Echo {
        fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
            vec![raw.len() % 3; 2]
        }
        fn name(&self) -> &str {
            "ECHO"
        }
        fn n_qubits(&self) -> usize {
            2
        }
        fn weight_count(&self) -> usize {
            0
        }
    }

    fn trace(len: usize) -> Vec<Complex> {
        vec![Complex::new(1.0, -1.0); len]
    }

    #[test]
    #[ignore = "diagnostic timing probe, run with --release -- --ignored"]
    fn overhead_probe() {
        let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
        let traces: Vec<Vec<Complex>> = (0..512).map(|_| trace(500)).collect();
        let shots: Vec<&[Complex]> = traces.iter().map(Vec::as_slice).collect();
        let _ = engine.classify_all(&shots); // warm
        let t = std::time::Instant::now();
        for _ in 0..20 {
            let _ = engine.classify_all(&shots);
        }
        let per_iter = t.elapsed().as_secs_f64() / 20.0;
        eprintln!(
            "pure engine overhead: {:.3} ms per 512 shots ({:.2} us/shot)",
            per_iter * 1e3,
            per_iter * 1e6 / 512.0
        );
    }

    #[test]
    fn single_submission_resolves_before_batch_fills() {
        let engine = ReadoutEngine::new(
            Box::new(Echo),
            EngineConfig {
                max_batch: 64,
                max_delay: Duration::from_millis(1),
                ..EngineConfig::default()
            },
        );
        let ticket = engine.session().submit(&trace(7));
        assert_eq!(ticket.wait(), vec![1, 1]);
    }

    #[test]
    fn verdicts_match_submission_not_arrival_order() {
        let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
        let session = engine.session();
        let tickets: Vec<(usize, Ticket)> = (0..200)
            .map(|i| (i, session.submit(&trace(i + 1))))
            .collect();
        for (i, ticket) in tickets {
            assert_eq!(ticket.wait(), vec![(i + 1) % 3; 2], "shot {i}");
        }
    }

    #[test]
    fn concurrent_sessions_from_many_threads_agree_with_direct_batch() {
        let mut chip = ChipConfig::uniform(2);
        chip.n_samples = 80;
        let ds = TraceDataset::generate(&chip, 3, 6, 5);
        let split = ds.split(0.6, 0.0, 5);
        let spec = crate::DiscriminatorSpec::Discriminant(crate::DiscriminantKind::Lda);
        let model = crate::registry::fit(&spec, &ds, &split, 5);
        let all: Vec<usize> = (0..ds.len()).collect();
        let expected = model.predict_batch(&gather_shots(&ds, &all));

        let engine = ReadoutEngine::new(
            Box::new(model),
            EngineConfig {
                max_batch: 7, // deliberately unaligned with the shot count
                max_delay: Duration::from_micros(50),
                ..EngineConfig::default()
            },
        );
        let verdicts: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = all
                .chunks(13)
                .map(|chunk| {
                    let session = engine.session();
                    let ds = &ds;
                    scope.spawn(move || {
                        let tickets: Vec<(usize, Ticket)> = chunk
                            .iter()
                            .map(|&i| (i, session.submit(ds.raw(i))))
                            .collect();
                        tickets
                            .into_iter()
                            .map(|(i, t)| (i, t.wait()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut indexed: Vec<(usize, Vec<usize>)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter thread"))
                .collect();
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, v)| v).collect()
        });
        assert_eq!(verdicts, expected);
    }

    #[test]
    fn classify_all_matches_direct_predict_batch() {
        let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
        let traces: Vec<Vec<Complex>> = (1..40).map(trace).collect();
        let shots: Vec<&[Complex]> = traces.iter().map(Vec::as_slice).collect();
        assert_eq!(engine.classify_all(&shots), Echo.predict_batch(&shots));
    }

    #[test]
    fn drop_resolves_outstanding_tickets() {
        let engine = ReadoutEngine::new(
            Box::new(Echo),
            EngineConfig {
                max_batch: 1000,
                max_delay: Duration::from_secs(5),
                ..EngineConfig::default()
            },
        );
        let session = engine.session();
        let tickets: Vec<Ticket> = (1..20).map(|i| session.submit(&trace(i))).collect();
        drop(engine); // flushes the queue before joining the worker
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait(), vec![(i + 1) % 3; 2]);
        }
    }

    #[test]
    #[should_panic(expected = "shut-down ReadoutEngine")]
    fn submit_after_shutdown_panics() {
        let engine = ReadoutEngine::new(Box::new(Echo), EngineConfig::default());
        let session = engine.session();
        drop(engine);
        let _ = session.submit(&trace(3));
    }

    #[test]
    fn try_wait_is_nonblocking_and_nonconsuming() {
        let engine = ReadoutEngine::new(
            Box::new(Echo),
            EngineConfig {
                max_batch: 2,
                max_delay: Duration::from_secs(5),
                ..EngineConfig::default()
            },
        );
        let session = engine.session();
        let first = session.submit(&trace(4));
        // One queued shot, batch of two, five-second deadline: nothing can
        // have resolved yet unless try_wait were to block.
        let immediate = first.try_wait();
        assert!(immediate.is_none());
        let second = session.submit(&trace(5));
        assert_eq!(second.wait(), vec![2, 2]);
        // After the flush the first ticket resolves too — and peeking does
        // not consume it, so wait still returns the verdict.
        assert_eq!(first.try_wait(), Some(vec![1, 1]));
        assert_eq!(first.try_wait(), Some(vec![1, 1]));
        assert_eq!(first.wait(), vec![1, 1]);
    }

    /// A model that panics on traces of one specific length.
    struct Tripwire;

    impl Discriminator for Tripwire {
        fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
            assert!(raw.len() != 13, "tripwire: poisoned trace length");
            vec![0; 2]
        }
        fn name(&self) -> &str {
            "TRIPWIRE"
        }
        fn n_qubits(&self) -> usize {
            2
        }
        fn weight_count(&self) -> usize {
            0
        }
    }

    #[test]
    fn model_panic_fails_tickets_and_closes_engine_instead_of_hanging() {
        let engine = ReadoutEngine::new(
            Box::new(Tripwire),
            EngineConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(1),
                ..EngineConfig::default()
            },
        );
        let session = engine.session();
        // A healthy batch still works.
        assert_eq!(session.submit(&trace(4)).wait(), vec![0, 0]);
        // A poisoned batch fails its tickets loudly...
        let bad = session.submit(&trace(13));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.wait()));
        assert!(err.is_err(), "wait on a failed ticket must panic");
        // ...and the engine refuses further submissions instead of
        // accepting work it can never classify.
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.submit(&trace(4))));
        assert!(err.is_err(), "submit after a worker panic must panic");
    }
}
