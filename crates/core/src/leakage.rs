//! Calibration-free leakage harvesting (Sec. V-A): find naturally occurring
//! leaked traces in two-level data by spectral clustering of Mean Trace
//! Values.

use mlr_cluster::{KMeans, SpectralClustering};
use mlr_dsp::{mean_trace_value, Demodulator};
use mlr_sim::TraceDataset;

/// The outcome of clustering one qubit's MTV cloud into `{|0⟩, |1⟩, L}`.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageHarvest {
    /// Discovered level per analysed shot (parallel to the `indices` passed
    /// in): `0`, `1`, or `2` for the leakage cluster.
    pub assigned_levels: Vec<usize>,
    /// Positions (within the analysed indices) assigned to the leakage
    /// cluster.
    pub leaked_positions: Vec<usize>,
    /// MTV of each analysed trace, `[I, Q]` — the scatter of Fig. 3(a)/(b).
    pub mtv_points: Vec<[f64; 2]>,
    /// Number of traces in the clusters labelled `0`, `1`, `2`.
    pub cluster_sizes: [usize; 3],
}

impl LeakageHarvest {
    /// Fraction of analysed traces assigned to the leakage cluster.
    pub fn leakage_fraction(&self) -> f64 {
        self.leaked_positions.len() as f64 / self.assigned_levels.len() as f64
    }
}

/// Detects naturally occurring leakage in a **two-level** dataset without
/// any explicit `|2⟩` calibration, following Sec. V-A:
///
/// 1. compute each trace's Mean Trace Value (a point in the IQ plane);
/// 2. spectral-cluster the points into three groups;
/// 3. the two clusters dominated by prepared-`|0⟩` / prepared-`|1⟩` traces
///    inherit those labels; the remaining (smallest) cluster is leakage.
///
/// # Examples
///
/// ```no_run
/// use mlr_core::NaturalLeakageDetector;
/// use mlr_sim::{ChipConfig, TraceDataset};
///
/// let config = ChipConfig::five_qubit_paper();
/// let ds = TraceDataset::generate(&config, 2, 200, 3);
/// let all: Vec<usize> = (0..ds.len()).collect();
/// let harvest = NaturalLeakageDetector::new().detect(&ds, 3, &all);
/// println!("qubit 4 natural leakage: {:.3}%", harvest.leakage_fraction() * 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct NaturalLeakageDetector {
    clusterer: SpectralClustering,
    merge_threshold: f64,
}

impl NaturalLeakageDetector {
    /// Creates a detector with the default spectral-clustering settings.
    pub fn new() -> Self {
        Self {
            clusterer: SpectralClustering::new(3).with_seed(17),
            merge_threshold: 0.5,
        }
    }

    /// Replaces the spectral clusterer (must target 3 clusters).
    pub fn with_clusterer(mut self, clusterer: SpectralClustering) -> Self {
        self.clusterer = clusterer;
        self
    }

    /// Sets the leak-cluster separation threshold (default 0.5): if the
    /// candidate leakage centroid sits closer than
    /// `threshold x d(|0⟩, |1⟩ centroids)` to a computational centroid, the
    /// qubit is deemed leak-free and the candidate cluster is merged back —
    /// this is what k=3 clustering produces when no leakage lobe exists and
    /// a computational lobe gets split instead.
    pub fn with_merge_threshold(mut self, threshold: f64) -> Self {
        self.merge_threshold = threshold;
        self
    }

    /// Clusters qubit `q`'s MTV points for the dataset shots selected by
    /// `indices` and labels the clusters.
    ///
    /// # Panics
    ///
    /// Panics if `indices` has fewer than three shots, or the dataset is not
    /// a readout dataset of the detector's chip.
    pub fn detect(&self, dataset: &TraceDataset, q: usize, indices: &[usize]) -> LeakageHarvest {
        assert!(indices.len() >= 3, "need at least three shots to cluster");
        let demod = Demodulator::new(dataset.config());
        let mtv_points: Vec<[f64; 2]> = indices
            .iter()
            .map(|&i| {
                let bb = demod.demodulate(dataset.raw(i), q);
                let z = mean_trace_value(&bb);
                [z.re, z.im]
            })
            .collect();
        let points: Vec<Vec<f64>> = mtv_points.iter().map(|p| p.to_vec()).collect();

        // Outlier-enriched subsample for the spectral eigensolve: leaked
        // traces can be well under 1% of the data, so a uniform subsample
        // would drop the leakage lobe entirely. Rank every point by its
        // distance to the nearest of two computational centroids (quick
        // 2-means) and guarantee the farthest points a seat.
        const MAX_EIGEN_POINTS: usize = 240;
        let sub_idx: Vec<usize> = if points.len() <= MAX_EIGEN_POINTS {
            (0..points.len()).collect()
        } else {
            let km = KMeans::new(2).with_seed(17).fit(&points);
            let dist = |p: &[f64]| -> f64 {
                km.centroids
                    .iter()
                    .map(|c| (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2))
                    .fold(f64::INFINITY, f64::min)
            };
            let dists: Vec<f64> = points.iter().map(|p| dist(p)).collect();
            let median = mlr_num::median(&dists);
            let mut order: Vec<usize> = (0..points.len()).collect();
            order.sort_by(|&a, &b| dists[b].partial_cmp(&dists[a]).expect("finite"));
            let n_outliers = order
                .iter()
                .take(MAX_EIGEN_POINTS / 2)
                .filter(|&&i| dists[i] > 6.25 * median) // (2.5 x sqrt-median)^2
                .count();
            let mut chosen: Vec<usize> = order[..n_outliers].to_vec();
            // Deterministic stride fill with bulk points.
            let rest: Vec<usize> = order[n_outliers..].to_vec();
            let need = MAX_EIGEN_POINTS - n_outliers;
            let stride = (rest.len() / need.max(1)).max(1);
            chosen.extend(rest.iter().step_by(stride).take(need).copied());
            chosen.sort_unstable();
            chosen
        };
        let sub_points: Vec<Vec<f64>> = sub_idx.iter().map(|&i| points[i].clone()).collect();
        let sub_result = self.clusterer.fit(&sub_points);

        // Extend cluster assignments to every point by nearest centroid.
        let nearest_cluster = |p: &[f64]| -> usize {
            sub_result
                .centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da = (p[0] - a[0]).powi(2) + (p[1] - a[1]).powi(2);
                    let db = (p[0] - b[0]).powi(2) + (p[1] - b[1]).powi(2);
                    da.partial_cmp(&db).expect("finite")
                })
                .map(|(c, _)| c)
                .expect("three clusters")
        };
        let mut assignments = vec![0usize; points.len()];
        for (pos, &i) in sub_idx.iter().enumerate() {
            assignments[i] = sub_result.assignments[pos];
        }
        let in_sub: std::collections::HashSet<usize> = sub_idx.iter().copied().collect();
        for (i, p) in points.iter().enumerate() {
            if !in_sub.contains(&i) {
                assignments[i] = nearest_cluster(p);
            }
        }
        let result = mlr_cluster::SpectralResult {
            assignments,
            centroids: sub_result.centroids,
            eigenvalues: sub_result.eigenvalues,
        };

        // Majority prepared label per cluster; the cluster least aligned
        // with a computational preparation (and smallest) becomes leakage.
        let mut votes = [[0usize; 2]; 3]; // votes[cluster][prepared_level]
        for (pos, &i) in indices.iter().enumerate() {
            let prepared = dataset.label(i, q).min(1);
            votes[result.assignments[pos]][prepared] += 1;
        }
        let sizes: Vec<usize> = votes.iter().map(|v| v[0] + v[1]).collect();

        // Pick the |0> cluster as the one with the highest share of
        // prepared-0 traces, the |1> cluster analogously among the rest, and
        // whatever remains is the leakage cluster. Shares (not raw counts)
        // keep the tiny leakage cluster from "winning" a majority.
        let share = |c: usize, l: usize| -> f64 {
            if sizes[c] == 0 {
                return 0.0;
            }
            votes[c][l] as f64 / sizes[c] as f64
        };
        // Candidate assignment: maximise share0(c0) + share1(c1) over the
        // six permutations of three clusters into (zero, one, leak).
        let mut best: (f64, [usize; 3]) = (f64::NEG_INFINITY, [0, 1, 2]);
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for perm in perms {
            let [c0, c1, cl] = perm;
            // Prefer assignments whose leakage cluster is small: weight by
            // the negative leaked-cluster size fraction.
            let total: usize = sizes.iter().sum();
            let score = share(c0, 0) + share(c1, 1) - 0.5 * sizes[cl] as f64 / total.max(1) as f64;
            if score > best.0 {
                best = (score, perm);
            }
        }
        let [c0, c1, cl] = best.1;
        let mut cluster_to_level = [0usize; 3];
        cluster_to_level[c0] = 0;
        cluster_to_level[c1] = 1;
        cluster_to_level[cl] = 2;

        // Leak-free guard: a genuine |2> lobe sits far from both
        // computational lobes; a split computational lobe does not. Merge a
        // non-separated candidate back into its nearest computational
        // cluster.
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
        };
        let d01 = dist(&result.centroids[c0], &result.centroids[c1]);
        let d_leak = dist(&result.centroids[cl], &result.centroids[c0])
            .min(dist(&result.centroids[cl], &result.centroids[c1]));
        if d_leak < self.merge_threshold * d01 {
            let nearest_comp = if dist(&result.centroids[cl], &result.centroids[c0])
                <= dist(&result.centroids[cl], &result.centroids[c1])
            {
                0
            } else {
                1
            };
            cluster_to_level[cl] = nearest_comp;
        }

        let assigned_levels: Vec<usize> = result
            .assignments
            .iter()
            .map(|&c| cluster_to_level[c])
            .collect();
        let leaked_positions: Vec<usize> = assigned_levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 2)
            .map(|(p, _)| p)
            .collect();
        let mut cluster_sizes = [0usize; 3];
        for &l in &assigned_levels {
            cluster_sizes[l] += 1;
        }
        LeakageHarvest {
            assigned_levels,
            leaked_positions,
            mtv_points,
            cluster_sizes,
        }
    }
}

impl Default for NaturalLeakageDetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_sim::ChipConfig;

    /// Two-level dataset on a chip with deliberately boosted natural leakage
    /// so a small test set still contains leaked traces.
    fn leaky_dataset() -> TraceDataset {
        let mut c = ChipConfig::five_qubit_paper();
        // Long enough past the 100 ns ring-up for the MTV lobes to separate.
        c.n_samples = 250;
        c.qubits[3].prep_leak_prob = 0.08;
        TraceDataset::generate(&c, 2, 40, 21)
    }

    #[test]
    fn finds_natural_leakage_without_calibration() {
        let ds = leaky_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let harvest = NaturalLeakageDetector::new().detect(&ds, 3, &all);

        // Ground truth: which analysed shots actually started leaked.
        let truly_leaked: Vec<bool> = all
            .iter()
            .map(|&i| ds.initial_level(i, 3).is_leaked())
            .collect();
        let n_true = truly_leaked.iter().filter(|&&b| b).count();
        assert!(n_true >= 10, "test set should contain real leakage");

        // Recall: most truly leaked shots land in the leakage cluster.
        let found = harvest
            .leaked_positions
            .iter()
            .filter(|&&p| truly_leaked[p])
            .count();
        let recall = found as f64 / n_true as f64;
        assert!(recall > 0.6, "leakage recall {recall}");

        // The leakage cluster is far smaller than the computational ones.
        assert!(harvest.cluster_sizes[2] < harvest.cluster_sizes[0]);
        assert!(harvest.cluster_sizes[2] < harvest.cluster_sizes[1]);
    }

    #[test]
    fn computational_clusters_follow_preparation() {
        let ds = leaky_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let harvest = NaturalLeakageDetector::new().detect(&ds, 0, &all);
        // For the clean qubit 0, discovered labels should mostly agree with
        // prepared labels.
        let agree = all
            .iter()
            .enumerate()
            .filter(|(p, &i)| harvest.assigned_levels[*p] == ds.label(i, 0))
            .count();
        assert!(
            agree as f64 / all.len() as f64 > 0.9,
            "agree {} / {} ; cluster sizes {:?}",
            agree,
            all.len(),
            harvest.cluster_sizes
        );
    }

    #[test]
    fn mtv_points_parallel_indices() {
        let ds = leaky_dataset();
        let some: Vec<usize> = (0..50).collect();
        let harvest = NaturalLeakageDetector::new().detect(&ds, 1, &some);
        assert_eq!(harvest.mtv_points.len(), 50);
        assert_eq!(harvest.assigned_levels.len(), 50);
    }
}
