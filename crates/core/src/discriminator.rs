//! The discriminator abstraction and the evaluation harness shared by the
//! proposed design and every baseline.

use mlr_num::Complex;
use mlr_sim::TraceDataset;

/// A multi-level readout discriminator: maps raw composite ADC traces to
/// per-qubit level decisions, one shot at a time or as a batch.
///
/// Implemented by [`crate::OursDiscriminator`] and by every baseline in
/// `mlr-baselines`, so the evaluation and reproduction harnesses can treat
/// them uniformly. The harness-facing entry point is
/// [`Discriminator::predict_batch`]: [`evaluate`] and the bench/CLI layers
/// feed whole shot sets through it, and implementations with a cheaper
/// amortised path (shared demodulation, standardise-once, one-time head
/// quantisation) override it. The `Sync` supertrait is what lets the
/// default implementation fan shots out across threads.
pub trait Discriminator: Sync {
    /// Classifies one raw multiplexed trace, returning the level index
    /// (`0`, `1`, `2`) decided for each qubit.
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize>;

    /// Classifies a batch of raw traces, returning one per-qubit decision
    /// vector per shot, in input order.
    ///
    /// The default implementation fans [`Discriminator::predict_shot`] out
    /// over the machine's cores ([`crate::par_map`]); overrides must
    /// decide every shot exactly as the per-shot path does (the
    /// workspace's property tests enforce this equivalence).
    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        crate::par_map(shots, |raw| self.predict_shot(raw))
    }

    /// Human-readable design name as used in the paper's tables
    /// (e.g. `"FNN"`, `"HERQULES"`, `"OURS"`).
    fn name(&self) -> &str;

    /// Number of qubits the discriminator decides for.
    fn n_qubits(&self) -> usize;

    /// Total neural-network weight count (0 for training-free designs such
    /// as LDA/QDA); the model-size figure the paper compares.
    fn weight_count(&self) -> usize;
}

/// Per-qubit readout fidelities of a discriminator on a set of shots.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Design name (copied from the discriminator).
    pub design: String,
    /// Per-qubit **balanced** assignment fidelity: the per-level recall
    /// averaged over the levels present in the evaluation set. This is the
    /// standard readout-fidelity definition (each prepared level weighted
    /// equally) and what the paper's tables report — under the paper's
    /// natural-leakage methodology the raw class counts are wildly
    /// imbalanced, so a micro average would hide leakage misdetection.
    pub per_qubit_fidelity: Vec<f64>,
    /// Per-qubit plain (micro) accuracy over the evaluated shots.
    pub per_qubit_micro: Vec<f64>,
    /// Per-qubit, per-level recall: `recall[q][l]` is the fraction of
    /// level-`l` shots of qubit `q` decided correctly (`NaN`-free: levels
    /// absent from the evaluation set report 0 and are excluded from the
    /// balanced average).
    pub per_level_recall: Vec<Vec<f64>>,
    /// Fraction of shots where every qubit was decided correctly.
    pub joint_accuracy: f64,
    /// Number of shots evaluated.
    pub n_shots: usize,
}

impl EvalReport {
    /// The paper's cumulative accuracy: geometric mean of the per-qubit
    /// fidelities (`F5Q` in Tables II and IV).
    pub fn geometric_mean_fidelity(&self) -> f64 {
        mlr_nn::geometric_mean(&self.per_qubit_fidelity)
    }

    /// Mean readout error (1 − mean fidelity), optionally excluding qubits
    /// listed in `exclude` — the paper excludes qubit 2 (index 1) from the
    /// Table VI error column due to its setup limitations.
    pub fn mean_error_excluding(&self, exclude: &[usize]) -> f64 {
        let kept: Vec<f64> = self
            .per_qubit_fidelity
            .iter()
            .enumerate()
            .filter(|(q, _)| !exclude.contains(q))
            .map(|(_, &f)| f)
            .collect();
        if kept.is_empty() {
            return 0.0;
        }
        1.0 - kept.iter().sum::<f64>() / kept.len() as f64
    }
}

/// Borrows the raw traces of the selected dataset shots — the glue
/// between index-based splits and the slice-based batch API.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn gather_shots<'d>(dataset: &'d TraceDataset, indices: &[usize]) -> Vec<&'d [Complex]> {
    indices.iter().map(|&i| dataset.raw(i)).collect()
}

/// Evaluates a discriminator on the dataset shots selected by `indices`
/// (typically a test split), scoring each qubit's decision against the
/// dataset's label ([`mlr_sim::LabelSource`]) and reporting **balanced**
/// per-qubit fidelities, as the paper's tables do.
///
/// All decisions come from one [`Discriminator::predict_batch`] call, so
/// natively batched designs evaluate at their amortised cost.
///
/// # Panics
///
/// Panics if `indices` is empty or out of range for the dataset.
pub fn evaluate(
    disc: &(impl Discriminator + ?Sized),
    dataset: &TraceDataset,
    indices: &[usize],
) -> EvalReport {
    assert!(!indices.is_empty(), "no shots to evaluate");
    let n_qubits = disc.n_qubits();
    let levels = dataset.levels();
    let shots = gather_shots(dataset, indices);
    let decisions = disc.predict_batch(&shots);
    // hits[q][l], counts[q][l]
    let mut hits = vec![vec![0usize; levels]; n_qubits];
    let mut counts = vec![vec![0usize; levels]; n_qubits];
    let mut joint_hits = 0usize;
    for (&i, decided) in indices.iter().zip(&decisions) {
        assert_eq!(decided.len(), n_qubits, "discriminator output width");
        let mut all = true;
        for q in 0..n_qubits {
            let truth = dataset.label(i, q);
            counts[q][truth] += 1;
            if decided[q] == truth {
                hits[q][truth] += 1;
            } else {
                all = false;
            }
        }
        if all {
            joint_hits += 1;
        }
    }
    let n = indices.len() as f64;
    let per_level_recall: Vec<Vec<f64>> = (0..n_qubits)
        .map(|q| {
            (0..levels)
                .map(|l| {
                    if counts[q][l] == 0 {
                        0.0
                    } else {
                        hits[q][l] as f64 / counts[q][l] as f64
                    }
                })
                .collect()
        })
        .collect();
    let per_qubit_fidelity: Vec<f64> = (0..n_qubits)
        .map(|q| {
            let present: Vec<f64> = (0..levels)
                .filter(|&l| counts[q][l] > 0)
                .map(|l| per_level_recall[q][l])
                .collect();
            present.iter().sum::<f64>() / present.len().max(1) as f64
        })
        .collect();
    let per_qubit_micro: Vec<f64> = (0..n_qubits)
        .map(|q| hits[q].iter().sum::<usize>() as f64 / n)
        .collect();
    EvalReport {
        design: disc.name().to_owned(),
        per_qubit_fidelity,
        per_qubit_micro,
        per_level_recall,
        joint_accuracy: joint_hits as f64 / n,
        n_shots: indices.len(),
    }
}

/// Per-qubit confusion matrices of a discriminator over the dataset shots
/// selected by `indices` (`matrix[q].count(truth, decided)`).
///
/// The balanced fidelities of [`evaluate`] are derivable from these, but
/// the full matrices additionally expose *which* confusions dominate —
/// e.g. HERQULES misreading `|2⟩` as `|1⟩` (the Fig. 1(c) mechanism).
/// Decisions come from one [`Discriminator::predict_batch`] call.
///
/// # Panics
///
/// Panics if `indices` is empty or out of range.
pub fn evaluate_confusion(
    disc: &(impl Discriminator + ?Sized),
    dataset: &TraceDataset,
    indices: &[usize],
) -> Vec<mlr_nn::ConfusionMatrix> {
    assert!(!indices.is_empty(), "no shots to evaluate");
    let n_qubits = disc.n_qubits();
    let levels = dataset.levels();
    let shots = gather_shots(dataset, indices);
    let decisions = disc.predict_batch(&shots);
    let mut matrices = vec![mlr_nn::ConfusionMatrix::new(levels); n_qubits];
    for (&i, decided) in indices.iter().zip(&decisions) {
        for (q, matrix) in matrices.iter_mut().enumerate() {
            matrix.record(dataset.label(i, q), decided[q]);
        }
    }
    matrices
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_sim::ChipConfig;

    /// A fake discriminator that always answers a fixed level.
    struct Constant(usize, usize);

    impl Discriminator for Constant {
        fn predict_shot(&self, _raw: &[Complex]) -> Vec<usize> {
            vec![self.0; self.1]
        }
        fn name(&self) -> &str {
            "CONST"
        }
        fn n_qubits(&self) -> usize {
            self.1
        }
        fn weight_count(&self) -> usize {
            0
        }
    }

    fn tiny_dataset() -> TraceDataset {
        let mut c = ChipConfig::five_qubit_paper();
        c.n_samples = 30;
        TraceDataset::generate(&c, 2, 2, 3)
    }

    #[test]
    fn constant_predictor_scores_class_prior() {
        let ds = tiny_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let report = evaluate(&Constant(0, 5), &ds, &all);
        // Half the prepared two-level states have each qubit in |0>.
        for q in 0..5 {
            assert!((report.per_qubit_fidelity[q] - 0.5).abs() < 1e-12, "q{q}");
        }
        // Exactly the two |00000> shots are jointly correct.
        assert!((report.joint_accuracy - 2.0 / 64.0).abs() < 1e-12);
        assert_eq!(report.design, "CONST");
        assert_eq!(report.n_shots, 64);
    }

    #[test]
    fn error_exclusion_matches_manual() {
        let report = EvalReport {
            design: "X".into(),
            per_qubit_fidelity: vec![0.9, 0.5, 0.95],
            per_qubit_micro: vec![0.9, 0.5, 0.95],
            per_level_recall: vec![],
            joint_accuracy: 0.0,
            n_shots: 1,
        };
        // Excluding the weak middle qubit.
        let err = report.mean_error_excluding(&[1]);
        assert!((err - (1.0 - 0.925)).abs() < 1e-12);
        let err_all = report.mean_error_excluding(&[]);
        assert!((err_all - (1.0 - (0.9 + 0.5 + 0.95) / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_consistency() {
        let report = EvalReport {
            design: "X".into(),
            per_qubit_fidelity: vec![0.81, 1.0],
            per_qubit_micro: vec![0.81, 1.0],
            per_level_recall: vec![],
            joint_accuracy: 0.0,
            n_shots: 1,
        };
        assert!((report.geometric_mean_fidelity() - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no shots to evaluate")]
    fn empty_indices_rejected() {
        let ds = tiny_dataset();
        let _ = evaluate(&Constant(0, 5), &ds, &[]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // qubit index addresses matrices and the report
    fn confusion_matrices_match_evaluate() {
        let ds = tiny_dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let disc = Constant(1, 5);
        let matrices = evaluate_confusion(&disc, &ds, &all);
        let report = evaluate(&disc, &ds, &all);
        assert_eq!(matrices.len(), 5);
        for q in 0..5 {
            // Everything is predicted |1>, so column 1 holds all mass and
            // the per-level recall of |1> is 1, of the others 0.
            let m = &matrices[q];
            assert_eq!(m.total(), ds.len() as u64);
            assert_eq!(m.count(1, 1) as f64 / 32.0, report.per_level_recall[q][1]);
            assert_eq!(m.count(0, 0), 0);
        }
    }
}
