//! Autoencoder-assisted readout, after Luchi et al. (Phys. Rev. Applied
//! 20, 014045) — the "autoencoders" line of related work in Sec. I.
//!
//! Each qubit's demodulated, decimated trace is compressed by a dense
//! autoencoder trained unsupervised on reconstruction MSE; a small
//! classifier head then decides the level from the bottleneck code. The
//! point of the baseline: representation learning recovers some
//! trace-shape information an integrated-IQ discriminator throws away, but
//! at a parameter cost between the IQ methods and the raw-trace FNN, and
//! still per-qubit (no crosstalk correction) — exactly the gap the paper's
//! matched-filter features close at a fraction of the size.

use crate::plan::{
    self, AffineOp, Branch, CompiledPlan, DenseOp, MfBankOp, Op, OpGraph, OutputStage,
};
use crate::Discriminator;
use mlr_dsp::{boxcar_decimate, iq_features, Demodulator};
use mlr_nn::{Mlp, RegressionData, Standardizer, TrainConfig, TrainData};
use mlr_num::Complex;
use mlr_sim::{DatasetSplit, TraceDataset};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`AutoencoderBaseline::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoencoderConfig {
    /// ADC samples averaged into one decimated sample before encoding.
    /// 25 samples (50 ns at 500 MS/s) keeps 20 complex points (40 real
    /// features) of a 500-sample trace; wide windows matter because each
    /// feature's SNR grows with the samples integrated into it.
    pub decimation: usize,
    /// Width of the bottleneck code the classifier heads read.
    pub bottleneck: usize,
    /// Hidden width of encoder and decoder (one hidden layer each side).
    pub hidden: usize,
    /// Reconstruction (MSE) training hyper-parameters.
    pub ae_train: TrainConfig,
    /// Classifier-head training hyper-parameters.
    pub head_train: TrainConfig,
    /// Cap on inverse-frequency class weights for the heads (leaked traces
    /// are rare under natural-leakage datasets).
    pub class_weight_cap: f32,
}

impl Default for AutoencoderConfig {
    fn default() -> Self {
        Self {
            decimation: 25,
            bottleneck: 12,
            hidden: 32,
            // Small validation splits make early *stopping* erratic for the
            // reconstruction stage; fixed epochs with best-epoch restore is
            // stabler. The same holds for the heads.
            ae_train: TrainConfig {
                epochs: 120,
                batch_size: 64,
                learning_rate: 1e-3,
                early_stop_patience: None,
                ..TrainConfig::default()
            },
            head_train: TrainConfig {
                epochs: 80,
                batch_size: 64,
                learning_rate: 2e-3,
                early_stop_patience: None,
                ..TrainConfig::default()
            },
            class_weight_cap: 100.0,
        }
    }
}

/// One qubit's autoencoder + classifier-head stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QubitAe {
    standardizer: Standardizer,
    autoencoder: Mlp,
    head: Mlp,
}

impl QubitAe {
    /// Index of the bottleneck within [`Mlp::layer_outputs`] for the
    /// `[D, hidden, bottleneck, hidden, D]` topology: input is entry 0, so
    /// the bottleneck activation is entry 2.
    const BOTTLENECK_LAYER: usize = 2;

    fn encode(&self, features: &[f64]) -> Vec<f32> {
        let x = self.standardizer.transform_f32(features);
        self.autoencoder.layer_outputs(&x)[Self::BOTTLENECK_LAYER].clone()
    }

    fn predict(&self, features: &[f64]) -> usize {
        self.head.predict(&self.encode(features))
    }
}

/// Per-qubit autoencoder baseline implementing [`Discriminator`].
///
/// # Examples
///
/// ```no_run
/// use mlr_core::{AutoencoderBaseline, AutoencoderConfig};
/// use mlr_core::evaluate;
/// use mlr_sim::{ChipConfig, TraceDataset};
///
/// let config = ChipConfig::five_qubit_paper();
/// let dataset = TraceDataset::generate(&config, 3, 40, 7);
/// let split = dataset.split(0.5, 0.1, 7);
/// let ae = AutoencoderBaseline::fit(&dataset, &split, &AutoencoderConfig::default());
/// let report = evaluate(&ae, &dataset, &split.test);
/// println!("AE F5Q = {:.4}", report.geometric_mean_fidelity());
/// ```
#[derive(Debug, Clone)]
pub struct AutoencoderBaseline {
    demod: Demodulator,
    models: Vec<QubitAe>,
    decimation: usize,
    /// Fused single-pass plan — derived data, rebuilt by every
    /// constructor, never serialised. Demodulate + boxcar-decimate is
    /// linear in the raw trace, so each decimated IQ feature becomes one
    /// kernel row; the per-qubit encoder + head chains ride as dense
    /// branches over `take` slices of the concatenated feature bank.
    plan: CompiledPlan,
}

/// Builds the autoencoder op graph.
///
/// Each qubit's feature vector is `iq_features(boxcar_decimate(demod, dec))`
/// — `m = ⌈n/dec⌉` complex points laid out I-block-then-Q-block (width
/// `D = 2m`). Both maps are linear, so feature `I_j` (the mean of chunk
/// `j`'s demodulated real parts) is a dot against the interleaved raw
/// trace:
///
/// ```text
/// I_j: row[2t] =  ref.re[t]/L_j,  row[2t+1] = −ref.im[t]/L_j   (t ∈ chunk j)
/// Q_j: row[2t] =  ref.im[t]/L_j,  row[2t+1] =  ref.re[t]/L_j
/// ```
///
/// with `L_j` the chunk's actual length (the trailing chunk may be
/// partial, matching `boxcar_decimate`). The bank concatenates every
/// qubit's `D` rows; the trunk affine concatenates the per-qubit
/// standardizers, which the forward fold then absorbs into each branch's
/// first encoder layer through its `take` slice.
fn ae_graph(demod: &Demodulator, models: &[QubitAe], decimation: usize) -> OpGraph {
    let n = demod.n_samples();
    let m = n.div_ceil(decimation);
    let width = 2 * m;
    let mut rows = Vec::with_capacity(models.len() * width);
    let mut scale = Vec::with_capacity(models.len() * width);
    let mut shift = Vec::with_capacity(models.len() * width);
    let mut branches = Vec::with_capacity(models.len());
    for (q, model) in models.iter().enumerate() {
        let refs = demod.reference(q);
        // I-feature rows then Q-feature rows — iq_features' block layout.
        for im_part in [false, true] {
            for j in 0..m {
                let chunk = j * decimation..((j + 1) * decimation).min(n);
                let len = chunk.len() as f64;
                let mut row = vec![0.0f64; 2 * n];
                for t in chunk {
                    let r = refs[t];
                    if im_part {
                        row[2 * t] = r.im / len;
                        row[2 * t + 1] = r.re / len;
                    } else {
                        row[2 * t] = r.re / len;
                        row[2 * t + 1] = -r.im / len;
                    }
                }
                rows.push(row);
            }
        }
        let std = &model.standardizer;
        scale.extend(std.stds().iter().map(|&s| 1.0 / s));
        shift.extend(std.means().iter().zip(std.stds()).map(|(&mu, &s)| -mu / s));
        // Encoder half of the autoencoder (layers 0..=1, ending at the
        // bottleneck activation), then the classifier head.
        let mut layers = vec![
            DenseOp::from_mlp_layer(&model.autoencoder, 0),
            DenseOp::from_mlp_layer(&model.autoencoder, 1),
        ];
        layers.extend(DenseOp::chain_from_mlp(&model.head));
        branches.push(Branch {
            take: Some(q * width..(q + 1) * width),
            layers,
        });
    }
    let bias = vec![0.0; rows.len()];
    OpGraph {
        trunk: vec![
            Op::FlattenIq { n_samples: n },
            Op::MfBank(MfBankOp {
                rows,
                bias,
                relu: false,
            }),
            Op::Affine(AffineOp { scale, shift }),
        ],
        output: OutputStage::PerQubit { branches },
    }
}

impl AutoencoderBaseline {
    /// Fits one autoencoder + head per qubit from the training split; the
    /// validation split (if nonempty) drives early stopping of both stages.
    ///
    /// # Panics
    ///
    /// Panics if the training split is empty or indexes out of range, or if
    /// decimation leaves no samples.
    pub fn fit(dataset: &TraceDataset, split: &DatasetSplit, config: &AutoencoderConfig) -> Self {
        assert!(!split.train.is_empty(), "empty training split");
        assert!(config.decimation > 0, "decimation must be positive");
        let chip = dataset.config();
        assert!(
            chip.n_samples >= config.decimation,
            "decimation leaves no samples"
        );
        let demod = Demodulator::new(chip);
        let levels = dataset.levels();

        let features_of = |q: usize, indices: &[usize]| -> Vec<Vec<f64>> {
            indices
                .par_iter()
                .map(|&i| {
                    iq_features(&boxcar_decimate(
                        &demod.demodulate(dataset.raw(i), q),
                        config.decimation,
                    ))
                })
                .collect()
        };

        let models = (0..chip.n_qubits())
            .map(|q| {
                let train_raw = features_of(q, &split.train);
                let standardizer = Standardizer::fit(&train_raw).expect("nonempty training batch");
                let to_f32 = |rows: &[Vec<f64>]| -> Vec<Vec<f32>> {
                    rows.iter().map(|r| standardizer.transform_f32(r)).collect()
                };
                let train_x = to_f32(&train_raw);
                let val_x = if split.val.is_empty() {
                    None
                } else {
                    Some(to_f32(&features_of(q, &split.val)))
                };

                // Stage 1: unsupervised reconstruction.
                let d = train_x[0].len();
                let sizes = [d, config.hidden, config.bottleneck, config.hidden, d];
                let mut autoencoder = Mlp::new(&sizes, config.ae_train.seed.wrapping_add(q as u64));
                let ae_data = RegressionData::identity(train_x.clone()).expect("validated batch");
                let ae_val = val_x
                    .as_ref()
                    .map(|vx| RegressionData::identity(vx.clone()).expect("validated batch"));
                autoencoder.train_regression(&ae_data, ae_val.as_ref(), &config.ae_train);

                // Stage 2: supervised head on the bottleneck code.
                let stack = QubitAe {
                    standardizer,
                    autoencoder,
                    head: Mlp::new(&[config.bottleneck, 16, levels], 0),
                };
                let encode_rows = |rows: &[Vec<f32>]| -> Vec<Vec<f32>> {
                    rows.iter()
                        .map(|r| {
                            stack.autoencoder.layer_outputs(r)[QubitAe::BOTTLENECK_LAYER].clone()
                        })
                        .collect()
                };
                let codes = encode_rows(&train_x);
                let labels: Vec<usize> = split.train.iter().map(|&i| dataset.label(i, q)).collect();
                let data = TrainData::new(codes, labels, levels).expect("validated codes");
                let val_data = val_x.as_ref().map(|vx| {
                    let vcodes = encode_rows(vx);
                    let vlabels: Vec<usize> =
                        split.val.iter().map(|&i| dataset.label(i, q)).collect();
                    TrainData::new(vcodes, vlabels, levels).expect("validated codes")
                });
                let mut head = Mlp::new(
                    &[config.bottleneck, 16, levels],
                    config.head_train.seed.wrapping_add(100 + q as u64),
                );
                let mut head_cfg = config.head_train.clone();
                head_cfg.seed = config.head_train.seed.wrapping_add(500 + q as u64);
                if head_cfg.class_weights.is_none() {
                    head_cfg.class_weights = Some(mlr_nn::inverse_frequency_weights(
                        data.labels(),
                        levels,
                        config.class_weight_cap,
                    ));
                }
                head.train(&data, val_data.as_ref(), &head_cfg);

                QubitAe { head, ..stack }
            })
            .collect::<Vec<QubitAe>>();

        let plan = plan::compile(ae_graph(&demod, &models, config.decimation));
        Self {
            demod,
            models,
            decimation: config.decimation,
            plan,
        }
    }

    /// Borrows the compiled single-pass inference plan.
    pub fn plan(&self) -> &CompiledPlan {
        &self.plan
    }

    /// Reference layered path — demodulate, decimate, standardise, encode,
    /// classify per stage — kept as the exactness reference the plan
    /// property tests compare against.
    pub fn predict_shot_layered(&self, raw: &[Complex]) -> Vec<usize> {
        self.models
            .iter()
            .enumerate()
            .map(|(q, model)| {
                let f = iq_features(&boxcar_decimate(
                    &self.demod.demodulate(raw, q),
                    self.decimation,
                ));
                model.predict(&f)
            })
            .collect()
    }

    /// Layered batch path ([`Self::predict_shot_layered`] fanned over
    /// cores).
    pub fn predict_batch_layered(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        crate::par_map(shots, |raw| self.predict_shot_layered(raw))
    }

    /// Decimation window in ADC samples.
    pub fn decimation(&self) -> usize {
        self.decimation
    }

    /// Mean reconstruction MSE of qubit `q`'s autoencoder over the dataset
    /// shots selected by `indices` — a diagnostic for how much trace
    /// structure the bottleneck retains.
    ///
    /// # Panics
    ///
    /// Panics if `q` or any index is out of range.
    pub fn reconstruction_mse(&self, dataset: &TraceDataset, q: usize, indices: &[usize]) -> f64 {
        let model = &self.models[q];
        let rows: Vec<Vec<f32>> = indices
            .iter()
            .map(|&i| {
                let f = iq_features(&boxcar_decimate(
                    &self.demod.demodulate(dataset.raw(i), q),
                    self.decimation,
                ));
                model.standardizer.transform_f32(&f)
            })
            .collect();
        let data = RegressionData::identity(rows).expect("nonempty indices");
        model.autoencoder.mse(&data)
    }
}

impl Discriminator for AutoencoderBaseline {
    /// Served by the fused plan: one pass over the raw trace scoring every
    /// qubit's decimated-feature rows, standardizer folded into the
    /// encoders, argmax fused into each head's final layer.
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        self.plan.predict_shot(raw)
    }

    /// Fused batch path: 16-shot tiles over the compiled plan.
    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.plan.predict_batch(shots)
    }

    fn name(&self) -> &str {
        "AE"
    }

    fn n_qubits(&self) -> usize {
        self.models.len()
    }

    fn weight_count(&self) -> usize {
        self.models
            .iter()
            .map(|m| m.autoencoder.weight_count() + m.head.weight_count())
            .sum()
    }
}

/// The serialisable body of a fitted [`AutoencoderBaseline`] inside the
/// registry's `SavedModel` v2 envelope; the demodulator is rebuilt from
/// the envelope's chip on load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SavedAutoencoder {
    models: Vec<QubitAe>,
    decimation: usize,
}

impl AutoencoderBaseline {
    pub(crate) fn to_saved(&self) -> SavedAutoencoder {
        SavedAutoencoder {
            models: self.models.clone(),
            decimation: self.decimation,
        }
    }

    pub(crate) fn from_saved(
        saved: SavedAutoencoder,
        chip: mlr_sim::ChipConfig,
    ) -> Result<Self, crate::ModelIoError> {
        if saved.models.len() != chip.n_qubits() {
            return Err(crate::ModelIoError::Invalid(format!(
                "{} autoencoder stacks for {} qubits",
                saved.models.len(),
                chip.n_qubits()
            )));
        }
        if saved.decimation == 0 || saved.decimation > chip.n_samples {
            return Err(crate::ModelIoError::Invalid(format!(
                "autoencoder decimation {} outside the {}-sample trace",
                saved.decimation, chip.n_samples
            )));
        }
        let demod = Demodulator::new(&chip);
        let plan = plan::compile(ae_graph(&demod, &saved.models, saved.decimation));
        Ok(Self {
            demod,
            models: saved.models,
            decimation: saved.decimation,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use mlr_sim::ChipConfig;

    fn dataset() -> (TraceDataset, DatasetSplit) {
        let mut c = ChipConfig::uniform(2);
        c.n_samples = 200;
        let ds = TraceDataset::generate(&c, 3, 30, 29);
        let split = ds.split(0.5, 0.1, 29);
        (ds, split)
    }

    fn quick_config() -> AutoencoderConfig {
        AutoencoderConfig::default()
    }

    #[test]
    fn discriminates_three_levels() {
        let (ds, split) = dataset();
        let ae = AutoencoderBaseline::fit(&ds, &split, &quick_config());
        let report = evaluate(&ae, &ds, &split.test);
        for (q, f) in report.per_qubit_fidelity.iter().enumerate() {
            assert!(*f > 0.7, "qubit {q} fidelity {f}");
        }
        assert_eq!(report.design, "AE");
    }

    #[test]
    fn bottleneck_reconstructs_better_than_nothing() {
        let (ds, split) = dataset();
        let ae = AutoencoderBaseline::fit(&ds, &split, &quick_config());
        // Standardised features have unit variance; predicting the mean
        // (all zeros) would give MSE ~1. The bottleneck must beat that.
        let mse = ae.reconstruction_mse(&ds, 0, &split.test);
        assert!(mse < 0.9, "reconstruction mse {mse}");
    }

    #[test]
    fn weight_count_sits_between_iq_methods_and_fnn() {
        let (ds, split) = dataset();
        let ae = AutoencoderBaseline::fit(&ds, &split, &quick_config());
        let w = ae.weight_count();
        assert!(w > 0);
        // Far below the 686k-weight FNN even summed over qubits.
        assert!(w < 100_000, "autoencoder stack weights {w}");
    }

    #[test]
    fn decimation_accessor() {
        let (ds, split) = dataset();
        let ae = AutoencoderBaseline::fit(&ds, &split, &quick_config());
        assert_eq!(ae.decimation(), 25);
    }

    #[test]
    fn plan_matches_layered_labels() {
        let (ds, split) = dataset();
        let ae = AutoencoderBaseline::fit(&ds, &split, &quick_config());
        let shots: Vec<&[Complex]> = split.test.iter().map(|&i| ds.raw(i)).collect();
        assert_eq!(ae.predict_batch(&shots), ae.predict_batch_layered(&shots));
        // One kernel row per (qubit, decimated IQ feature): 2 qubits ×
        // 2 × ⌈200/25⌉ = 32 rows, and the standardizer folded forward into
        // the encoder first layers.
        assert_eq!(ae.plan().n_kernel_rows(), 32);
        assert!(ae.plan().fuse_report().affine_into_dense);
    }

    #[test]
    #[should_panic(expected = "empty training split")]
    fn rejects_empty_split() {
        let (ds, _) = dataset();
        let empty = DatasetSplit::default();
        let _ = AutoencoderBaseline::fit(&ds, &empty, &AutoencoderConfig::default());
    }
}
