//! Per-qubit Gaussian discriminant analysis (LDA/QDA) on boxcar-integrated
//! IQ points — the classical baselines of Tables V and VI.

use crate::Discriminator;
use mlr_dsp::{integrate, Demodulator};
use mlr_linalg::{covariance_matrix, Cholesky, Matrix};
use mlr_num::Complex;
use mlr_sim::{DatasetSplit, TraceDataset};
use serde::{Deserialize, Serialize};

/// Which covariance model the discriminant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscriminantKind {
    /// Linear discriminant analysis: one covariance pooled across classes.
    Lda,
    /// Quadratic discriminant analysis: one covariance per class.
    Qda,
}

/// Per-class Gaussian model of one qubit's integrated IQ point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QubitModel {
    /// Class means, one per level.
    means: Vec<Vec<f64>>,
    /// Class log-priors.
    log_priors: Vec<f64>,
    /// Cholesky factors of the covariances: one per class for QDA, a single
    /// pooled entry for LDA.
    chols: Vec<Cholesky>,
    kind: DiscriminantKind,
}

impl QubitModel {
    fn discriminant(&self, x: &[f64], class: usize) -> f64 {
        let d: Vec<f64> = x
            .iter()
            .zip(&self.means[class])
            .map(|(a, b)| a - b)
            .collect();
        let chol = match self.kind {
            DiscriminantKind::Lda => &self.chols[0],
            DiscriminantKind::Qda => &self.chols[class],
        };
        let quad = chol.mahalanobis_sq(&d);
        let log_det = match self.kind {
            DiscriminantKind::Lda => 0.0, // common constant, drops out
            DiscriminantKind::Qda => chol.log_det(),
        };
        -0.5 * (quad + log_det) + self.log_priors[class]
    }

    fn predict(&self, x: &[f64]) -> usize {
        let scores: Vec<f64> = (0..self.means.len())
            .map(|c| self.discriminant(x, c))
            .collect();
        mlr_num::argmax(&scores).expect("at least one class")
    }
}

/// Training-free per-qubit LDA/QDA over demodulated, boxcar-integrated IQ
/// points (two features per qubit).
///
/// These are the "fast" classical rows of Table VI: cheap to fit and
/// evaluate, blind to trace-shape information (mid-readout decay), and
/// blind to other qubits' state (crosstalk) — which is exactly why the
/// matched-filter + NN designs beat them.
#[derive(Debug, Clone)]
pub struct DiscriminantAnalysis {
    demod: Demodulator,
    models: Vec<QubitModel>,
    kind: DiscriminantKind,
}

impl DiscriminantAnalysis {
    /// Ridge added to covariance diagonals so a Cholesky always exists.
    const RIDGE: f64 = 1e-9;

    /// Fits per-qubit class Gaussians from the training split.
    ///
    /// # Panics
    ///
    /// Panics if the training split is empty, indexes out of range, or a
    /// qubit is missing a level (no class statistics).
    pub fn fit(dataset: &TraceDataset, split: &DatasetSplit, kind: DiscriminantKind) -> Self {
        assert!(!split.train.is_empty(), "empty training split");
        let config = dataset.config();
        let demod = Demodulator::new(config);
        let levels = dataset.levels();

        let models = (0..config.n_qubits())
            .map(|q| {
                // Integrated IQ features per training shot.
                let feats: Vec<Vec<f64>> = split
                    .train
                    .iter()
                    .map(|&i| {
                        let z = integrate(&demod.demodulate(dataset.raw(i), q));
                        vec![z.re, z.im]
                    })
                    .collect();
                let labels: Vec<usize> = split.train.iter().map(|&i| dataset.label(i, q)).collect();

                let mut means = Vec::with_capacity(levels);
                let mut log_priors = Vec::with_capacity(levels);
                let mut class_covs = Vec::with_capacity(levels);
                let mut counts = Vec::with_capacity(levels);
                for c in 0..levels {
                    let members: Vec<&Vec<f64>> = feats
                        .iter()
                        .zip(&labels)
                        .filter(|(_, &l)| l == c)
                        .map(|(f, _)| f)
                        .collect();
                    assert!(
                        !members.is_empty(),
                        "qubit {q} has no training traces for level {c}"
                    );
                    let data = Matrix::from_fn(members.len(), 2, |i, j| members[i][j]);
                    means.push(mlr_linalg::mean_vector(&data));
                    log_priors.push((members.len() as f64 / feats.len() as f64).ln());
                    class_covs.push(covariance_matrix(&data));
                    counts.push(members.len());
                }

                let ridge = |m: &Matrix| -> Matrix {
                    let mut r = m.clone();
                    for i in 0..r.rows() {
                        r[(i, i)] += Self::RIDGE + 1e-12 * r[(i, i)].abs();
                    }
                    r
                };

                let chols: Vec<Cholesky> = match kind {
                    DiscriminantKind::Qda => class_covs
                        .iter()
                        .map(|c| ridge(c).cholesky().expect("SPD covariance"))
                        .collect(),
                    DiscriminantKind::Lda => {
                        // Pooled covariance, weighted by class df.
                        let total_df: f64 = counts.iter().map(|&n| (n.max(2) - 1) as f64).sum();
                        let mut pooled = Matrix::zeros(2, 2);
                        for (cov, &n) in class_covs.iter().zip(&counts) {
                            pooled = &pooled + &cov.scale((n.max(2) - 1) as f64 / total_df);
                        }
                        vec![ridge(&pooled).cholesky().expect("SPD covariance")]
                    }
                };

                QubitModel {
                    means,
                    log_priors,
                    chols,
                    kind,
                }
            })
            .collect();

        Self {
            demod,
            models,
            kind,
        }
    }

    /// The covariance model in use.
    pub fn kind(&self) -> DiscriminantKind {
        self.kind
    }
}

impl Discriminator for DiscriminantAnalysis {
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        self.models
            .iter()
            .enumerate()
            .map(|(q, model)| {
                let z = integrate(&self.demod.demodulate(raw, q));
                model.predict(&[z.re, z.im])
            })
            .collect()
    }

    fn name(&self) -> &str {
        match self.kind {
            DiscriminantKind::Lda => "LDA",
            DiscriminantKind::Qda => "QDA",
        }
    }

    fn n_qubits(&self) -> usize {
        self.models.len()
    }

    fn weight_count(&self) -> usize {
        0 // no neural network
    }
}

/// The serialisable body of a fitted [`DiscriminantAnalysis`] inside the
/// registry's `SavedModel` v2 envelope; the demodulator is rebuilt from
/// the envelope's chip on load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SavedDiscriminant {
    models: Vec<QubitModel>,
    kind: DiscriminantKind,
}

impl DiscriminantAnalysis {
    pub(crate) fn to_saved(&self) -> SavedDiscriminant {
        SavedDiscriminant {
            models: self.models.clone(),
            kind: self.kind,
        }
    }

    pub(crate) fn from_saved(
        saved: SavedDiscriminant,
        chip: mlr_sim::ChipConfig,
    ) -> Result<Self, crate::ModelIoError> {
        if saved.models.len() != chip.n_qubits() {
            return Err(crate::ModelIoError::Invalid(format!(
                "{} discriminant models for {} qubits",
                saved.models.len(),
                chip.n_qubits()
            )));
        }
        Ok(Self {
            demod: Demodulator::new(&chip),
            models: saved.models,
            kind: saved.kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use mlr_sim::ChipConfig;

    fn dataset() -> (TraceDataset, DatasetSplit) {
        let mut c = ChipConfig::uniform(2);
        c.n_samples = 150;
        let ds = TraceDataset::generate(&c, 3, 30, 17);
        let split = ds.split(0.5, 0.0, 17);
        (ds, split)
    }

    #[test]
    fn lda_and_qda_discriminate_three_levels() {
        let (ds, split) = dataset();
        for kind in [DiscriminantKind::Lda, DiscriminantKind::Qda] {
            let da = DiscriminantAnalysis::fit(&ds, &split, kind);
            let report = evaluate(&da, &ds, &split.test);
            for (q, f) in report.per_qubit_fidelity.iter().enumerate() {
                assert!(*f > 0.75, "{kind:?} qubit {q} fidelity {f}");
            }
        }
    }

    #[test]
    fn qda_handles_unequal_class_variances_at_least_as_well() {
        let (ds, split) = dataset();
        let lda = DiscriminantAnalysis::fit(&ds, &split, DiscriminantKind::Lda);
        let qda = DiscriminantAnalysis::fit(&ds, &split, DiscriminantKind::Qda);
        let f_lda = evaluate(&lda, &ds, &split.test).geometric_mean_fidelity();
        let f_qda = evaluate(&qda, &ds, &split.test).geometric_mean_fidelity();
        // Trace variance is state dependent (decay), so QDA should not lose
        // by much — allow a small statistical margin.
        assert!(f_qda > f_lda - 0.02, "LDA {f_lda} vs QDA {f_qda}");
    }

    #[test]
    fn names_and_sizes() {
        let (ds, split) = dataset();
        let lda = DiscriminantAnalysis::fit(&ds, &split, DiscriminantKind::Lda);
        assert_eq!(lda.name(), "LDA");
        assert_eq!(lda.n_qubits(), 2);
        assert_eq!(lda.weight_count(), 0);
    }

    #[test]
    #[should_panic(expected = "empty training split")]
    fn rejects_empty_split() {
        let (ds, _) = dataset();
        let empty = DatasetSplit::default();
        let _ = DiscriminantAnalysis::fit(&ds, &empty, DiscriminantKind::Lda);
    }
}
