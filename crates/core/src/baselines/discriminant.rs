//! Per-qubit Gaussian discriminant analysis (LDA/QDA) on boxcar-integrated
//! IQ points — the classical baselines of Tables V and VI.

use crate::plan::{self, Branch, CompiledPlan, MfBankOp, Op, OpGraph, OutputStage};
use crate::Discriminator;
use mlr_dsp::{integrate, Demodulator};
use mlr_linalg::{covariance_matrix, Cholesky, Matrix};
use mlr_num::Complex;
use mlr_sim::{DatasetSplit, TraceDataset};
use serde::{Deserialize, Serialize};

/// Which covariance model the discriminant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscriminantKind {
    /// Linear discriminant analysis: one covariance pooled across classes.
    Lda,
    /// Quadratic discriminant analysis: one covariance per class.
    Qda,
}

/// Per-class Gaussian model of one qubit's integrated IQ point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QubitModel {
    /// Class means, one per level.
    means: Vec<Vec<f64>>,
    /// Class log-priors.
    log_priors: Vec<f64>,
    /// Cholesky factors of the covariances: one per class for QDA, a single
    /// pooled entry for LDA.
    chols: Vec<Cholesky>,
    kind: DiscriminantKind,
}

impl QubitModel {
    fn discriminant(&self, x: &[f64], class: usize) -> f64 {
        let d: Vec<f64> = x
            .iter()
            .zip(&self.means[class])
            .map(|(a, b)| a - b)
            .collect();
        let chol = match self.kind {
            DiscriminantKind::Lda => &self.chols[0],
            DiscriminantKind::Qda => &self.chols[class],
        };
        let quad = chol.mahalanobis_sq(&d);
        let log_det = match self.kind {
            DiscriminantKind::Lda => 0.0, // common constant, drops out
            DiscriminantKind::Qda => chol.log_det(),
        };
        -0.5 * (quad + log_det) + self.log_priors[class]
    }

    fn predict(&self, x: &[f64]) -> usize {
        let scores: Vec<f64> = (0..self.means.len())
            .map(|c| self.discriminant(x, c))
            .collect();
        mlr_num::argmax(&scores).expect("at least one class")
    }
}

/// Training-free per-qubit LDA/QDA over demodulated, boxcar-integrated IQ
/// points (two features per qubit).
///
/// These are the "fast" classical rows of Table VI: cheap to fit and
/// evaluate, blind to trace-shape information (mid-readout decay), and
/// blind to other qubits' state (crosstalk) — which is exactly why the
/// matched-filter + NN designs beat them.
#[derive(Debug, Clone)]
pub struct DiscriminantAnalysis {
    demod: Demodulator,
    models: Vec<QubitModel>,
    kind: DiscriminantKind,
    /// Fused single-pass plan — LDA only. Under a pooled covariance the
    /// quadratic term `−½·xᵀΣ⁻¹x` is the same for every class, so the
    /// decision is linear in `x` and composes with demodulation +
    /// integration into one kernel row per (qubit, level) against the raw
    /// trace. QDA's per-class covariances keep the quadratic form
    /// class-dependent, so it stays layered (`plan` is `None`).
    plan: Option<CompiledPlan>,
}

/// Builds the LDA op graph: one kernel row per (qubit, level).
///
/// The layered path scores `−½(x−μ_c)ᵀΣ⁻¹(x−μ_c) + log π_c` on the
/// integrated IQ point `x = mean_t(raw[t]·ref[t])`. Expanding and dropping
/// the class-constant `−½xᵀΣ⁻¹x` leaves the linear discriminant
/// `w_c·x − ½μ_c·w_c + log π_c` with `w_c = Σ⁻¹μ_c`; substituting the
/// demodulate-integrate definition of `x` turns `w_c·x` into a dot product
/// against the interleaved raw trace:
///
/// ```text
/// row[2t]   = (w₀·ref.re[t] + w₁·ref.im[t]) / n
/// row[2t+1] = (w₁·ref.re[t] − w₀·ref.im[t]) / n
/// ```
///
/// Each qubit's branch argmaxes its `levels`-wide slice of the bank — no
/// dense layers at all, so the fused path is a single matrix against the
/// raw trace.
fn lda_graph(demod: &Demodulator, models: &[QubitModel]) -> OpGraph {
    let n = demod.n_samples();
    let inv_n = 1.0 / n as f64;
    let mut rows = Vec::new();
    let mut bias = Vec::new();
    let mut branches = Vec::with_capacity(models.len());
    let mut start = 0usize;
    for (q, model) in models.iter().enumerate() {
        debug_assert_eq!(model.kind, DiscriminantKind::Lda);
        let refs = demod.reference(q);
        let levels = model.means.len();
        for (mean, &log_prior) in model.means.iter().zip(&model.log_priors) {
            let w = model.chols[0].solve(mean);
            let mut row = vec![0.0f64; 2 * n];
            for (t, r) in refs.iter().enumerate() {
                row[2 * t] = (w[0] * r.re + w[1] * r.im) * inv_n;
                row[2 * t + 1] = (w[1] * r.re - w[0] * r.im) * inv_n;
            }
            rows.push(row);
            bias.push(-0.5 * (mean[0] * w[0] + mean[1] * w[1]) + log_prior);
        }
        branches.push(Branch {
            take: Some(start..start + levels),
            layers: Vec::new(),
        });
        start += levels;
    }
    OpGraph {
        trunk: vec![
            Op::FlattenIq { n_samples: n },
            Op::MfBank(MfBankOp {
                rows,
                bias,
                relu: false,
            }),
        ],
        output: OutputStage::PerQubit { branches },
    }
}

impl DiscriminantAnalysis {
    /// Ridge added to covariance diagonals so a Cholesky always exists.
    const RIDGE: f64 = 1e-9;

    /// Fits per-qubit class Gaussians from the training split.
    ///
    /// # Panics
    ///
    /// Panics if the training split is empty, indexes out of range, or a
    /// qubit is missing a level (no class statistics).
    pub fn fit(dataset: &TraceDataset, split: &DatasetSplit, kind: DiscriminantKind) -> Self {
        assert!(!split.train.is_empty(), "empty training split");
        let config = dataset.config();
        let demod = Demodulator::new(config);
        let levels = dataset.levels();

        let models: Vec<QubitModel> = (0..config.n_qubits())
            .map(|q| {
                // Integrated IQ features per training shot.
                let feats: Vec<Vec<f64>> = split
                    .train
                    .iter()
                    .map(|&i| {
                        let z = integrate(&demod.demodulate(dataset.raw(i), q));
                        vec![z.re, z.im]
                    })
                    .collect();
                let labels: Vec<usize> = split.train.iter().map(|&i| dataset.label(i, q)).collect();

                let mut means = Vec::with_capacity(levels);
                let mut log_priors = Vec::with_capacity(levels);
                let mut class_covs = Vec::with_capacity(levels);
                let mut counts = Vec::with_capacity(levels);
                for c in 0..levels {
                    let members: Vec<&Vec<f64>> = feats
                        .iter()
                        .zip(&labels)
                        .filter(|(_, &l)| l == c)
                        .map(|(f, _)| f)
                        .collect();
                    assert!(
                        !members.is_empty(),
                        "qubit {q} has no training traces for level {c}"
                    );
                    let data = Matrix::from_fn(members.len(), 2, |i, j| members[i][j]);
                    means.push(mlr_linalg::mean_vector(&data));
                    log_priors.push((members.len() as f64 / feats.len() as f64).ln());
                    class_covs.push(covariance_matrix(&data));
                    counts.push(members.len());
                }

                let ridge = |m: &Matrix| -> Matrix {
                    let mut r = m.clone();
                    for i in 0..r.rows() {
                        r[(i, i)] += Self::RIDGE + 1e-12 * r[(i, i)].abs();
                    }
                    r
                };

                let chols: Vec<Cholesky> = match kind {
                    DiscriminantKind::Qda => class_covs
                        .iter()
                        .map(|c| ridge(c).cholesky().expect("SPD covariance"))
                        .collect(),
                    DiscriminantKind::Lda => {
                        // Pooled covariance, weighted by class df.
                        let total_df: f64 = counts.iter().map(|&n| (n.max(2) - 1) as f64).sum();
                        let mut pooled = Matrix::zeros(2, 2);
                        for (cov, &n) in class_covs.iter().zip(&counts) {
                            pooled = &pooled + &cov.scale((n.max(2) - 1) as f64 / total_df);
                        }
                        vec![ridge(&pooled).cholesky().expect("SPD covariance")]
                    }
                };

                QubitModel {
                    means,
                    log_priors,
                    chols,
                    kind,
                }
            })
            .collect();

        let plan =
            (kind == DiscriminantKind::Lda).then(|| plan::compile(lda_graph(&demod, &models)));
        Self {
            demod,
            models,
            kind,
            plan,
        }
    }

    /// The covariance model in use.
    pub fn kind(&self) -> DiscriminantKind {
        self.kind
    }

    /// Borrows the compiled single-pass plan — `Some` for LDA, `None` for
    /// QDA (whose per-class quadratic form is not lowerable).
    pub fn plan(&self) -> Option<&CompiledPlan> {
        self.plan.as_ref()
    }

    /// Reference layered path — demodulate, integrate, score the full
    /// Gaussian discriminant in `f64` — kept as the exactness reference
    /// the plan property tests compare against.
    pub fn predict_shot_layered(&self, raw: &[Complex]) -> Vec<usize> {
        self.models
            .iter()
            .enumerate()
            .map(|(q, model)| {
                let z = integrate(&self.demod.demodulate(raw, q));
                model.predict(&[z.re, z.im])
            })
            .collect()
    }

    /// Layered batch path ([`Self::predict_shot_layered`] fanned over
    /// cores).
    pub fn predict_batch_layered(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        crate::par_map(shots, |raw| self.predict_shot_layered(raw))
    }

    /// Layered linear discriminant scores for one trace, per qubit: the
    /// class-constant quadratic term dropped, exactly what the plan's
    /// kernel rows compute — the logit reference for the plan property
    /// tests.
    pub fn scores_layered(&self, raw: &[Complex]) -> Vec<Vec<f64>> {
        self.models
            .iter()
            .enumerate()
            .map(|(q, model)| {
                let z = integrate(&self.demod.demodulate(raw, q));
                model
                    .means
                    .iter()
                    .zip(&model.log_priors)
                    .map(|(mean, &log_prior)| {
                        let w = model.chols[0].solve(mean);
                        z.re * w[0] + z.im * w[1] - 0.5 * (mean[0] * w[0] + mean[1] * w[1])
                            + log_prior
                    })
                    .collect()
            })
            .collect()
    }
}

impl Discriminator for DiscriminantAnalysis {
    /// LDA serves through the fused plan (one kernel row per class against
    /// the raw trace, argmax fused); QDA stays on the layered Gaussian
    /// scoring.
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        match &self.plan {
            Some(plan) => plan.predict_shot(raw),
            None => self.predict_shot_layered(raw),
        }
    }

    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        match &self.plan {
            Some(plan) => plan.predict_batch(shots),
            None => self.predict_batch_layered(shots),
        }
    }

    fn name(&self) -> &str {
        match self.kind {
            DiscriminantKind::Lda => "LDA",
            DiscriminantKind::Qda => "QDA",
        }
    }

    fn n_qubits(&self) -> usize {
        self.models.len()
    }

    fn weight_count(&self) -> usize {
        0 // no neural network
    }
}

/// The serialisable body of a fitted [`DiscriminantAnalysis`] inside the
/// registry's `SavedModel` v2 envelope; the demodulator is rebuilt from
/// the envelope's chip on load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SavedDiscriminant {
    models: Vec<QubitModel>,
    kind: DiscriminantKind,
}

impl DiscriminantAnalysis {
    pub(crate) fn to_saved(&self) -> SavedDiscriminant {
        SavedDiscriminant {
            models: self.models.clone(),
            kind: self.kind,
        }
    }

    pub(crate) fn from_saved(
        saved: SavedDiscriminant,
        chip: mlr_sim::ChipConfig,
    ) -> Result<Self, crate::ModelIoError> {
        if saved.models.len() != chip.n_qubits() {
            return Err(crate::ModelIoError::Invalid(format!(
                "{} discriminant models for {} qubits",
                saved.models.len(),
                chip.n_qubits()
            )));
        }
        let demod = Demodulator::new(&chip);
        let plan = (saved.kind == DiscriminantKind::Lda)
            .then(|| plan::compile(lda_graph(&demod, &saved.models)));
        Ok(Self {
            demod,
            models: saved.models,
            kind: saved.kind,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use mlr_sim::ChipConfig;

    fn dataset() -> (TraceDataset, DatasetSplit) {
        let mut c = ChipConfig::uniform(2);
        c.n_samples = 150;
        let ds = TraceDataset::generate(&c, 3, 30, 17);
        let split = ds.split(0.5, 0.0, 17);
        (ds, split)
    }

    #[test]
    fn lda_and_qda_discriminate_three_levels() {
        let (ds, split) = dataset();
        for kind in [DiscriminantKind::Lda, DiscriminantKind::Qda] {
            let da = DiscriminantAnalysis::fit(&ds, &split, kind);
            let report = evaluate(&da, &ds, &split.test);
            for (q, f) in report.per_qubit_fidelity.iter().enumerate() {
                assert!(*f > 0.75, "{kind:?} qubit {q} fidelity {f}");
            }
        }
    }

    #[test]
    fn qda_handles_unequal_class_variances_at_least_as_well() {
        let (ds, split) = dataset();
        let lda = DiscriminantAnalysis::fit(&ds, &split, DiscriminantKind::Lda);
        let qda = DiscriminantAnalysis::fit(&ds, &split, DiscriminantKind::Qda);
        let f_lda = evaluate(&lda, &ds, &split.test).geometric_mean_fidelity();
        let f_qda = evaluate(&qda, &ds, &split.test).geometric_mean_fidelity();
        // Trace variance is state dependent (decay), so QDA should not lose
        // by much — allow a small statistical margin.
        assert!(f_qda > f_lda - 0.02, "LDA {f_lda} vs QDA {f_qda}");
    }

    #[test]
    fn names_and_sizes() {
        let (ds, split) = dataset();
        let lda = DiscriminantAnalysis::fit(&ds, &split, DiscriminantKind::Lda);
        assert_eq!(lda.name(), "LDA");
        assert_eq!(lda.n_qubits(), 2);
        assert_eq!(lda.weight_count(), 0);
    }

    #[test]
    fn lda_plan_matches_layered() {
        let (ds, split) = dataset();
        let lda = DiscriminantAnalysis::fit(&ds, &split, DiscriminantKind::Lda);
        let plan = lda.plan().expect("LDA compiles a plan");
        // One kernel row per (qubit, level), empty branches: the whole
        // pipeline is a single matrix against the raw trace.
        assert_eq!(plan.n_kernel_rows(), 2 * 3);
        let shots: Vec<&[Complex]> = split.test.iter().map(|&i| ds.raw(i)).collect();
        assert_eq!(lda.predict_batch(&shots), lda.predict_batch_layered(&shots));
        // The fused rows compute the layered linear scores (quadratic
        // class-constant dropped) — compare logits within f32 noise.
        for &i in split.test.iter().take(10) {
            let fused = plan.logits_shot(ds.raw(i));
            let layered = lda.scores_layered(ds.raw(i));
            for (fq, lq) in fused.iter().zip(&layered) {
                for (&f, &l) in fq.iter().zip(lq) {
                    assert!(
                        (f64::from(f) - l).abs() <= 1e-3 * (1.0 + l.abs()),
                        "fused {f} vs layered {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn qda_has_no_plan() {
        let (ds, split) = dataset();
        let qda = DiscriminantAnalysis::fit(&ds, &split, DiscriminantKind::Qda);
        assert!(qda.plan().is_none());
    }

    #[test]
    #[should_panic(expected = "empty training split")]
    fn rejects_empty_split() {
        let (ds, _) = dataset();
        let empty = DatasetSplit::default();
        let _ = DiscriminantAnalysis::fit(&ds, &empty, DiscriminantKind::Lda);
    }
}
