//! The raw-trace FNN baseline (Fig. 2 top): undemodulated IQ samples in,
//! joint basis-state softmax out.

use crate::plan::{self, CompiledPlan};
use crate::Discriminator;
use mlr_dsp::iq_features;
use mlr_nn::{Mlp, Standardizer, TrainConfig, TrainData};
use mlr_num::Complex;
use mlr_sim::{basis_state_count, DatasetSplit, TraceDataset};
use serde::{Deserialize, Serialize};

/// Configuration of [`FnnBaseline::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnnConfig {
    /// Hidden layer widths; the paper uses `[500, 250]`.
    pub hidden: Vec<usize>,
    /// Training hyper-parameters.
    pub train: TrainConfig,
}

impl Default for FnnConfig {
    fn default() -> Self {
        Self {
            hidden: vec![500, 250],
            train: TrainConfig {
                epochs: 30,
                batch_size: 64,
                learning_rate: 1e-3,
                early_stop_patience: Some(6),
                ..TrainConfig::default()
            },
        }
    }
}

/// The deep feed-forward baseline of the paper's Ref. \[1\]: consumes the entire raw
/// composite trace (500 I + 500 Q samples at paper scale, no demodulation)
/// and emits one softmax over all `levelsⁿ` joint basis states; per-qubit
/// decisions are decoded from the winning joint state's digits.
///
/// At five qubits / three levels the topology is `[1000, 500, 250, 243]` —
/// 685,750 weights, the "686 k parameter" model whose size and FPGA
/// footprint the paper's Figs. 1(d) and 5(a) compare against.
#[derive(Debug, Clone)]
pub struct FnnBaseline {
    standardizer: Standardizer,
    mlp: Mlp,
    n_qubits: usize,
    levels: usize,
    /// Fused single-pass plan — derived data, rebuilt by every
    /// constructor, never serialised. The first hidden layer becomes the
    /// kernel bank (standardizer pre-folded, ReLU riding on the rows), the
    /// rest a fused marginal-decoded chain.
    plan: CompiledPlan,
}

impl FnnBaseline {
    /// Trains the baseline on the dataset's training split (validation
    /// split drives early stopping).
    ///
    /// # Panics
    ///
    /// Panics if the training split is empty or indexes out of range.
    pub fn fit(dataset: &TraceDataset, split: &DatasetSplit, config: &FnnConfig) -> Self {
        assert!(!split.train.is_empty(), "empty training split");
        let n_qubits = dataset.config().n_qubits();
        let levels = dataset.levels();
        let n_classes = basis_state_count(n_qubits, levels);
        let input_dim = 2 * dataset.config().n_samples;

        let featurize = |idxs: &[usize]| -> Vec<Vec<f64>> {
            idxs.iter().map(|&i| iq_features(dataset.raw(i))).collect()
        };
        let raw_train = featurize(&split.train);
        let standardizer = Standardizer::fit(&raw_train).expect("nonempty training batch");
        let train_x = standardizer.transform_batch(&raw_train);
        let train_y: Vec<usize> = split
            .train
            .iter()
            .map(|&i| dataset.joint_label(i))
            .collect();
        let data = TrainData::from_f64(&train_x, train_y, n_classes).expect("validated batch");

        let val_data = if split.val.is_empty() {
            None
        } else {
            let val_x = standardizer.transform_batch(&featurize(&split.val));
            let val_y: Vec<usize> = split.val.iter().map(|&i| dataset.joint_label(i)).collect();
            Some(TrainData::from_f64(&val_x, val_y, n_classes).expect("validated batch"))
        };

        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(n_classes);
        let mut mlp = Mlp::new(&sizes, config.train.seed);
        let mut train_cfg = config.train.clone();
        // Best-effort baseline: the paper trains this model on ~480k traces,
        // where rare leaked joint classes still get thousands of examples.
        // At this reproduction's dataset scale the same classes would be
        // starved, so the FNN gets capped inverse-frequency class weights —
        // without them it cannot learn leakage at all (see the README's deviations note).
        if train_cfg.class_weights.is_none() {
            train_cfg.class_weights = Some(mlr_nn::inverse_frequency_weights(
                data.labels(),
                n_classes,
                20.0,
            ));
        }
        mlp.train(&data, val_data.as_ref(), &train_cfg);

        let plan = plan::compile(plan::fnn_graph(
            &standardizer,
            &mlp,
            dataset.config().n_samples,
            n_qubits,
            levels,
        ));
        Self {
            standardizer,
            mlp,
            n_qubits,
            levels,
            plan,
        }
    }

    /// Borrows the trained network.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Level-alphabet size the model decides over.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Borrows the compiled single-pass inference plan.
    pub fn plan(&self) -> &CompiledPlan {
        &self.plan
    }

    /// Reference layered path — standardise `iq_features`, then the
    /// network's own marginal decoding — kept as the bit-exactness
    /// reference the plan property tests compare against.
    pub fn predict_batch_layered(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        let features: Vec<Vec<f64>> = crate::par_map(shots, |raw| iq_features(raw));
        let xs = self.standardizer.transform_batch_f32(&features);
        crate::par_map(&xs, |x| {
            self.mlp.predict_marginal(x, self.n_qubits, self.levels)
        })
    }

    /// Layered joint logits for one trace (the vector the marginal decode
    /// softmaxes) — the reference the plan's logit property compares
    /// against.
    pub fn logits_layered(&self, raw: &[Complex]) -> Vec<f32> {
        let x = self.standardizer.transform_f32(&iq_features(raw));
        self.mlp.forward(&x)
    }
}

impl Discriminator for FnnBaseline {
    /// Per-qubit decisions come from the joint softmax's marginals — the
    /// optimal per-qubit rule, pooling mass across rare joint classes —
    /// served by the fused plan: one pass over the raw trace with the
    /// standardizer pre-folded into the first layer's rows.
    fn predict_shot(&self, raw: &[Complex]) -> Vec<usize> {
        self.plan.predict_shot(raw)
    }

    /// Fused batch path: 16-shot tiles over the compiled plan. Decisions
    /// match mapping `predict_shot` exactly (per-shot dots are independent
    /// of tiling).
    fn predict_batch(&self, shots: &[&[Complex]]) -> Vec<Vec<usize>> {
        self.plan.predict_batch(shots)
    }

    fn name(&self) -> &str {
        "FNN"
    }

    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn weight_count(&self) -> usize {
        self.mlp.weight_count()
    }
}

/// The serialisable body of a trained [`FnnBaseline`] inside the
/// registry's `SavedModel` v2 envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SavedFnn {
    standardizer: Standardizer,
    mlp: Mlp,
    levels: usize,
}

impl FnnBaseline {
    pub(crate) fn to_saved(&self) -> SavedFnn {
        SavedFnn {
            standardizer: self.standardizer.clone(),
            mlp: self.mlp.clone(),
            levels: self.levels,
        }
    }

    pub(crate) fn from_saved(
        saved: SavedFnn,
        chip: mlr_sim::ChipConfig,
    ) -> Result<Self, crate::ModelIoError> {
        let n_qubits = chip.n_qubits();
        let input_dim = 2 * chip.n_samples;
        if saved.mlp.input_len() != input_dim || saved.standardizer.dim() != input_dim {
            return Err(crate::ModelIoError::Invalid(format!(
                "FNN input {} / standardizer {} != 2 x {} samples",
                saved.mlp.input_len(),
                saved.standardizer.dim(),
                chip.n_samples
            )));
        }
        let n_classes = basis_state_count(n_qubits, saved.levels);
        if saved.mlp.output_len() != n_classes {
            return Err(crate::ModelIoError::Invalid(format!(
                "FNN output {} != {} joint classes",
                saved.mlp.output_len(),
                n_classes
            )));
        }
        let plan = plan::compile(plan::fnn_graph(
            &saved.standardizer,
            &saved.mlp,
            chip.n_samples,
            n_qubits,
            saved.levels,
        ));
        Ok(Self {
            standardizer: saved.standardizer,
            mlp: saved.mlp,
            n_qubits,
            levels: saved.levels,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use mlr_sim::ChipConfig;

    /// Two-qubit three-level fit keeps the joint output at 9 classes and the
    /// test fast.
    fn fit_small() -> (TraceDataset, DatasetSplit, FnnBaseline) {
        let mut c = ChipConfig::uniform(2);
        c.n_samples = 150;
        // The raw-trace FNN is data hungry — that is the point of the paper;
        // give the test enough shots per joint state to converge.
        let ds = TraceDataset::generate(&c, 3, 90, 11);
        let split = ds.split(0.5, 0.1, 11);
        // Small train split -> small batches and more epochs so Adam takes
        // enough steps.
        let config = FnnConfig {
            hidden: vec![64, 32],
            train: TrainConfig {
                epochs: 60,
                batch_size: 16,
                learning_rate: 2e-3,
                early_stop_patience: Some(15),
                ..FnnConfig::default().train
            },
        };
        let fnn = FnnBaseline::fit(&ds, &split, &config);
        (ds, split, fnn)
    }

    #[test]
    fn paper_scale_topology_weight_count() {
        // Verify the advertised 686k figure without training: topology only.
        let mlp = Mlp::new(&[1000, 500, 250, 243], 0);
        assert_eq!(mlp.weight_count(), 685_750);
    }

    #[test]
    fn learns_joint_three_level_readout() {
        let (ds, split, fnn) = fit_small();
        let report = evaluate(&fnn, &ds, &split.test);
        for (q, f) in report.per_qubit_fidelity.iter().enumerate() {
            assert!(*f > 0.7, "qubit {q} fidelity {f}");
        }
        assert_eq!(report.design, "FNN");
    }

    #[test]
    fn joint_decoding_shapes() {
        let (ds, _, fnn) = fit_small();
        let decided = fnn.predict_shot(ds.raw(0));
        assert_eq!(decided.len(), 2);
        assert!(decided.iter().all(|&l| l < 3));
    }

    #[test]
    fn plan_matches_layered_labels() {
        let (ds, split, fnn) = fit_small();
        let shots: Vec<&[Complex]> = split.test.iter().map(|&i| ds.raw(i)).collect();
        assert_eq!(fnn.predict_batch(&shots), fnn.predict_batch_layered(&shots));
        // The first hidden layer became the kernel bank: one row per unit.
        assert_eq!(fnn.plan().n_kernel_rows(), fnn.mlp().sizes()[1]);
    }
}
