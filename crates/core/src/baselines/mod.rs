//! Baseline multi-level readout discriminators the paper compares against,
//! living beside the proposed design so the registry
//! ([`crate::registry`]) can name, fit and persist every family from one
//! crate:
//!
//! * [`FnnBaseline`] — the raw-trace deep feed-forward network of Lienhard
//!   et al. (Phys. Rev. Applied 17, 014024): all 1000 undemodulated ADC
//!   samples in, one joint softmax over every `kⁿ` basis state out
//!   (≈686 k weights at five qubits / three levels);
//! * [`HerqulesBaseline`] — the ISCA '23 HERQULES design: demodulation +
//!   qubit/relaxation matched filters (no excitation filters), a small
//!   joint network over all qubits with a `kⁿ`-way output — compact, but
//!   its output layer still scales exponentially, which is what breaks it
//!   at three levels;
//! * [`DiscriminantAnalysis`] — classic per-qubit LDA/QDA on
//!   boxcar-integrated IQ points (Table V / Table VI rows);
//! * [`HmmBaseline`] — per-qubit Gaussian hidden Markov model over windowed
//!   IQ observations (the HMM leakage detectors of Varbanov et al., cited
//!   as related work in Sec. I);
//! * [`AutoencoderBaseline`] — dense autoencoder compression of the
//!   demodulated trace with per-qubit classifier heads on the bottleneck
//!   code (Luchi et al., Phys. Rev. Applied 20, 014045, Sec. I).
//!
//! All baselines implement [`crate::Discriminator`], so the reproduction
//! harness evaluates them interchangeably with the proposed design. The
//! `mlr-baselines` crate re-exports these types for compatibility.

mod autoencoder;
mod discriminant;
mod fnn;
mod herqules;
mod hmm;

pub use autoencoder::{AutoencoderBaseline, AutoencoderConfig};
pub use discriminant::{DiscriminantAnalysis, DiscriminantKind};
pub use fnn::{FnnBaseline, FnnConfig};
pub use herqules::{HerqulesBaseline, HerqulesConfig};
pub use hmm::{HmmBaseline, HmmConfig};
